//! `orca-repro` — umbrella crate for the Orca (SIGMOD 2014) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests have a single dependency. See `README.md` for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.

pub use orca;
pub use orca_catalog as catalog;
pub use orca_common as common;
pub use orca_dxl as dxl;
pub use orca_executor as executor;
pub use orca_expr as expr;
pub use orca_gpos as gpos;
pub use orca_planner as planner;
pub use orca_sql as sql;
pub use orca_tpcds as tpcds;
