//! Integration tests of the serving layer (`orca-service`): deadline
//! semantics of the underlying `optimize_with_deadline`, end-to-end plan
//! cache invalidation via `bump_table_version`, the degradation ladder,
//! and a concurrent submit-while-bumping hammer.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider;
use orca_common::{OrcaError, SegmentConfig};
use orca_dxl::DxlQuery;
use orca_expr::props::DistSpec;
use orca_expr::ColumnRegistry;
use orca_service::{PlanSource, Service, ServiceConfig};
use orca_tpcds::build_catalog;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The §4.2 benchmark's 7-way join over the TPC-DS-style catalog.
const SEVEN_WAY_JOIN: &str = "SELECT i.i_brand_id, d.d_moy, count(*) AS n, \
     sum(cs.cs_net_profit) AS profit \
     FROM catalog_sales cs, item i, date_dim d, promotion p, call_center cc, \
          customer c, customer_address ca \
     WHERE cs.cs_item_sk = i.i_item_sk \
       AND cs.cs_sold_date_sk = d.d_date_sk \
       AND cs.cs_promo_sk = p.p_promo_sk \
       AND cs.cs_call_center_sk = cc.cc_call_center_sk \
       AND cs.cs_bill_customer_sk = c.c_customer_sk \
       AND c.c_current_addr_sk = ca.ca_address_sk \
       AND d.d_date_sk > 10 \
     GROUP BY i.i_brand_id, d.d_moy ORDER BY profit DESC LIMIT 20";

fn tpcds_env() -> Arc<orca_catalog::MemoryProvider> {
    build_catalog(0.01, SegmentConfig::default().with_segments(16)).0
}

fn compile_query(
    provider: &Arc<orca_catalog::MemoryProvider>,
    sql: &str,
) -> (DxlQuery, Arc<ColumnRegistry>, QueryReqs) {
    let registry = Arc::new(ColumnRegistry::new());
    let bound = orca_sql::compile(sql, provider.as_ref(), &registry).expect("compile");
    let reqs = QueryReqs {
        output_cols: bound.output_cols.clone(),
        order: bound.order.clone(),
        dist: DistSpec::Singleton,
    };
    let query = DxlQuery {
        expr: bound.expr,
        output_cols: bound.output_cols,
        order: bound.order,
        dist: DistSpec::Singleton,
        columns: registry.snapshot(),
    };
    (query, registry, reqs)
}

/// Satellite (a): expiry mid-exploration must yield either a best-so-far
/// plan from a consistent memo (`timed_out` set) or the *typed* `Timeout`
/// error — never a partially-costed extraction, a panic, or a
/// miscategorized error — at 1 and 4 workers.
#[test]
fn seven_way_join_with_near_zero_deadline_is_typed_and_consistent() {
    let provider = tpcds_env();
    let (query, registry, reqs) = compile_query(&provider, SEVEN_WAY_JOIN);
    for workers in [1usize, 4] {
        let optimizer = Optimizer::new(
            provider.clone(),
            OptimizerConfig::default().with_workers(workers),
        );
        // Reference run: no deadline.
        let (_, full_stats) = optimizer
            .optimize(&query.expr, &registry, &reqs)
            .expect("unbounded optimization succeeds");
        assert!(!full_stats.timed_out);

        // ~0 deadline: already expired when the search starts.
        for budget in [Duration::ZERO, Duration::from_micros(50)] {
            let deadline = Instant::now() + budget;
            match optimizer.optimize_with_deadline(&query.expr, &registry, &reqs, deadline) {
                Ok((plan, stats)) => {
                    // Best-so-far extraction: must be a complete, costed
                    // plan and must be flagged.
                    assert!(stats.timed_out, "workers={workers} budget={budget:?}");
                    assert!(stats.plan_cost.is_finite() && stats.plan_cost > 0.0);
                    assert!(plan.children.len() <= 2);
                }
                Err(e) => {
                    assert_eq!(
                        e.kind(),
                        "timeout",
                        "workers={workers} budget={budget:?}: wrong error {e}"
                    );
                }
            }
        }

        // A generous deadline must behave exactly like no deadline.
        let deadline = Instant::now() + Duration::from_secs(600);
        let (_, stats) = optimizer
            .optimize_with_deadline(&query.expr, &registry, &reqs, deadline)
            .expect("generous deadline");
        assert!(!stats.timed_out);
        assert_eq!(stats.plan_cost, full_stats.plan_cost);
    }
}

/// Satellite (b), part 1: cached plan for T → `bump_table_version(T)` →
/// next lookup misses, re-optimizes against the new metadata, and the
/// stale entry is gone.
#[test]
fn bump_invalidates_cached_plan_and_reoptimizes() {
    let provider = tpcds_env();
    let (query, _, _) = compile_query(
        &provider,
        "SELECT i_brand_id, count(*) AS n FROM item, store_sales \
         WHERE i_item_sk = ss_item_sk GROUP BY i_brand_id",
    );
    let svc = Service::new(provider.clone(), ServiceConfig::default());
    let session = svc.open_session();

    let fresh = svc.submit_query(session, &query, None).expect("fresh");
    assert_eq!(fresh.response.source, PlanSource::Fresh);
    let hit = svc.submit_query(session, &query, None).expect("hit");
    assert_eq!(hit.response.source, PlanSource::Cache);
    // Byte-identical DXL from cache (determinism is what makes the cache
    // sound).
    assert_eq!(hit.response.plan_dxl, fresh.response.plan_dxl);

    let item = provider.table_by_name("item").expect("item");
    let new_id = provider.bump_table_version(item).expect("bump");

    let after = svc.submit_query(session, &query, None).expect("re-opt");
    assert_eq!(after.response.source, PlanSource::Fresh);
    assert_eq!(after.response.fingerprint, fresh.response.fingerprint);
    // The re-optimization saw the *new* table version.
    let md_ids = &after.response.stats.as_ref().expect("fresh stats").md_ids;
    assert!(md_ids.contains(&new_id), "md_ids={md_ids:?}");
    assert!(!md_ids.contains(&item));

    let stats = svc.stats();
    assert_eq!(stats.cache_invalidations, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    // And the replacement entry serves the next lookup.
    let rehit = svc.submit_query(session, &query, None).expect("re-hit");
    assert_eq!(rehit.response.source, PlanSource::Cache);
    assert_eq!(rehit.response.plan_dxl, after.response.plan_dxl);
}

/// Satellite (b), part 2: 8 threads hammering the same query while the
/// main thread bumps referenced-table versions. Every response must be a
/// valid non-degraded plan, every plan byte-identical (stats are copied
/// across versions, so the optimum never changes), and the counters must
/// add up.
#[test]
fn concurrent_submissions_survive_version_bumps() {
    let provider = tpcds_env();
    let (query, _, _) = compile_query(
        &provider,
        "SELECT d_year, count(*) AS n FROM store_sales, date_dim \
         WHERE ss_sold_date_sk = d_date_sk GROUP BY d_year",
    );
    let svc = Arc::new(Service::new(provider.clone(), ServiceConfig::default()));
    let query = Arc::new(query);

    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let plans: Vec<String> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let svc = svc.clone();
            let query = query.clone();
            handles.push(scope.spawn(move || {
                let session = svc.open_session();
                let mut plans = Vec::new();
                for _ in 0..ROUNDS {
                    let t = svc.submit_query(session, &query, None).expect("submit");
                    assert!(!t.response.degraded);
                    // Identical requests racing the same miss may coalesce
                    // onto one in-flight optimization.
                    assert!(matches!(
                        t.response.source,
                        PlanSource::Fresh | PlanSource::Cache | PlanSource::Coalesced
                    ));
                    plans.push(t.response.plan_dxl);
                }
                plans
            }));
        }
        // Interleave version bumps with the submissions.
        let date_dim = provider.table_by_name("date_dim").expect("date_dim");
        let store_sales = provider.table_by_name("store_sales").expect("store_sales");
        let mut cur_d = date_dim;
        let mut cur_s = store_sales;
        for i in 0..6 {
            std::thread::sleep(Duration::from_millis(5));
            if i % 2 == 0 {
                cur_d = provider.bump_table_version(cur_d).expect("bump d");
            } else {
                cur_s = provider.bump_table_version(cur_s).expect("bump s");
            }
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect()
    });

    assert_eq!(plans.len(), THREADS * ROUNDS);
    // Version bumps copy stats, so the chosen plan is identical throughout
    // up to the Mdid version attributes stamped into table descriptors.
    let normalized: Vec<String> = plans
        .iter()
        .map(|p| orca_dxl::normalize_mdid_versions(p))
        .collect();
    for p in &normalized {
        assert_eq!(p, &normalized[0]);
    }
    let stats = svc.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        (THREADS * ROUNDS) as u64
    );
    assert!(stats.cache_hits > 0, "stats={stats:?}");
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.rejected, 0);
    // At most one entry per live version-set remains.
    assert!(svc.cache().len() <= 1);
}

/// The degradation ladder: a zero budget cannot produce an error — the
/// service falls back to the legacy planner's heuristic plan and tags it.
#[test]
fn zero_budget_degrades_to_fallback_plan() {
    let provider = tpcds_env();
    let (query, _, _) = compile_query(
        &provider,
        "SELECT i_brand_id, count(*) AS n FROM item, store_sales \
         WHERE i_item_sk = ss_item_sk GROUP BY i_brand_id",
    );
    let svc = Service::new(provider, ServiceConfig::default());
    let session = svc.open_session();
    let t = svc
        .submit_query(session, &query, Some(Duration::ZERO))
        .expect("degraded, not failed");
    assert!(t.response.degraded);
    assert_eq!(t.response.source, PlanSource::Fallback);
    assert!(t.response.cost.is_finite());
    assert!(t.response.plan_dxl.contains("dxl:Plan"));
    let stats = svc.stats();
    assert_eq!(stats.degraded, 1);
    // Degraded plans are never cached: the next unconstrained submission
    // optimizes for real and caches.
    let fresh = svc.submit_query(session, &query, None).expect("fresh");
    assert_eq!(fresh.response.source, PlanSource::Fresh);
    assert!(!fresh.response.degraded);
}

/// Admission control sheds load past the queue: with one slot, zero queue
/// depth, and a long-running optimization in flight, a second submission
/// is rejected and served by the fallback planner.
#[test]
fn queue_rejection_falls_back() {
    let provider = tpcds_env();
    let (big, _, _) = compile_query(&provider, SEVEN_WAY_JOIN);
    let (small, _, _) = compile_query(
        &provider,
        "SELECT d_year, count(*) AS n FROM date_dim GROUP BY d_year",
    );
    let svc = Arc::new(Service::new(
        provider,
        ServiceConfig {
            max_concurrent: 1,
            queue_depth: 0,
            ..ServiceConfig::default()
        },
    ));
    let big = Arc::new(big);
    let small = Arc::new(small);
    std::thread::scope(|scope| {
        let svc2 = svc.clone();
        let big2 = big.clone();
        let blocker = scope.spawn(move || {
            let s = svc2.open_session();
            svc2.submit_query(s, &big2, None).expect("big query")
        });
        // Wait for the big optimization to occupy the slot, then submit.
        let session = svc.open_session();
        let mut saw_rejection = false;
        for _ in 0..200 {
            let t = svc
                .submit_query(session, &small, None)
                .expect("never errors");
            if t.response.source == PlanSource::Fallback {
                assert!(t.response.degraded);
                saw_rejection = true;
                break;
            }
            std::thread::yield_now();
        }
        let big_ticket = blocker.join().expect("no panic");
        assert!(!big_ticket.response.degraded);
        // The race is real: if the big query finished before any small
        // submission arrived, rejection legitimately never happened — but
        // the counters must agree with whatever the gate decided.
        let stats = svc.stats();
        assert_eq!(saw_rejection, stats.rejected > 0, "stats={stats:?}");
        assert_eq!(stats.rejected, stats.degraded);
    });
}

/// Typed timeout propagates through the DXL entry point's error paths
/// untouched (no service in the loop).
#[test]
fn optimizer_timeout_error_is_not_aborted() {
    let provider = tpcds_env();
    let (query, registry, reqs) = compile_query(&provider, SEVEN_WAY_JOIN);
    let optimizer = Optimizer::new(provider, OptimizerConfig::default());
    let expired = Instant::now() - Duration::from_secs(1);
    match optimizer.optimize_with_deadline(&query.expr, &registry, &reqs, expired) {
        Ok((_, stats)) => assert!(stats.timed_out),
        Err(e) => {
            assert!(matches!(e, OrcaError::Timeout(_)), "{e}");
            assert_eq!(e.kind(), "timeout");
        }
    }
}
