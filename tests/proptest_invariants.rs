//! Property-based tests on core data-structure invariants: histogram
//! algebra, datum ordering/hashing, the property-satisfaction lattice, and
//! DXL round-trips of randomized scalar expressions.

use orca_catalog::stats::Histogram;
use orca_common::hash::segment_for_key;
use orca_common::{ColId, Datum};
use orca_expr::props::{DistSpec, OrderSpec, SortKey};
use orca_expr::scalar::{AggFunc, ArithOp, CmpOp, ScalarExpr};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000i32..1000, 1..400)
        .prop_map(|v| v.into_iter().map(f64::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Building a histogram conserves row mass and brackets the domain.
    #[test]
    fn histogram_mass_conservation(values in values_strategy(), buckets in 1usize..32) {
        let n = values.len() as f64;
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let h = Histogram::from_values(values, buckets);
        prop_assert!((h.rows() - n).abs() < 1e-6);
        prop_assert_eq!(h.min().unwrap(), lo);
        prop_assert_eq!(h.max().unwrap(), hi);
        prop_assert!(h.ndv() <= n + 1e-6);
        // Buckets are sorted and non-overlapping (shared endpoints allowed).
        for w in h.buckets.windows(2) {
            prop_assert!(w[0].hi <= w[1].lo + 1e-9);
        }
    }

    /// Range restriction never creates mass, and splitting a domain into
    /// two halves conserves it.
    #[test]
    fn histogram_restriction_bounds(values in values_strategy(), split in -1000i32..1000) {
        let h = Histogram::from_values(values, 16);
        let split = f64::from(split);
        let below = h.restrict_range(f64::NEG_INFINITY, split);
        let above = h.restrict_range(split, f64::INFINITY);
        prop_assert!(below.rows() <= h.rows() + 1e-6);
        prop_assert!(above.rows() <= h.rows() + 1e-6);
        // Halves cover everything; the shared point may be double counted
        // within one bucket's interpolation, so allow bucket-level slop.
        let total = below.rows() + above.rows();
        prop_assert!(total >= h.rows() - 1e-6);
    }

    /// Equi-join cardinality is symmetric and bounded by the cross product.
    #[test]
    fn histogram_join_symmetry(a in values_strategy(), b in values_strategy()) {
        let ha = Histogram::from_values(a, 8);
        let hb = Histogram::from_values(b, 8);
        let (ab, _) = ha.equi_join(&hb);
        let (ba, _) = hb.equi_join(&ha);
        prop_assert!((ab - ba).abs() <= 1e-6 * (1.0 + ab.abs()));
        prop_assert!(ab <= ha.rows() * hb.rows() + 1e-6);
        prop_assert!(ab >= 0.0);
    }

    /// Scaling by f scales rows by f and never inflates NDV beyond rows.
    #[test]
    fn histogram_scaling(values in values_strategy(), f in 0.0f64..2.0) {
        let h = Histogram::from_values(values, 8);
        let s = h.scale(f);
        prop_assert!((s.rows() - h.rows() * f).abs() < 1e-6 * (1.0 + h.rows()));
        for b in &s.buckets {
            prop_assert!(b.ndv <= b.rows + 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// Datums
// ---------------------------------------------------------------------

fn datum_strategy() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        (-1000i64..1000).prop_map(Datum::Int),
        (-1000i32..1000).prop_map(|v| Datum::Double(v as f64 / 4.0)),
        "[a-z]{0,6}".prop_map(Datum::Str),
        (-500i32..500).prop_map(Datum::Date),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// total_cmp is a total order (antisymmetric + transitive on triples).
    #[test]
    fn datum_total_order(a in datum_strategy(), b in datum_strategy(), c in datum_strategy()) {
        use std::cmp::Ordering::*;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Greater && b.total_cmp(&c) != Greater {
            prop_assert_ne!(a.total_cmp(&c), Greater);
        }
    }

    /// Hash-equal placement: SQL-equal datums land on the same segment.
    #[test]
    fn equal_datums_colocate(v in -1000i64..1000, segs in 1usize..32) {
        let a = Datum::Int(v);
        let b = Datum::Double(v as f64);
        prop_assert_eq!(segment_for_key(&[a], segs), segment_for_key(&[b], segs));
    }
}

// ---------------------------------------------------------------------
// Property lattice
// ---------------------------------------------------------------------

fn order_strategy() -> impl Strategy<Value = OrderSpec> {
    prop::collection::vec((0u32..6, any::<bool>()), 0..4).prop_map(|keys| {
        OrderSpec(
            keys.into_iter()
                .map(|(c, desc)| SortKey {
                    col: ColId(c),
                    desc,
                })
                .collect(),
        )
    })
}

fn dist_strategy() -> impl Strategy<Value = DistSpec> {
    prop_oneof![
        Just(DistSpec::Any),
        Just(DistSpec::Singleton),
        Just(DistSpec::Replicated),
        Just(DistSpec::Random),
        prop::collection::vec(0u32..6, 1..3)
            .prop_map(|cols| DistSpec::Hashed(cols.into_iter().map(ColId).collect())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Order satisfaction is reflexive and transitive, and extending a
    /// delivered order never breaks satisfaction.
    #[test]
    fn order_satisfaction_lattice(a in order_strategy(), b in order_strategy(), extra in 0u32..6) {
        prop_assert!(a.satisfies(&a));
        if a.satisfies(&b) {
            let mut longer = a.clone();
            longer.0.push(SortKey::asc(ColId(extra + 100)));
            prop_assert!(longer.satisfies(&b), "extending keeps satisfaction");
        }
        prop_assert!(a.satisfies(&OrderSpec::any()));
    }

    /// Dist satisfaction: reflexive for requestable specs; Any is top.
    #[test]
    fn dist_satisfaction_lattice(d in dist_strategy()) {
        prop_assert!(d.satisfies(&DistSpec::Any));
        if d.is_requestable() && d != DistSpec::Any {
            prop_assert!(d.satisfies(&d));
        }
    }
}

// ---------------------------------------------------------------------
// DXL round-trips of random scalar expressions
// ---------------------------------------------------------------------

fn scalar_strategy() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (0u32..8).prop_map(|c| ScalarExpr::ColRef(ColId(c))),
        datum_strategy().prop_map(ScalarExpr::Const),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| ScalarExpr::Cmp {
                op: CmpOp::Le,
                left: Box::new(l),
                right: Box::new(r),
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| ScalarExpr::Arith {
                op: ArithOp::Add,
                left: Box::new(l),
                right: Box::new(r),
            }),
            prop::collection::vec(inner.clone(), 1..3).prop_map(ScalarExpr::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(ScalarExpr::Or),
            inner.clone().prop_map(|e| ScalarExpr::Not(Box::new(e))),
            inner.clone().prop_map(|e| ScalarExpr::IsNull(Box::new(e))),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| ScalarExpr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            inner.clone().prop_map(|e| ScalarExpr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(e)),
                distinct: false,
            }),
            (inner.clone(), inner).prop_map(|(c, v)| ScalarExpr::Case {
                branches: vec![(c, v)],
                else_value: None,
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(print(expr)) == expr for arbitrary scalar trees.
    #[test]
    fn dxl_scalar_roundtrip(e in scalar_strategy()) {
        let provider = orca_catalog::MemoryProvider::new();
        let doc = orca_dxl::ser::scalar_to_xml(&e).to_document();
        let node = orca_dxl::xml::parse(&doc).expect("well-formed");
        // Scalar parsing is exposed through query parsing; go through a
        // wrapper Select document to exercise the public path.
        let _ = node;
        // Direct structural check via a Filter plan wrapper:
        let plan = orca_expr::physical::PhysicalPlan::new(
            orca_expr::physical::PhysicalOp::Filter { pred: e.clone() },
            vec![orca_expr::physical::PhysicalPlan::leaf(
                orca_expr::physical::PhysicalOp::ConstTable { cols: vec![], rows: vec![] },
            )],
        );
        let text = orca_dxl::plan_to_dxl(&orca_dxl::DxlPlan { plan: plan.clone(), cost: 1.0 });
        let back = orca_dxl::parse_plan_doc(&text, &provider).expect("parses");
        prop_assert_eq!(back.plan, plan);
    }
}
