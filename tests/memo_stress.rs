//! Multi-threaded Memo stress tests (§4.2).
//!
//! The Memo's two concurrent hot paths — sharded duplicate detection on
//! insert and the lock-free chunked group directory — must keep the
//! structure canonical under insert storms: identical expression topologies
//! inserted from many threads land in one group, group ids stay dense and
//! stable, and the dedup index always agrees with the directory
//! (`Memo::check_integrity`).

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca::memo::{GroupId, Memo, Operator};
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MdProvider, MemoryProvider, TableDesc, TableStats};
use orca_common::{ColId, DataType, Datum, MdId, SysId};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::scalar::ScalarExpr;
use orca_expr::ColumnRegistry;
use std::collections::HashMap;
use std::sync::Arc;

const THREADS: usize = 8;

fn tref(oid: u64) -> TableRef {
    TableRef(Arc::new(TableDesc::new(
        MdId::new(SysId::Gpdb, oid, 1),
        &format!("t{oid}"),
        vec![
            ColumnMeta::new("a", DataType::Int),
            ColumnMeta::new("b", DataType::Int),
        ],
        Distribution::Hashed(vec![0]),
    )))
}

fn leaf(oid: u64) -> LogicalExpr {
    let first = (oid as u32 - 1) * 2;
    LogicalExpr::leaf(LogicalOp::Get {
        table: tref(oid),
        cols: vec![ColId(first), ColId(first + 1)],
        parts: None,
    })
}

fn join(l: LogicalExpr, r: LogicalExpr, lcol: u32, rcol: u32) -> LogicalExpr {
    LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(lcol), ColId(rcol)),
        },
        vec![l, r],
    )
}

/// A family of join trees over a shared pool of leaves, with heavily
/// overlapping sub-trees (every tree `i` reuses the `leaf(i) ⋈ leaf(i+1)`
/// spine of its neighbours).
fn workload(trees: u64) -> Vec<LogicalExpr> {
    (1..=trees)
        .map(|i| {
            let base = join(leaf(i), leaf(i + 1), (i as u32 - 1) * 2, i as u32 * 2);
            join(base, leaf(i + 2), (i as u32 - 1) * 2, (i as u32 + 1) * 2)
        })
        .collect()
}

/// Copy the workload into `memo` from `THREADS` threads, each walking the
/// tree list starting at a different offset so insert orders differ.
fn storm(memo: &Arc<Memo>, work: &[LogicalExpr]) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = Arc::clone(memo);
            s.spawn(move || {
                for i in 0..work.len() {
                    memo.copy_in(&work[(i + t * 3) % work.len()]);
                }
            });
        }
    });
}

/// Every distinct topology must occupy exactly one slot in exactly one
/// group, no matter how the threads interleaved.
fn assert_no_duplicate_topologies(memo: &Memo) {
    let mut seen: HashMap<(Operator, Vec<GroupId>), (GroupId, usize)> = HashMap::new();
    for idx in 0..memo.num_groups() {
        let gid = GroupId(idx as u32);
        let group = memo.group(gid);
        let g = group.read();
        assert_eq!(g.id, gid, "directory slot {idx} holds the wrong group");
        for (eid, e) in g.exprs.iter().enumerate() {
            let prev = seen.insert((e.op.clone(), e.children.clone()), (gid, eid));
            assert!(
                prev.is_none(),
                "topology stored twice: {gid}/{eid} and {:?}",
                prev
            );
        }
    }
}

#[test]
fn concurrent_copy_in_storm_is_canonical() {
    let work = workload(24);
    let memo = Arc::new(Memo::new());
    storm(&memo, &work);

    // Serial reference: the storm must produce exactly the groups a
    // single-threaded copy-in produces.
    let reference = Memo::new();
    for tree in &work {
        reference.copy_in(tree);
    }
    assert_eq!(memo.num_groups(), reference.num_groups());
    assert_eq!(memo.num_exprs(), reference.num_exprs());

    assert_no_duplicate_topologies(&memo);
    memo.check_integrity().expect("index/directory agreement");

    // The overlap was real: most insertions were answered by dedup.
    let snap = memo.metrics().snapshot();
    assert!(snap.dedup_hits > snap.exprs_inserted);
}

#[test]
fn repeated_storms_reach_identical_group_counts() {
    let work = workload(16);
    let counts: Vec<(usize, usize)> = (0..3)
        .map(|_| {
            let memo = Arc::new(Memo::new());
            storm(&memo, &work);
            memo.check_integrity().expect("index/directory agreement");
            (memo.num_groups(), memo.num_exprs())
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "group/expr counts varied across storms: {counts:?}"
    );
}

/// Canonical-aware duplicate check: across all *canonical* groups, every
/// live topology must be stored exactly once. (Merged shells are drained,
/// so they are skipped by construction.)
fn assert_single_canonical_home_per_topology(memo: &Memo) {
    let mut seen: HashMap<(Operator, Vec<GroupId>), (GroupId, usize)> = HashMap::new();
    for gid in memo.canonical_groups() {
        let group = memo.group(gid);
        let g = group.read();
        for (eid, e) in g.exprs.iter().enumerate() {
            if e.dead {
                continue;
            }
            let prev = seen.insert((e.op.clone(), e.children.clone()), (gid, eid));
            assert!(
                prev.is_none(),
                "topology stored twice after merges: {gid}/{eid} and {:?}",
                prev
            );
        }
    }
}

#[test]
fn merge_storm_single_canonical_group_per_topology() {
    // N threads race standalone spellings of shared join shapes against
    // targeted copies of the same shapes aimed at thread-private host
    // groups — exactly the collision §4.2 group merging resolves. Every
    // host must end up merged with the shape's standalone home, leaving
    // one canonical group per topology no matter how the threads
    // interleaved.
    const SHAPES: u64 = 6;
    let memo = Arc::new(Memo::new());
    // Shared leaf groups minted up front so every thread references the
    // same children.
    let shapes: Vec<(GroupId, GroupId, Operator)> = (1..=SHAPES)
        .map(|i| {
            let l = memo.copy_in(&leaf(i));
            let r = memo.copy_in(&leaf(i + 1));
            let op = Operator::Logical(LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId((i as u32 - 1) * 2), ColId(i as u32 * 2)),
            });
            (l, r, op)
        })
        .collect();
    let hosts: Vec<std::sync::Mutex<Vec<(usize, GroupId)>>> = (0..THREADS)
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|s| {
        for (t, host_log) in hosts.iter().enumerate() {
            let memo = Arc::clone(&memo);
            let shapes = &shapes;
            s.spawn(move || {
                for k in 0..shapes.len() {
                    let (l, r, op) = &shapes[(k + t) % shapes.len()];
                    if t % 2 == 0 {
                        // Standalone spelling: lands in (or dedups to) the
                        // shape's home group.
                        memo.insert_expr(None, op.clone(), vec![*l, *r]);
                    } else {
                        // Thread-private host group (unique predicate makes
                        // the topology unique), then a targeted copy of the
                        // shared shape — the merge trigger.
                        let unique = Operator::Logical(LogicalOp::Join {
                            kind: JoinKind::Inner,
                            pred: ScalarExpr::col_eq_col(
                                ColId(1000 + (t * SHAPES as usize + k) as u32),
                                ColId(0),
                            ),
                        });
                        let (host, _, _) = memo.insert_expr(None, unique, vec![*l, *r]);
                        let (home, _, _) = memo.insert_expr(Some(host), op.clone(), vec![*l, *r]);
                        host_log
                            .lock()
                            .unwrap()
                            .push(((k + t) % shapes.len(), home));
                    }
                }
            });
        }
    });
    // Merges actually happened (every odd thread forced at least one).
    let snap = memo.metrics().snapshot();
    assert!(snap.groups_merged > 0, "storm never triggered a merge");
    // Every host that received a targeted copy of shape k now resolves to
    // the same canonical group as every other copy of shape k.
    for host_log in &hosts {
        for &(k, home) in host_log.lock().unwrap().iter() {
            let (l, r, op) = &shapes[k];
            let (canon, _, added) = memo.insert_expr(None, op.clone(), vec![*l, *r]);
            assert!(!added, "shape {k} lost its dedup entry");
            assert_eq!(
                memo.resolve(home),
                memo.resolve(canon),
                "shape {k}: targeted home and standalone home did not merge"
            );
        }
    }
    assert_single_canonical_home_per_topology(&memo);
    memo.check_integrity().expect("index/directory agreement");
}

#[test]
fn merge_purges_loser_scoped_selectivity_entries() {
    // Warm the selectivity cache under two groups that are about to merge,
    // then force the merge (targeted copy of a shared shape, exactly as in
    // `merge_storm_...`). Probes under the pre-merge loser id must resolve
    // through the union-find to the surviving winner-scoped entry — the
    // loser-keyed value is purged at merge time and can never be served.
    let memo = Arc::new(Memo::new());
    let l = memo.copy_in(&leaf(1));
    let r = memo.copy_in(&leaf(2));
    let shared = Operator::Logical(LogicalOp::Join {
        kind: JoinKind::Inner,
        pred: ScalarExpr::col_eq_col(ColId(0), ColId(2)),
    });
    let (home, _, _) = memo.insert_expr(None, shared.clone(), vec![l, r]);
    let unique = Operator::Logical(LogicalOp::Join {
        kind: JoinKind::Inner,
        pred: ScalarExpr::col_eq_col(ColId(1000), ColId(0)),
    });
    let (host, _, _) = memo.insert_expr(None, unique, vec![l, r]);
    assert_ne!(home, host);

    let pid = memo.intern_scalar(&ScalarExpr::col_eq_col(ColId(0), ColId(2)));
    const HOME_SEL: f64 = 0.25;
    const HOST_SEL: f64 = 0.5;
    memo.note_selectivity(home, home, pid, HOME_SEL);
    memo.note_selectivity(host, host, pid, HOST_SEL);
    assert_eq!(memo.cached_selectivity(home, home, pid), Some(HOME_SEL));
    assert_eq!(memo.cached_selectivity(host, host, pid), Some(HOST_SEL));

    // Targeted copy of the shared shape into `host` triggers the merge.
    memo.insert_expr(Some(host), shared, vec![l, r]);
    let winner = memo.resolve(host);
    assert_eq!(winner, memo.resolve(home), "host and home did not merge");
    assert!(memo.metrics().snapshot().groups_merged > 0);

    // Only the entry noted under the surviving canonical id is left; the
    // loser-scoped entry is gone. Probing under EITHER pre-merge id now
    // canonicalizes to the winner and yields the winner's value.
    let winner_sel = if winner == home { HOME_SEL } else { HOST_SEL };
    let loser_sel = if winner == home { HOST_SEL } else { HOME_SEL };
    for scope in [home, host, winner] {
        let got = memo.cached_selectivity(scope, scope, pid);
        assert_eq!(got, Some(winner_sel), "scope {scope} served a stale value");
        assert_ne!(got, Some(loser_sel));
    }
    // check_integrity additionally walks every cache shard and rejects any
    // key whose scope ids are not union-find roots.
    memo.check_integrity().expect("no stale loser-scoped keys");
}

#[test]
fn merge_heavy_optimization_cost_stable_across_workers() {
    // A 5-way star-with-tail join (s2/s3 hang off s1, s5 chains off s4 —
    // the shape of the parallel_scaling bench query) explores equivalent
    // join orders whose associativity rewrites re-derive the same topology
    // in two homes, triggering §4.2 group merging with the estimation
    // caches already warm. The cached selectivities must
    // migrate/invalidate coherently: the winning plan cost has to be
    // bit-identical at 1 and 4 workers.
    let p = Arc::new(MemoryProvider::new());
    for (i, (name, rows)) in [
        ("s1", 10_000.0),
        ("s2", 50_000.0),
        ("s3", 20_000.0),
        ("s4", 5_000.0),
        ("s5", 40_000.0),
    ]
    .iter()
    .enumerate()
    {
        let id = p.register(
            name,
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        let values: Vec<Datum> = (0..1000)
            .map(|v| Datum::Int((v + i as i64) % 250))
            .collect();
        p.set_stats(
            id,
            TableStats::new(*rows, 2)
                .set_column(0, ColumnStats::from_column(&values, 16))
                .set_column(1, ColumnStats::from_column(&values, 16)),
        );
    }
    let registry = Arc::new(ColumnRegistry::new());
    for name in [
        "s1.a", "s1.b", "s2.a", "s2.b", "s3.a", "s3.b", "s4.a", "s4.b", "s5.a", "s5.b",
    ] {
        registry.fresh(name, DataType::Int);
    }
    let get = |name: &str, first: u32| {
        LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(p.table(p.table_by_name(name).unwrap()).unwrap()),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    };
    let join2 = |l: LogicalExpr, r: LogicalExpr, lc: u32, rc: u32| {
        LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(lc), ColId(rc)),
            },
            vec![l, r],
        )
    };
    let chain = join2(
        join2(
            join2(join2(get("s1", 0), get("s2", 2), 0, 2), get("s3", 4), 0, 4),
            get("s4", 6),
            1,
            6,
        ),
        get("s5", 8),
        7,
        8,
    );
    let reqs = QueryReqs::gather_all(vec![ColId(0)]);

    let mut costs = Vec::new();
    for workers in [1usize, 4] {
        let optimizer = Optimizer::new(p.clone(), OptimizerConfig::default().with_workers(workers));
        let (_, stats) = optimizer.optimize(&chain, &registry, &reqs).expect("plans");
        assert!(
            stats.search.groups_merged > 0,
            "5-way star at {workers} workers never merged a group"
        );
        assert!(
            stats.search.sel_cache_hits > 0,
            "estimation caches never hit at {workers} workers"
        );
        costs.push(stats.plan_cost);
    }
    assert!(
        costs[0] == costs[1],
        "plan cost changed with worker count: {} vs {}",
        costs[0],
        costs[1]
    );
}

#[test]
fn single_shard_memo_behaves_identically() {
    // The dedup shard count is a pure performance knob: a 1-shard Memo
    // (every insert serialized through one mutex) must converge on exactly
    // the same groups and expressions as the default-sharded one.
    let work = workload(16);
    let single = Arc::new(Memo::with_shards(1));
    assert_eq!(single.dedup_shards(), 1);
    storm(&single, &work);
    let reference = Memo::new();
    for tree in &work {
        reference.copy_in(tree);
    }
    assert_eq!(single.num_groups(), reference.num_groups());
    assert_eq!(single.num_exprs(), reference.num_exprs());
    single.check_integrity().expect("index/directory agreement");
    // With one shard and many threads the opportunistic try_lock misses
    // are the expected signal — but only observable with real parallelism.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus > 1 {
        assert!(
            single.metrics().snapshot().dedup_shard_collisions > 0,
            "8-thread storm on a 1-shard index never contended"
        );
    }
}

#[test]
fn targeted_insert_storm_no_intra_group_duplicates() {
    // One join group per tree; every thread re-inserts the original and the
    // commuted variant into the SAME group, racing on the dedup shards.
    let work = workload(8);
    let memo = Arc::new(Memo::new());
    let roots: Vec<GroupId> = work.iter().map(|t| memo.copy_in(t)).collect();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let memo = Arc::clone(&memo);
            let roots = roots.clone();
            s.spawn(move || {
                for &root in &roots {
                    let (op, c1, c2) = {
                        let group = memo.group(root);
                        let g = group.read();
                        let e = &g.exprs[0];
                        (e.op.clone(), e.children[0], e.children[1])
                    };
                    for _ in 0..50 {
                        memo.insert_expr(Some(root), op.clone(), vec![c1, c2]);
                        memo.insert_expr(Some(root), op.clone(), vec![c2, c1]);
                    }
                }
            });
        }
    });
    for &root in &roots {
        assert_eq!(
            memo.group(root).read().exprs.len(),
            2,
            "group {root} holds exactly the original and the commuted join"
        );
    }
    assert_no_duplicate_topologies(&memo);
    memo.check_integrity().expect("index/directory agreement");
}
