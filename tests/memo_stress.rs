//! Multi-threaded Memo stress tests (§4.2).
//!
//! The Memo's two concurrent hot paths — sharded duplicate detection on
//! insert and the lock-free chunked group directory — must keep the
//! structure canonical under insert storms: identical expression topologies
//! inserted from many threads land in one group, group ids stay dense and
//! stable, and the dedup index always agrees with the directory
//! (`Memo::check_integrity`).

use orca::memo::{GroupId, Memo, Operator};
use orca_catalog::{ColumnMeta, Distribution, TableDesc};
use orca_common::{ColId, DataType, MdId, SysId};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::scalar::ScalarExpr;
use std::collections::HashMap;
use std::sync::Arc;

const THREADS: usize = 8;

fn tref(oid: u64) -> TableRef {
    TableRef(Arc::new(TableDesc::new(
        MdId::new(SysId::Gpdb, oid, 1),
        &format!("t{oid}"),
        vec![
            ColumnMeta::new("a", DataType::Int),
            ColumnMeta::new("b", DataType::Int),
        ],
        Distribution::Hashed(vec![0]),
    )))
}

fn leaf(oid: u64) -> LogicalExpr {
    let first = (oid as u32 - 1) * 2;
    LogicalExpr::leaf(LogicalOp::Get {
        table: tref(oid),
        cols: vec![ColId(first), ColId(first + 1)],
        parts: None,
    })
}

fn join(l: LogicalExpr, r: LogicalExpr, lcol: u32, rcol: u32) -> LogicalExpr {
    LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(lcol), ColId(rcol)),
        },
        vec![l, r],
    )
}

/// A family of join trees over a shared pool of leaves, with heavily
/// overlapping sub-trees (every tree `i` reuses the `leaf(i) ⋈ leaf(i+1)`
/// spine of its neighbours).
fn workload(trees: u64) -> Vec<LogicalExpr> {
    (1..=trees)
        .map(|i| {
            let base = join(leaf(i), leaf(i + 1), (i as u32 - 1) * 2, i as u32 * 2);
            join(base, leaf(i + 2), (i as u32 - 1) * 2, (i as u32 + 1) * 2)
        })
        .collect()
}

/// Copy the workload into `memo` from `THREADS` threads, each walking the
/// tree list starting at a different offset so insert orders differ.
fn storm(memo: &Arc<Memo>, work: &[LogicalExpr]) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let memo = Arc::clone(memo);
            s.spawn(move || {
                for i in 0..work.len() {
                    memo.copy_in(&work[(i + t * 3) % work.len()]);
                }
            });
        }
    });
}

/// Every distinct topology must occupy exactly one slot in exactly one
/// group, no matter how the threads interleaved.
fn assert_no_duplicate_topologies(memo: &Memo) {
    let mut seen: HashMap<(Operator, Vec<GroupId>), (GroupId, usize)> = HashMap::new();
    for idx in 0..memo.num_groups() {
        let gid = GroupId(idx as u32);
        let group = memo.group(gid);
        let g = group.read();
        assert_eq!(g.id, gid, "directory slot {idx} holds the wrong group");
        for (eid, e) in g.exprs.iter().enumerate() {
            let prev = seen.insert((e.op.clone(), e.children.clone()), (gid, eid));
            assert!(
                prev.is_none(),
                "topology stored twice: {gid}/{eid} and {:?}",
                prev
            );
        }
    }
}

#[test]
fn concurrent_copy_in_storm_is_canonical() {
    let work = workload(24);
    let memo = Arc::new(Memo::new());
    storm(&memo, &work);

    // Serial reference: the storm must produce exactly the groups a
    // single-threaded copy-in produces.
    let reference = Memo::new();
    for tree in &work {
        reference.copy_in(tree);
    }
    assert_eq!(memo.num_groups(), reference.num_groups());
    assert_eq!(memo.num_exprs(), reference.num_exprs());

    assert_no_duplicate_topologies(&memo);
    memo.check_integrity().expect("index/directory agreement");

    // The overlap was real: most insertions were answered by dedup.
    let snap = memo.metrics().snapshot();
    assert!(snap.dedup_hits > snap.exprs_inserted);
}

#[test]
fn repeated_storms_reach_identical_group_counts() {
    let work = workload(16);
    let counts: Vec<(usize, usize)> = (0..3)
        .map(|_| {
            let memo = Arc::new(Memo::new());
            storm(&memo, &work);
            memo.check_integrity().expect("index/directory agreement");
            (memo.num_groups(), memo.num_exprs())
        })
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "group/expr counts varied across storms: {counts:?}"
    );
}

/// Canonical-aware duplicate check: across all *canonical* groups, every
/// live topology must be stored exactly once. (Merged shells are drained,
/// so they are skipped by construction.)
fn assert_single_canonical_home_per_topology(memo: &Memo) {
    let mut seen: HashMap<(Operator, Vec<GroupId>), (GroupId, usize)> = HashMap::new();
    for gid in memo.canonical_groups() {
        let group = memo.group(gid);
        let g = group.read();
        for (eid, e) in g.exprs.iter().enumerate() {
            if e.dead {
                continue;
            }
            let prev = seen.insert((e.op.clone(), e.children.clone()), (gid, eid));
            assert!(
                prev.is_none(),
                "topology stored twice after merges: {gid}/{eid} and {:?}",
                prev
            );
        }
    }
}

#[test]
fn merge_storm_single_canonical_group_per_topology() {
    // N threads race standalone spellings of shared join shapes against
    // targeted copies of the same shapes aimed at thread-private host
    // groups — exactly the collision §4.2 group merging resolves. Every
    // host must end up merged with the shape's standalone home, leaving
    // one canonical group per topology no matter how the threads
    // interleaved.
    const SHAPES: u64 = 6;
    let memo = Arc::new(Memo::new());
    // Shared leaf groups minted up front so every thread references the
    // same children.
    let shapes: Vec<(GroupId, GroupId, Operator)> = (1..=SHAPES)
        .map(|i| {
            let l = memo.copy_in(&leaf(i));
            let r = memo.copy_in(&leaf(i + 1));
            let op = Operator::Logical(LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId((i as u32 - 1) * 2), ColId(i as u32 * 2)),
            });
            (l, r, op)
        })
        .collect();
    let hosts: Vec<std::sync::Mutex<Vec<(usize, GroupId)>>> = (0..THREADS)
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();
    std::thread::scope(|s| {
        for (t, host_log) in hosts.iter().enumerate() {
            let memo = Arc::clone(&memo);
            let shapes = &shapes;
            s.spawn(move || {
                for k in 0..shapes.len() {
                    let (l, r, op) = &shapes[(k + t) % shapes.len()];
                    if t % 2 == 0 {
                        // Standalone spelling: lands in (or dedups to) the
                        // shape's home group.
                        memo.insert_expr(None, op.clone(), vec![*l, *r]);
                    } else {
                        // Thread-private host group (unique predicate makes
                        // the topology unique), then a targeted copy of the
                        // shared shape — the merge trigger.
                        let unique = Operator::Logical(LogicalOp::Join {
                            kind: JoinKind::Inner,
                            pred: ScalarExpr::col_eq_col(
                                ColId(1000 + (t * SHAPES as usize + k) as u32),
                                ColId(0),
                            ),
                        });
                        let (host, _, _) = memo.insert_expr(None, unique, vec![*l, *r]);
                        let (home, _, _) = memo.insert_expr(Some(host), op.clone(), vec![*l, *r]);
                        host_log
                            .lock()
                            .unwrap()
                            .push(((k + t) % shapes.len(), home));
                    }
                }
            });
        }
    });
    // Merges actually happened (every odd thread forced at least one).
    let snap = memo.metrics().snapshot();
    assert!(snap.groups_merged > 0, "storm never triggered a merge");
    // Every host that received a targeted copy of shape k now resolves to
    // the same canonical group as every other copy of shape k.
    for host_log in &hosts {
        for &(k, home) in host_log.lock().unwrap().iter() {
            let (l, r, op) = &shapes[k];
            let (canon, _, added) = memo.insert_expr(None, op.clone(), vec![*l, *r]);
            assert!(!added, "shape {k} lost its dedup entry");
            assert_eq!(
                memo.resolve(home),
                memo.resolve(canon),
                "shape {k}: targeted home and standalone home did not merge"
            );
        }
    }
    assert_single_canonical_home_per_topology(&memo);
    memo.check_integrity().expect("index/directory agreement");
}

#[test]
fn single_shard_memo_behaves_identically() {
    // The dedup shard count is a pure performance knob: a 1-shard Memo
    // (every insert serialized through one mutex) must converge on exactly
    // the same groups and expressions as the default-sharded one.
    let work = workload(16);
    let single = Arc::new(Memo::with_shards(1));
    assert_eq!(single.dedup_shards(), 1);
    storm(&single, &work);
    let reference = Memo::new();
    for tree in &work {
        reference.copy_in(tree);
    }
    assert_eq!(single.num_groups(), reference.num_groups());
    assert_eq!(single.num_exprs(), reference.num_exprs());
    single.check_integrity().expect("index/directory agreement");
    // With one shard and many threads the opportunistic try_lock misses
    // are the expected signal — but only observable with real parallelism.
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus > 1 {
        assert!(
            single.metrics().snapshot().dedup_shard_collisions > 0,
            "8-thread storm on a 1-shard index never contended"
        );
    }
}

#[test]
fn targeted_insert_storm_no_intra_group_duplicates() {
    // One join group per tree; every thread re-inserts the original and the
    // commuted variant into the SAME group, racing on the dedup shards.
    let work = workload(8);
    let memo = Arc::new(Memo::new());
    let roots: Vec<GroupId> = work.iter().map(|t| memo.copy_in(t)).collect();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let memo = Arc::clone(&memo);
            let roots = roots.clone();
            s.spawn(move || {
                for &root in &roots {
                    let (op, c1, c2) = {
                        let group = memo.group(root);
                        let g = group.read();
                        let e = &g.exprs[0];
                        (e.op.clone(), e.children[0], e.children[1])
                    };
                    for _ in 0..50 {
                        memo.insert_expr(Some(root), op.clone(), vec![c1, c2]);
                        memo.insert_expr(Some(root), op.clone(), vec![c2, c1]);
                    }
                }
            });
        }
    });
    for &root in &roots {
        assert_eq!(
            memo.group(root).read().exprs.len(),
            2,
            "group {root} holds exactly the original and the commuted join"
        );
    }
    assert_no_duplicate_topologies(&memo);
    memo.check_integrity().expect("index/directory agreement");
}
