//! The heavyweight correctness gate: every one of the 111 suite queries is
//! compiled, optimized by Orca, executed on the MPP simulator, and checked
//! against the naive single-node reference interpretation of the bound
//! logical tree. A sample of queries additionally runs through the legacy
//! Planner and the rule-based rival planners — all engines must agree on
//! results (only speed may differ).

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_common::SegmentConfig;
use orca_executor::engine::sort_rows;
use orca_executor::reference::run_reference;
use orca_executor::ExecEngine;
use orca_planner::{EngineProfile, LegacyPlanner};
use orca_tpcds::{build_catalog, suite};
use std::sync::Arc;

const SCALE: f64 = 0.02;
const SEGMENTS: usize = 4;

#[test]
fn all_111_queries_orca_vs_reference() {
    let cluster = SegmentConfig::default().with_segments(SEGMENTS);
    let (provider, db) = build_catalog(SCALE, cluster.clone());
    let engine = ExecEngine::new(&db);
    let optimizer = Optimizer::new(
        provider.clone(),
        OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(cluster),
    );
    let mut checked = 0;
    for q in suite() {
        let registry = Arc::new(orca_expr::ColumnRegistry::new());
        let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry)
            .unwrap_or_else(|e| panic!("{} bind: {e}\n{}", q.id, q.sql));
        let reqs = QueryReqs {
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
        };
        let (plan, stats) = optimizer
            .optimize(&bound.expr, &registry, &reqs)
            .unwrap_or_else(|e| panic!("{} optimize: {e}\n{}", q.id, q.sql));
        assert!(stats.plan_cost.is_finite(), "{}", q.id);
        let got = engine.run(&plan, &bound.output_cols).unwrap_or_else(|e| {
            panic!(
                "{} exec: {e}\n{}",
                q.id,
                orca_expr::pretty::explain_physical(&plan)
            )
        });
        let expected = run_reference(&db, &bound.expr, &bound.output_cols)
            .unwrap_or_else(|e| panic!("{} reference: {e}", q.id));
        // LIMIT without full ORDER BY is nondeterministic in which rows
        // survive; compare counts there, exact multisets otherwise.
        let deterministic = !q.sql.to_lowercase().contains("limit")
            || bound.order.0.len() >= bound.output_cols.len();
        if deterministic {
            assert_eq!(
                sort_rows(got.rows.clone()),
                sort_rows(expected),
                "{} diverged\n{}\n{}",
                q.id,
                q.sql,
                orca_expr::pretty::explain_physical(&plan)
            );
        } else {
            assert_eq!(
                got.rows.len(),
                expected.len(),
                "{} row count diverged\n{}",
                q.id,
                q.sql
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 111);
}

#[test]
fn legacy_planner_agrees_on_results() {
    let cluster = SegmentConfig::default().with_segments(SEGMENTS);
    let (provider, db) = build_catalog(SCALE, cluster);
    let engine = ExecEngine::new(&db);
    let cache = orca_catalog::MdCache::new();
    // Legacy plans run the same queries; results must match the reference
    // even though the plans are worse. Sample every 4th query to bound
    // test time (SubPlan execution is deliberately slow).
    for (i, q) in suite().into_iter().enumerate() {
        if i % 4 != 0 {
            continue;
        }
        let registry = Arc::new(orca_expr::ColumnRegistry::new());
        let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry).expect(&q.id);
        let md = orca_catalog::MdAccessor::new(
            cache.clone(),
            provider.clone() as Arc<dyn orca_catalog::provider::MdProvider>,
        );
        let planner = LegacyPlanner::new(&md, &registry);
        let (plan, est_cost) = planner
            .plan(&bound.expr, &bound.order)
            .unwrap_or_else(|e| panic!("{} legacy plan: {e}", q.id));
        assert!(est_cost.is_finite());
        let got = engine.run(&plan, &bound.output_cols).unwrap_or_else(|e| {
            panic!(
                "{} legacy exec: {e}\n{}",
                q.id,
                orca_expr::pretty::explain_physical(&plan)
            )
        });
        let expected = run_reference(&db, &bound.expr, &bound.output_cols).expect(&q.id);
        let deterministic = !q.sql.to_lowercase().contains("limit")
            || bound.order.0.len() >= bound.output_cols.len();
        if deterministic {
            assert_eq!(
                sort_rows(got.rows.clone()),
                sort_rows(expected),
                "{} legacy diverged\n{}",
                q.id,
                orca_expr::pretty::explain_physical(&plan)
            );
        } else {
            assert_eq!(got.rows.len(), expected.len(), "{} legacy count", q.id);
        }
    }
}

#[test]
fn rival_planners_agree_on_supported_queries() {
    let (provider, db) = build_catalog(SCALE, SegmentConfig::default().with_segments(SEGMENTS));
    // Run with generous memory so plans succeed (the OOM behavior is a
    // benchmark concern, not a correctness one).
    let engine = ExecEngine::new(&db);
    for profile in [
        EngineProfile::impala(),
        EngineProfile::presto(),
        EngineProfile::stinger(),
    ] {
        let mut ran = 0;
        for q in suite() {
            if !profile.supports_all(&q.features) {
                continue;
            }
            let registry = Arc::new(orca_expr::ColumnRegistry::new());
            let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry).expect(&q.id);
            let (plan, _) = profile
                .plan(&bound.expr, &q.features, &bound.order, &registry)
                .unwrap_or_else(|e| panic!("{} {} plan: {e}", profile.name, q.id));
            let got = engine.run(&plan, &bound.output_cols).unwrap_or_else(|e| {
                panic!(
                    "{} {} exec: {e}\n{}",
                    profile.name,
                    q.id,
                    orca_expr::pretty::explain_physical(&plan)
                )
            });
            let expected = run_reference(&db, &bound.expr, &bound.output_cols).expect(&q.id);
            let deterministic = !q.sql.to_lowercase().contains("limit")
                || bound.order.0.len() >= bound.output_cols.len();
            if deterministic {
                assert_eq!(
                    sort_rows(got.rows.clone()),
                    sort_rows(expected),
                    "{} {} diverged",
                    profile.name,
                    q.id
                );
            } else {
                assert_eq!(got.rows.len(), expected.len());
            }
            ran += 1;
        }
        assert!(ran > 0, "{} ran no queries", profile.name);
    }
}
