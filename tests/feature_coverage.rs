//! Feature-level integration tests for paths the suite exercises lightly:
//! index scans through the optimizer (order delivery without Sort),
//! non-equi joins (NL join + Spool rewindability enforcement), DISTINCT
//! aggregates, nested subqueries, and NULL-heavy predicates — each checked
//! against the reference interpreter.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, IndexDesc, MemoryProvider, TableStats};
use orca_common::{DataType, Datum, MdId, SegmentConfig, SysId};
use orca_executor::engine::sort_rows;
use orca_executor::reference::run_reference;
use orca_executor::{Database, ExecEngine};
use orca_expr::physical::PhysicalOp;
use orca_expr::props::DistSpec;
use orca_expr::ColumnRegistry;
use std::sync::Arc;

const SEGMENTS: usize = 4;

fn setup() -> (Arc<MemoryProvider>, Database) {
    let p = Arc::new(MemoryProvider::new());
    let mut db = Database::new(SegmentConfig::default().with_segments(SEGMENTS));
    // orders(id, cust, qty, note) hashed(id), with an index on qty.
    let orders = p.register(
        "orders",
        vec![
            ColumnMeta::new("id", DataType::Int).not_null(),
            ColumnMeta::new("cust", DataType::Int),
            ColumnMeta::new("qty", DataType::Int),
            ColumnMeta::new("note", DataType::Str),
        ],
        Distribution::Hashed(vec![0]),
    );
    p.add_index(IndexDesc {
        mdid: MdId::new(SysId::Gpdb, 9001, 1),
        name: "orders_qty_idx".into(),
        table: orders,
        key_columns: vec![2],
    });
    let rows: Vec<Vec<Datum>> = (0..500)
        .map(|i| {
            vec![
                Datum::Int(i),
                if i % 11 == 0 {
                    Datum::Null
                } else {
                    Datum::Int(i % 40)
                },
                Datum::Int((i * 37) % 100),
                Datum::Str(format!("n{}", i % 5)),
            ]
        })
        .collect();
    let mut stats = TableStats::new(rows.len() as f64, 4);
    for c in 0..4 {
        let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
        stats.columns[c] = Some(ColumnStats::from_column(&values, 16));
    }
    p.set_stats(orders, stats);
    db.load_table(p.table(orders).unwrap(), rows).unwrap();

    // tiers(lo, hi, name) replicated — for the non-equi join.
    let tiers = p.register(
        "tiers",
        vec![
            ColumnMeta::new("lo", DataType::Int).not_null(),
            ColumnMeta::new("hi", DataType::Int).not_null(),
            ColumnMeta::new("name", DataType::Str),
        ],
        Distribution::Replicated,
    );
    let tier_rows: Vec<Vec<Datum>> = (0..5)
        .map(|i| {
            vec![
                Datum::Int(i * 20),
                Datum::Int((i + 1) * 20),
                Datum::Str(format!("tier{i}")),
            ]
        })
        .collect();
    let mut tstats = TableStats::new(5.0, 3);
    for c in 0..3 {
        let values: Vec<Datum> = tier_rows.iter().map(|r| r[c].clone()).collect();
        tstats.columns[c] = Some(ColumnStats::from_column(&values, 4));
    }
    p.set_stats(tiers, tstats);
    db.load_table(p.table(tiers).unwrap(), tier_rows).unwrap();
    (p, db)
}

fn run_sql(
    p: &Arc<MemoryProvider>,
    db: &Database,
    sql: &str,
) -> (Vec<Vec<Datum>>, orca_expr::physical::PhysicalPlan) {
    let registry = Arc::new(ColumnRegistry::new());
    let bound = orca_sql::compile(sql, p.as_ref(), &registry).expect("binds");
    let optimizer = Optimizer::new(
        p.clone(),
        OptimizerConfig::default()
            .with_workers(2)
            .with_cluster(SegmentConfig::default().with_segments(SEGMENTS)),
    );
    let reqs = QueryReqs {
        output_cols: bound.output_cols.clone(),
        order: bound.order.clone(),
        dist: DistSpec::Singleton,
    };
    let (plan, _) = optimizer
        .optimize(&bound.expr, &registry, &reqs)
        .expect("optimizes");
    let engine = ExecEngine::new(db);
    let got = engine.run(&plan, &bound.output_cols).expect("executes");
    let expected = run_reference(db, &bound.expr, &bound.output_cols).expect("reference");
    assert_eq!(
        sort_rows(got.rows.clone()),
        sort_rows(expected),
        "results diverged for: {sql}\n{}",
        orca_expr::pretty::explain_physical(&plan)
    );
    (got.rows, plan)
}

/// ORDER BY on the indexed column: the optimizer may pick IndexScan to
/// avoid the Sort; either way results are correct and sorted.
#[test]
fn index_scan_delivers_order() {
    let (p, db) = setup();
    let (rows, plan) = run_sql(&p, &db, "SELECT qty, id FROM orders ORDER BY qty");
    // Sorted output, full cardinality.
    assert_eq!(rows.len(), 500);
    let quantities: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let mut sorted = quantities.clone();
    sorted.sort();
    assert_eq!(quantities, sorted);
    // The Memo considered the index path; assert the chosen plan uses it
    // (an ordered index scan beats scan+sort under the default model).
    let used_index = !plan
        .find_ops(&|op| matches!(op, PhysicalOp::IndexScan { .. }))
        .is_empty();
    let used_sort = !plan
        .find_ops(&|op| matches!(op, PhysicalOp::Sort { .. }))
        .is_empty();
    assert!(
        used_index || used_sort,
        "some order mechanism must exist:\n{}",
        orca_expr::pretty::explain_physical(&plan)
    );
    assert!(
        used_index,
        "index scan should win for a full-table ordered read:\n{}",
        orca_expr::pretty::explain_physical(&plan)
    );
}

/// Non-equi join (range bucketing): only NL join applies; the inner side
/// needs rewindability (Spool or an inherently rewindable subtree).
#[test]
fn non_equi_join_uses_nl_with_rewindable_inner() {
    let (p, db) = setup();
    let (rows, plan) = run_sql(
        &p,
        &db,
        "SELECT o.id, t.name FROM orders o, tiers t \
         WHERE o.qty >= t.lo AND o.qty < t.hi",
    );
    assert_eq!(rows.len(), 500, "every order falls into exactly one tier");
    assert!(
        !plan
            .find_ops(&|op| matches!(op, PhysicalOp::NLJoin { .. }))
            .is_empty(),
        "non-equi predicates require NL join:\n{}",
        orca_expr::pretty::explain_physical(&plan)
    );
    assert!(plan
        .find_ops(&|op| matches!(op, PhysicalOp::HashJoin { .. }))
        .is_empty());
}

/// DISTINCT aggregates and expression-level aggregation.
#[test]
fn distinct_aggregates() {
    let (p, db) = setup();
    let (rows, _) = run_sql(
        &p,
        &db,
        "SELECT count(DISTINCT cust) AS c, count(*) AS n, sum(qty) / count(*) AS avg_qty \
         FROM orders",
    );
    assert_eq!(rows.len(), 1);
    let distinct_cust = rows[0][0].as_i64().unwrap();
    assert_eq!(distinct_cust, 40, "40 distinct non-null cust values");
    assert_eq!(rows[0][1].as_i64().unwrap(), 500);
}

/// Nested subqueries: an IN subquery whose body contains its own EXISTS.
#[test]
fn nested_subqueries() {
    let (p, db) = setup();
    run_sql(
        &p,
        &db,
        "SELECT id FROM orders o \
         WHERE o.cust IN (SELECT o2.cust FROM orders o2 \
                          WHERE o2.qty > 90 \
                            AND EXISTS (SELECT 1 FROM tiers t WHERE t.lo = 80)) \
         ORDER BY id LIMIT 30",
    );
}

/// NULL-heavy predicates: IS NULL / IS NOT NULL and NULL-key join
/// semantics survive distribution.
#[test]
fn null_handling_predicates_and_joins() {
    let (p, db) = setup();
    let (null_rows, _) = run_sql(&p, &db, "SELECT id FROM orders WHERE cust IS NULL");
    assert_eq!(null_rows.len(), 500 / 11 + 1, "ids divisible by 11");
    let (rows, _) = run_sql(
        &p,
        &db,
        "SELECT o1.id, o2.id FROM orders o1 JOIN orders o2 ON o1.cust = o2.cust \
         WHERE o1.id = o2.id",
    );
    // NULL cust never joins, even to itself.
    assert!(rows.iter().all(|r| r[0].as_i64().unwrap() % 11 != 0));
}

/// CASE inside aggregation, HAVING over an aggregate, ORDER BY DESC.
#[test]
fn case_having_desc() {
    let (p, db) = setup();
    let (rows, _) = run_sql(
        &p,
        &db,
        "SELECT note, sum(CASE WHEN qty >= 50 THEN 1 ELSE 0 END) AS big \
         FROM orders GROUP BY note HAVING count(*) > 10 ORDER BY big DESC, note",
    );
    assert_eq!(rows.len(), 5);
    let bigs: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    let mut sorted = bigs.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(bigs, sorted, "descending by the CASE sum");
}

/// A replicated table scanned standalone must not duplicate rows on its
/// way to the master.
#[test]
fn replicated_scan_gathers_single_copy() {
    let (p, db) = setup();
    let (rows, _) = run_sql(&p, &db, "SELECT name FROM tiers ORDER BY name");
    assert_eq!(rows.len(), 5);
}
