//! §6.1 as a testing framework: a corpus of AMPERe dumps with expected
//! plans acts as a plan-regression suite ("any bug with an accompanying
//! AMPERe dump ... can be automatically turned into a self-contained test
//! case"). Plus §5's metadata versioning: changed metadata (new MdId
//! version) must be refetched, and plans must react to the new statistics.

use orca::amper;
use orca::engine::{Optimizer, OptimizerConfig};
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
use orca_common::{DataType, Datum, SegmentConfig};
use orca_dxl::{DxlPlan, DxlQuery};
use orca_expr::physical::{MotionKind, PhysicalOp};
use orca_tpcds::{build_catalog, suite};
use std::sync::Arc;

/// Build dumps (with expected plans) for a slice of the suite, then replay
/// every dump offline and require identical plans.
#[test]
fn amper_dump_corpus_replays_identically() {
    let (provider, _db) = build_catalog(0.02, SegmentConfig::default().with_segments(4));
    let optimizer = Optimizer::new(provider.clone(), OptimizerConfig::default());
    let dir = std::env::temp_dir().join("orca_amper_corpus");
    std::fs::create_dir_all(&dir).unwrap();

    let mut corpus = Vec::new();
    for (i, q) in suite().into_iter().enumerate() {
        if i % 12 != 0 {
            continue; // every 12th query → ~9 dumps
        }
        let registry = Arc::new(orca_expr::ColumnRegistry::new());
        let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry).expect(&q.id);
        let dxl_query = DxlQuery {
            expr: bound.expr.clone(),
            output_cols: bound.output_cols.clone(),
            order: bound.order.clone(),
            dist: orca_expr::props::DistSpec::Singleton,
            columns: (0..registry.len())
                .map(|c| {
                    let info = registry.info(orca_common::ColId(c as u32));
                    (info.name, info.dtype)
                })
                .collect(),
        };
        let (plan, stats) = optimizer.optimize_query(&dxl_query).expect(&q.id);
        let dump = amper::capture(
            &dxl_query,
            &optimizer.config,
            provider.as_ref(),
            None,
            Some(DxlPlan {
                plan,
                cost: stats.plan_cost,
            }),
        )
        .expect(&q.id);
        let path = dir.join(format!("{}.dxl", q.id));
        amper::save(&dump, &path).expect(&q.id);
        corpus.push((q.id.clone(), path));
    }
    assert!(corpus.len() >= 8);

    // Replay phase: a fresh process would do exactly this — no provider,
    // no catalog, just the dump files.
    for (id, path) in &corpus {
        let dump = amper::load(path).unwrap_or_else(|e| panic!("{id}: load: {e}"));
        amper::replay_as_test(&dump).unwrap_or_else(|e| panic!("{id}: {e}"));
        std::fs::remove_file(path).ok();
    }
}

/// Metadata versioning: after stats change under a bumped MdId, a new
/// optimization session fetches the new version and may flip the plan.
#[test]
fn metadata_version_bump_changes_plan() {
    let provider = Arc::new(MemoryProvider::new());
    // big(k,v) hashed(k); small(k,v) hashed(k) but *initially misdeclared*
    // as huge, so the optimizer avoids broadcasting it.
    let big = provider.register(
        "big",
        vec![
            ColumnMeta::new("k", DataType::Int),
            ColumnMeta::new("v", DataType::Int),
        ],
        // Hashed on v, NOT the join key — co-location would have to move
        // the big side.
        Distribution::Hashed(vec![1]),
    );
    let small = provider.register(
        "small",
        vec![
            ColumnMeta::new("k", DataType::Int),
            ColumnMeta::new("v", DataType::Int),
        ],
        Distribution::Hashed(vec![1]), // not on the join key
    );
    let values: Vec<Datum> = (0..100).map(Datum::Int).collect();
    let big_stats = TableStats::new(1_000_000.0, 2)
        .set_column(0, ColumnStats::from_column(&values, 8))
        .set_column(1, ColumnStats::from_column(&values, 8));
    provider.set_stats(big, big_stats);
    let huge_small = TableStats::new(900_000.0, 2)
        .set_column(0, ColumnStats::from_column(&values, 8))
        .set_column(1, ColumnStats::from_column(&values, 8));
    provider.set_stats(small, huge_small);

    let sql = "SELECT big.v FROM big, small WHERE big.k = small.k";
    let optimizer = Optimizer::new(
        provider.clone(),
        OptimizerConfig::default().with_cluster(SegmentConfig::mpp_16()),
    );
    let registry = Arc::new(orca_expr::ColumnRegistry::new());
    let bound = orca_sql::compile(sql, provider.as_ref(), &registry).expect("binds");
    let reqs = orca::engine::QueryReqs::gather_all(bound.output_cols.clone());
    let (plan_before, _) = optimizer
        .optimize(&bound.expr, &registry, &reqs)
        .expect("first plan");
    let broadcasts_before = plan_before
        .find_ops(&|op| {
            matches!(
                op,
                PhysicalOp::Motion {
                    kind: MotionKind::Broadcast
                }
            )
        })
        .len();
    assert_eq!(
        broadcasts_before,
        0,
        "two huge sides must not broadcast:\n{}",
        orca_expr::pretty::explain_physical(&plan_before)
    );

    // ANALYZE discovers `small` is actually tiny → version bump.
    let new_id = provider.bump_table_version(small).expect("bumps");
    let tiny = TableStats::new(50.0, 2)
        .set_column(0, ColumnStats::from_column(&values[..50], 8))
        .set_column(1, ColumnStats::from_column(&values[..50], 8));
    provider.set_stats(new_id, tiny);

    // A *new binding* resolves the table name to the new version; the
    // optimizer session fetches the fresh metadata (the old cache entries
    // are keyed by the old MdId and become unreachable).
    let registry2 = Arc::new(orca_expr::ColumnRegistry::new());
    let bound2 = orca_sql::compile(sql, provider.as_ref(), &registry2).expect("rebinds");
    let reqs2 = orca::engine::QueryReqs::gather_all(bound2.output_cols.clone());
    let (plan_after, _) = optimizer
        .optimize(&bound2.expr, &registry2, &reqs2)
        .expect("second plan");
    let broadcasts_after = plan_after
        .find_ops(&|op| {
            matches!(
                op,
                PhysicalOp::Motion {
                    kind: MotionKind::Broadcast
                }
            )
        })
        .len();
    assert_eq!(
        broadcasts_after,
        1,
        "a tiny build side should now broadcast:\n{}",
        orca_expr::pretty::explain_physical(&plan_after)
    );
}
