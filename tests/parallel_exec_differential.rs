//! Differential testing of the parallel execution subsystem: random
//! optimized plans must produce *byte-identical* results on the serial
//! engine and on `ParallelEngine` at every worker count, and both must
//! agree with the naive single-node reference interpreter. Plus targeted
//! liveness tests: a mid-query abort and a tiny interconnect window must
//! drain cleanly — no deadlock, no leaked threads.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider as _;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
use orca_common::{ColId, CteId, DataType, Datum, SegmentConfig};
use orca_executor::engine::sort_rows;
use orca_executor::reference::run_reference;
use orca_executor::{Database, ExecEngine, ParallelConfig, ParallelEngine};
use orca_expr::logical::{AggStage, JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::OrderSpec;
use orca_expr::scalar::{AggFunc, CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;
use orca_gpos::AbortSignal;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const SEGMENTS: usize = 4;
/// Three tables, 3 int columns each; table i owns ColIds 3i..3i+3.
const NCOLS: u32 = 3;

struct Fixture {
    provider: Arc<MemoryProvider>,
    db: Database,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let provider = Arc::new(MemoryProvider::new());
        let mut db = Database::new(SegmentConfig::default().with_segments(SEGMENTS));
        let dists = [
            Distribution::Hashed(vec![0]),
            Distribution::Hashed(vec![1]),
            Distribution::Replicated,
        ];
        for (t, dist) in dists.into_iter().enumerate() {
            let name = format!("dt{t}");
            let id = provider.register(
                &name,
                (0..NCOLS)
                    .map(|c| ColumnMeta::new(&format!("c{c}"), DataType::Int))
                    .collect(),
                dist,
            );
            let rows: Vec<Vec<Datum>> = (0..150)
                .map(|i| {
                    (0..NCOLS)
                        .map(|c| {
                            let v = (i * 11 + (c as i64) * 5 + (t as i64) * 7) % 19;
                            if v == 18 {
                                Datum::Null
                            } else {
                                Datum::Int(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut stats = TableStats::new(rows.len() as f64, NCOLS as usize);
            for c in 0..NCOLS as usize {
                let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
                stats.columns[c] = Some(ColumnStats::from_column(&values, 8));
            }
            provider.set_stats(id, stats);
            db.load_table(provider.table(id).expect("registered"), rows)
                .expect("load");
        }
        Fixture { provider, db }
    })
}

#[derive(Debug, Clone)]
struct QuerySpec {
    tables: Vec<usize>,
    joins: Vec<(u32, u32, u8)>,
    filters: Vec<(u32, u8, i64)>,
    agg: Option<(u32, bool)>,
    limit: Option<u64>,
}

fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        prop::sample::subsequence(vec![0usize, 1, 2], 1..=3).prop_shuffle(),
        prop::collection::vec((0u32..NCOLS, 0u32..NCOLS, 0u8..4), 0..2),
        prop::collection::vec((0u32..NCOLS, 0u8..5, 0i64..18), 0..3),
        prop::option::of((0u32..NCOLS, any::<bool>())),
        prop::option::of(1u64..25),
    )
        .prop_map(|(tables, joins, filters, agg, limit)| QuerySpec {
            tables,
            joins,
            filters,
            agg,
            limit,
        })
}

fn col(table: usize, c: u32) -> ColId {
    ColId(table as u32 * NCOLS + c)
}

fn build_query(spec: &QuerySpec, registry: &ColumnRegistry) -> (LogicalExpr, Vec<ColId>) {
    let fx = fixture();
    while registry.len() < (3 * NCOLS) as usize {
        registry.fresh(&format!("c{}", registry.len()), DataType::Int);
    }
    let get = |t: usize| {
        let mdid = fx.provider.table_by_name(&format!("dt{t}")).expect("table");
        LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(fx.provider.table(mdid).expect("desc")),
            cols: (0..NCOLS).map(|c| col(t, c)).collect(),
            parts: None,
        })
    };
    let mut expr = get(spec.tables[0]);
    let mut visible: Vec<ColId> = expr.output_cols();
    for (i, t) in spec.tables.iter().enumerate().skip(1) {
        let (lc, rc, kindsel) = spec.joins.get(i - 1).copied().unwrap_or((0, 0, 0));
        let left_col = visible[(lc as usize) % visible.len()];
        let right_col = col(*t, rc);
        let kind = match kindsel % 4 {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::LeftSemi,
            _ => JoinKind::LeftAntiSemi,
        };
        expr = LogicalExpr::new(
            LogicalOp::Join {
                kind,
                pred: ScalarExpr::col_eq_col(left_col, right_col),
            },
            vec![expr, get(*t)],
        );
        visible = expr.output_cols();
    }
    let mut conjuncts = Vec::new();
    for (c, op, v) in &spec.filters {
        let target = visible[(*c as usize) % visible.len()];
        let op = match op % 5 {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Ge,
            _ => CmpOp::Le,
        };
        conjuncts.push(ScalarExpr::cmp(
            op,
            ScalarExpr::col(target),
            ScalarExpr::int(*v),
        ));
    }
    if !conjuncts.is_empty() {
        expr = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(conjuncts),
            },
            vec![expr],
        );
    }
    let mut output = visible.clone();
    if let Some((gc, use_sum)) = &spec.agg {
        let group = visible[(*gc as usize) % visible.len()];
        let agg_col = registry.fresh("agg_out", DataType::Int);
        let agg_arg = visible[(*gc as usize + 1) % visible.len()];
        let func = if *use_sum {
            AggFunc::Sum
        } else {
            AggFunc::Count
        };
        expr = LogicalExpr::new(
            LogicalOp::GbAgg {
                group_cols: vec![group],
                aggs: vec![(
                    agg_col,
                    ScalarExpr::Agg {
                        func,
                        arg: Some(Box::new(ScalarExpr::col(agg_arg))),
                        distinct: false,
                    },
                )],
                stage: AggStage::Single,
            },
            vec![expr],
        );
        output = vec![group, agg_col];
    }
    if let Some(n) = spec.limit {
        expr = LogicalExpr::new(
            LogicalOp::Limit {
                order: OrderSpec::by(&output),
                offset: 0,
                count: Some(n),
            },
            vec![expr],
        );
    }
    (expr, output)
}

fn optimize(expr: &LogicalExpr, registry: &Arc<ColumnRegistry>, output: &[ColId]) -> PhysicalPlan {
    let fx = fixture();
    let optimizer = Optimizer::new(
        fx.provider.clone(),
        OptimizerConfig::default().with_cluster(SegmentConfig::default().with_segments(SEGMENTS)),
    );
    let reqs = QueryReqs::gather_all(output.to_vec());
    let (plan, _) = optimizer
        .optimize(expr, registry, &reqs)
        .expect("optimizes");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// For random optimized plans: row-serial rows == columnar-serial
    /// rows at batch sizes 1, 7 and 1024 (byte-identical, simulated time
    /// bit-equal) == parallel rows through both kernels at 1, 2 and 4
    /// compute workers, and the multiset agrees with the reference
    /// interpreter. The fixture is null-heavy (every 19th value is NULL)
    /// so null bitmaps and NULL join keys are exercised throughout. Odd
    /// batch sizes and a tiny channel window force multi-batch streams
    /// through the interconnect.
    #[test]
    fn parallel_equals_serial_at_every_worker_count(spec in spec_strategy()) {
        let fx = fixture();
        let registry = Arc::new(ColumnRegistry::new());
        let (expr, output) = build_query(&spec, &registry);
        let plan = optimize(&expr, &registry, &output);
        let serial = ExecEngine::new(&fx.db).run(&plan, &output).expect("serial");
        for batch_size in [1usize, 7, 1024] {
            let mut db = fx.db.clone();
            db.cluster.batch_size = batch_size;
            let col = ExecEngine::new(&db).run_columnar(&plan, &output).expect("columnar");
            prop_assert_eq!(
                &col.rows,
                &serial.rows,
                "columnar(batch_size={}) != serial\nspec {:?}\nplan:\n{}",
                batch_size,
                spec,
                orca_expr::pretty::explain_physical(&plan)
            );
            prop_assert_eq!(
                col.sim_seconds.to_bits(),
                serial.sim_seconds.to_bits(),
                "columnar simulated clock diverged at batch_size={}",
                batch_size
            );
        }
        for columnar in [false, true] {
            for workers in [1usize, 2, 4] {
                let engine = ParallelEngine::with_config(&fx.db, ParallelConfig {
                    workers,
                    batch_rows: 7,
                    channel_capacity: 2,
                    deadline: None,
                    columnar,
                    ..ParallelConfig::default()
                });
                let par = engine.run(&plan, &output).expect("parallel");
                prop_assert_eq!(
                    &par.rows,
                    &serial.rows,
                    "parallel({}, columnar={}) != serial\nspec {:?}\nplan:\n{}",
                    workers,
                    columnar,
                    spec,
                    orca_expr::pretty::explain_physical(&plan)
                );
            }
        }
        let expected = run_reference(&fx.db, &expr, &output).expect("reference");
        prop_assert_eq!(sort_rows(serial.rows), sort_rows(expected));
    }
}

/// An always-false predicate drives empty batches through every stage
/// (filters, joins, aggregation, motions) of both kernels at several
/// batch sizes — the all-pruned edge case must stay byte-identical too.
#[test]
fn empty_streams_are_identical_across_kernels() {
    let fx = fixture();
    let registry = Arc::new(ColumnRegistry::new());
    let spec = QuerySpec {
        tables: vec![0, 1],
        joins: vec![(0, 0, 0)],
        filters: vec![(0, 0, 1), (0, 2, 1)], // c = 1 AND c < 1: unsatisfiable
        agg: Some((0, true)),
        limit: None,
    };
    let (expr, output) = build_query(&spec, &registry);
    let plan = optimize(&expr, &registry, &output);
    let serial = ExecEngine::new(&fx.db).run(&plan, &output).expect("serial");
    assert!(serial.rows.is_empty(), "filter should prune every row");
    for batch_size in [1usize, 7, 1024] {
        let mut db = fx.db.clone();
        db.cluster.batch_size = batch_size;
        let col = ExecEngine::new(&db)
            .run_columnar(&plan, &output)
            .expect("columnar");
        assert_eq!(col.rows, serial.rows);
        assert_eq!(col.sim_seconds.to_bits(), serial.sim_seconds.to_bits());
    }
    for columnar in [false, true] {
        let engine = ParallelEngine::with_config(
            &fx.db,
            ParallelConfig {
                workers: 2,
                batch_rows: 7,
                channel_capacity: 2,
                deadline: None,
                columnar,
                ..ParallelConfig::default()
            },
        );
        let par = engine.run(&plan, &output).expect("parallel");
        assert_eq!(par.rows, serial.rows, "columnar={columnar}");
    }
}

/// A deliberately motion-heavy plan: two redistributes and a gather over
/// a three-way join with aggregation.
fn motion_heavy_plan() -> (PhysicalPlan, Vec<ColId>) {
    let registry = Arc::new(ColumnRegistry::new());
    let spec = QuerySpec {
        tables: vec![0, 1, 2],
        joins: vec![(1, 2, 0), (2, 1, 0)],
        filters: vec![],
        agg: Some((1, true)),
        limit: None,
    };
    let (expr, output) = build_query(&spec, &registry);
    (optimize(&expr, &registry, &output), output)
}

/// A pre-set abort must unblock every gang promptly — senders blocked on
/// a full two-batch window included — and surface as an "aborted" error
/// with all threads joined (scoped spawning guarantees the join; the
/// test guards against deadlock via an outer timeout thread).
#[test]
fn mid_query_abort_drains_without_deadlock() {
    let fx = fixture();
    let (plan, output) = motion_heavy_plan();
    let abort = Arc::new(AbortSignal::new());
    abort.abort();
    let engine = ParallelEngine::with_config(
        &fx.db,
        ParallelConfig {
            workers: 2,
            batch_rows: 1,
            channel_capacity: 1,
            deadline: None,
            columnar: true,
            ..ParallelConfig::default()
        },
    );
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        s.spawn(|| {
            let res = engine.run_with_abort(&plan, &output, &abort);
            let err = res.expect_err("aborted run must not succeed");
            assert_eq!(err.kind(), "aborted");
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("aborted query deadlocked instead of draining");
    });
}

/// An immediate deadline expires mid-flight and is reported as a timeout;
/// the tiny interconnect window means senders are very likely parked on
/// backpressure when the deadline fires.
#[test]
fn deadline_under_backpressure_times_out_cleanly() {
    let fx = fixture();
    let (plan, output) = motion_heavy_plan();
    let engine = ParallelEngine::with_config(
        &fx.db,
        ParallelConfig {
            workers: 2,
            batch_rows: 1,
            channel_capacity: 1,
            deadline: Some(Duration::ZERO),
            columnar: true,
            ..ParallelConfig::default()
        },
    );
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        s.spawn(|| {
            let err = engine
                .run(&plan, &output)
                .expect_err("zero deadline must expire");
            assert_eq!(err.kind(), "timeout");
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("deadline expiry deadlocked instead of draining");
    });
}

// ---------------------------------------------------------------------
// Cross-slice CTE spooling: hand-built physical shapes whose producer
// and consumers land in different slices. These used to drop the whole
// query to the serial engine; now they must run through the shared
// spool — byte-identically, with zero fallbacks — on both kernels at
// every worker count.
// ---------------------------------------------------------------------

/// Leaf scan of fixture table `dt{t}` with output ids starting at `first`.
fn fixture_scan(t: usize, first: u32) -> PhysicalPlan {
    let fx = fixture();
    let mdid = fx.provider.table_by_name(&format!("dt{t}")).expect("table");
    PhysicalPlan::leaf(PhysicalOp::TableScan {
        table: TableRef(fx.provider.table(mdid).expect("desc")),
        cols: (0..NCOLS).map(|c| ColId(first + c)).collect(),
        parts: None,
    })
}

fn cte_producer(id: CteId, first: u32, child: PhysicalPlan) -> PhysicalPlan {
    PhysicalPlan::new(
        PhysicalOp::CteProducer {
            id,
            cols: (0..NCOLS).map(|c| ColId(first + c)).collect(),
        },
        vec![child],
    )
}

fn cte_scan(id: CteId, first: u32, producer_first: u32) -> PhysicalPlan {
    PhysicalPlan::leaf(PhysicalOp::CteScan {
        id,
        cols: (0..NCOLS).map(|c| ColId(first + c)).collect(),
        producer_cols: (0..NCOLS).map(|c| ColId(producer_first + c)).collect(),
    })
}

fn mot(kind: MotionKind, child: PhysicalPlan) -> PhysicalPlan {
    PhysicalPlan::new(PhysicalOp::Motion { kind }, vec![child])
}

/// Row-serial oracle vs the parallel engine through both kernels at 1, 2
/// and 4 workers: byte-identical rows, zero serial fallbacks, and the
/// expected number of spool slices. Returns the last run's stats.
fn assert_spooled_identical(
    plan: &PhysicalPlan,
    output: &[ColId],
    expect_spools: usize,
) -> orca_executor::ParallelStats {
    let fx = fixture();
    let serial = ExecEngine::new(&fx.db).run(plan, output).expect("serial");
    let mut last = None;
    for columnar in [false, true] {
        for workers in [1usize, 2, 4] {
            let engine = ParallelEngine::with_config(
                &fx.db,
                ParallelConfig {
                    workers,
                    batch_rows: 7,
                    channel_capacity: 2,
                    deadline: None,
                    columnar,
                    ..ParallelConfig::default()
                },
            );
            let par = engine.run(plan, output).expect("parallel");
            assert_eq!(
                par.rows, serial.rows,
                "workers={workers} columnar={columnar} diverged from serial"
            );
            assert!(
                !par.parallel.serial_fallback,
                "cross-slice CTE must spool, not fall back to serial"
            );
            assert_eq!(par.parallel.cte_spools, expect_spools);
            assert!(par.parallel.spool_rows > 0, "spool must carry rows");
            last = Some(par.parallel);
        }
    }
    last.unwrap()
}

/// One producer, two consumers on opposite sides of a join, each behind
/// its own redistribute — three slices consume one materialization.
#[test]
fn cte_with_two_cross_slice_consumers_is_identical() {
    let id = CteId(7);
    let join = PhysicalPlan::new(
        PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(10)],
            right_keys: vec![ColId(20)],
            residual: None,
        },
        vec![
            mot(
                MotionKind::Redistribute(vec![ColId(10)]),
                cte_scan(id, 10, 0),
            ),
            mot(
                MotionKind::Redistribute(vec![ColId(20)]),
                cte_scan(id, 20, 0),
            ),
        ],
    );
    let plan = mot(
        MotionKind::Gather,
        PhysicalPlan::new(
            PhysicalOp::Sequence { id },
            vec![cte_producer(id, 0, fixture_scan(0, 0)), join],
        ),
    );
    assert_spooled_identical(&plan, &[ColId(10), ColId(21)], 1);
}

/// The consumer sits under a join against a base table in another slice:
/// the producer is hoisted while the rest of the join pipeline stays
/// parallel.
#[test]
fn cte_consumer_under_join_with_base_table_is_identical() {
    let id = CteId(3);
    let join = PhysicalPlan::new(
        PhysicalOp::HashJoin {
            kind: JoinKind::Inner,
            left_keys: vec![ColId(20)],
            right_keys: vec![ColId(10)],
            residual: None,
        },
        vec![
            fixture_scan(2, 20), // replicated base table
            mot(
                MotionKind::Redistribute(vec![ColId(10)]),
                cte_scan(id, 10, 0),
            ),
        ],
    );
    let plan = mot(
        MotionKind::Gather,
        PhysicalPlan::new(
            PhysicalOp::Sequence { id },
            vec![cte_producer(id, 0, fixture_scan(1, 0)), join],
        ),
    );
    assert_spooled_identical(&plan, &[ColId(21), ColId(12)], 1);
}

/// Nested spooling: a hoisted producer whose subtree consumes *another*
/// CTE across a motion, so both producers must land in spool slices (the
/// slicer's fixpoint case).
#[test]
fn nested_cte_producers_both_spool_identically() {
    let a = CteId(1);
    let b = CteId(2);
    let inner = PhysicalPlan::new(
        PhysicalOp::Sequence { id: b },
        vec![
            cte_producer(
                b,
                10,
                mot(
                    MotionKind::Redistribute(vec![ColId(10)]),
                    cte_scan(a, 10, 0),
                ),
            ),
            mot(
                MotionKind::Redistribute(vec![ColId(21)]),
                cte_scan(b, 20, 10),
            ),
        ],
    );
    let plan = mot(
        MotionKind::Gather,
        PhysicalPlan::new(
            PhysicalOp::Sequence { id: a },
            vec![cte_producer(a, 0, fixture_scan(0, 0)), inner],
        ),
    );
    assert_spooled_identical(&plan, &[ColId(20), ColId(22)], 2);
}

/// The same motion-heavy plan completes — byte-identically — with the
/// smallest legal interconnect window, proving backpressure alone never
/// wedges the gang topology.
#[test]
fn tiny_interconnect_window_still_completes() {
    let fx = fixture();
    let (plan, output) = motion_heavy_plan();
    let serial = ExecEngine::new(&fx.db).run(&plan, &output).expect("serial");
    let engine = ParallelEngine::with_config(
        &fx.db,
        ParallelConfig {
            workers: 1,
            batch_rows: 1,
            channel_capacity: 1,
            deadline: Some(Duration::from_secs(60)),
            columnar: true,
            ..ParallelConfig::default()
        },
    );
    let par = engine.run(&plan, &output).expect("parallel");
    assert_eq!(par.rows, serial.rows);
    assert!(par.parallel.num_slices >= 3, "plan should be motion-heavy");
    assert!(par.parallel.motion_rows() > 0);
}

// ---------------------------------------------------------------------------
// Zone-map chunk skipping: a pruned fused scan must be observable only in
// the `chunks_skipped` / `dict_hits` counters — rows, order and the
// simulated clock stay byte-identical to the row kernel, at every batch
// size and worker count.
// ---------------------------------------------------------------------------

/// 400 rows in 16-row chunks across 4 segments: z0 ascending ints (tight
/// zone ranges), z1 ints with every 7th value NULL, z2 low-cardinality
/// strings in runs of 40 (dictionary-encoded per chunk).
fn zone_fixture() -> &'static (Database, TableRef) {
    static FX: OnceLock<(Database, TableRef)> = OnceLock::new();
    FX.get_or_init(|| {
        let desc = Arc::new(orca_catalog::TableDesc::new(
            orca_common::MdId::new(orca_common::SysId::Gpdb, 77, 1),
            "zt",
            vec![
                ColumnMeta::new("z0", DataType::Int),
                ColumnMeta::new("z1", DataType::Int),
                ColumnMeta::new("z2", DataType::Str),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let rows: Vec<Vec<Datum>> = (0..400i64)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    if i % 7 == 0 {
                        Datum::Null
                    } else {
                        Datum::Int((i * 3) % 50)
                    },
                    Datum::Str(format!("cat{}", i / 40)),
                ]
            })
            .collect();
        let mut db = Database::new(SegmentConfig::default().with_segments(SEGMENTS));
        db.cluster.batch_size = 16; // chunk size at load time
        db.load_table(desc.clone(), rows).expect("load zone table");
        (db, TableRef(desc))
    })
}

const Z0: ColId = ColId(90);
const Z1: ColId = ColId(91);
const Z2: ColId = ColId(92);

fn zone_scan_plan(pred: ScalarExpr) -> PhysicalPlan {
    let (_, table) = zone_fixture();
    PhysicalPlan::new(
        PhysicalOp::Filter { pred },
        vec![PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: table.clone(),
            cols: vec![Z0, Z1, Z2],
            parts: None,
        })],
    )
}

/// One randomly generated prunable conjunct.
#[derive(Debug, Clone)]
enum ZConj {
    /// `z0 <op> lit` — op index into {Lt, Le, Gt, Ge, Eq}.
    C0(u8, i64),
    /// `z2 = 'cat{n}'` (n up to 12: some categories don't exist).
    C2Eq(usize),
    /// `z2 IN ('cat..', ...)`.
    C2In(Vec<usize>),
    /// `z1 IS NULL` / `NOT (z1 IS NULL)`.
    NullC1(bool),
}

fn zconj_expr(c: &ZConj) -> ScalarExpr {
    match c {
        ZConj::C0(o, v) => ScalarExpr::cmp(
            [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq][(*o as usize) % 5],
            ScalarExpr::col(Z0),
            ScalarExpr::int(*v),
        ),
        ZConj::C2Eq(n) => ScalarExpr::eq(
            ScalarExpr::col(Z2),
            ScalarExpr::Const(Datum::Str(format!("cat{n}"))),
        ),
        ZConj::C2In(ns) => ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(Z2)),
            list: ns
                .iter()
                .map(|n| ScalarExpr::Const(Datum::Str(format!("cat{n}"))))
                .collect(),
            negated: false,
        },
        ZConj::NullC1(negated) => {
            let e = ScalarExpr::IsNull(Box::new(ScalarExpr::col(Z1)));
            if *negated {
                ScalarExpr::Not(Box::new(e))
            } else {
                e
            }
        }
    }
}

fn zconj_strategy() -> impl Strategy<Value = Vec<ZConj>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..5, -10i64..450).prop_map(|(o, v)| ZConj::C0(o, v)),
            (0usize..13).prop_map(ZConj::C2Eq),
            prop::collection::vec(0usize..13, 1..4).prop_map(ZConj::C2In),
            any::<bool>().prop_map(ZConj::NullC1),
        ],
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Zone-pruned scans ≡ unpruned: for random prunable predicates over
    /// the chunked fixture, the fused columnar scan (batch sizes 1, 7,
    /// 1024 — below and above the 16-row chunk size) and the parallel
    /// engine at 1/2/4 workers through both kernels all reproduce the
    /// row-serial oracle byte for byte, with a bit-equal simulated clock.
    #[test]
    fn zone_pruned_scan_equals_unpruned(conjs in zconj_strategy()) {
        let (db, _) = zone_fixture();
        let plan = zone_scan_plan(ScalarExpr::and(conjs.iter().map(zconj_expr).collect()));
        let output = vec![Z0, Z1, Z2];
        let serial = ExecEngine::new(db).run(&plan, &output).expect("row serial");
        prop_assert_eq!(serial.stats.chunks_skipped, 0, "row kernel never skips");
        for batch_size in [1usize, 7, 1024] {
            let mut db2 = db.clone();
            db2.cluster.batch_size = batch_size;
            let col = ExecEngine::new(&db2).run_columnar(&plan, &output).expect("columnar");
            prop_assert_eq!(
                &col.rows, &serial.rows,
                "pruned columnar(batch_size={}) != row serial for {:?}",
                batch_size, conjs
            );
            prop_assert_eq!(
                col.sim_seconds.to_bits(),
                serial.sim_seconds.to_bits(),
                "simulated clock diverged at batch_size={} for {:?}",
                batch_size, conjs
            );
        }
        for columnar in [false, true] {
            for workers in [1usize, 2, 4] {
                let engine = ParallelEngine::with_config(db, ParallelConfig {
                    workers,
                    batch_rows: 7,
                    channel_capacity: 2,
                    deadline: None,
                    columnar,
                    ..ParallelConfig::default()
                });
                let par = engine.run(&plan, &output).expect("parallel");
                prop_assert_eq!(
                    &par.rows, &serial.rows,
                    "parallel({}, columnar={}) != serial for {:?}",
                    workers, columnar, conjs
                );
            }
        }
    }
}

/// A selective range over the ascending column must actually skip chunks
/// (the fixture has 16-row chunks, so `z0 < 40` leaves most chunks with
/// `min > 40`) while producing exactly the row kernel's output.
#[test]
fn selective_range_skips_chunks() {
    let (db, _) = zone_fixture();
    let plan = zone_scan_plan(ScalarExpr::cmp(
        CmpOp::Lt,
        ScalarExpr::col(Z0),
        ScalarExpr::int(40),
    ));
    let output = vec![Z0, Z1, Z2];
    let row = ExecEngine::new(db).run(&plan, &output).expect("row");
    let col = ExecEngine::new(db)
        .run_columnar(&plan, &output)
        .expect("columnar");
    assert_eq!(col.rows, row.rows);
    assert_eq!(col.rows.len(), 40);
    assert_eq!(col.sim_seconds.to_bits(), row.sim_seconds.to_bits());
    assert!(
        col.stats.chunks_skipped > 0,
        "z0 < 40 should zone-prune chunks, skipped={}",
        col.stats.chunks_skipped
    );
    assert_eq!(row.stats.chunks_skipped, 0);
}

/// A string-equality conjunct over the dictionary-encoded column must be
/// answered in code space: chunks without the category are skipped
/// outright, chunks with it count a dictionary hit — and the output is
/// byte-identical to the row kernel either way.
#[test]
fn dict_equality_skips_and_counts_hits() {
    let (db, _) = zone_fixture();
    let plan = zone_scan_plan(ScalarExpr::eq(
        ScalarExpr::col(Z2),
        ScalarExpr::Const(Datum::Str("cat2".into())),
    ));
    let output = vec![Z0, Z1, Z2];
    let row = ExecEngine::new(db).run(&plan, &output).expect("row");
    let col = ExecEngine::new(db)
        .run_columnar(&plan, &output)
        .expect("columnar");
    assert_eq!(col.rows, row.rows);
    assert_eq!(col.rows.len(), 40, "one 40-row category run");
    assert_eq!(col.sim_seconds.to_bits(), row.sim_seconds.to_bits());
    assert!(col.stats.chunks_skipped > 0, "absent-category chunks skip");
    assert!(
        col.stats.dict_hits > 0,
        "present-category chunks hit the dict"
    );
}
