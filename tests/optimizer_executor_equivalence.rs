//! Integration: plans produced by the Orca optimizer, executed on the MPP
//! simulator, must return exactly the rows the naive single-node reference
//! interpreter computes from the original logical tree — across joins,
//! subqueries, aggregation, CTEs, set operations and partitioned tables.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider as _;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, Partitioning, TableStats};
use orca_common::{ColId, CteId, DataType, Datum, SegmentConfig};
use orca_executor::engine::sort_rows;
use orca_executor::reference::run_reference;
use orca_executor::{Database, ExecEngine, Row};
use orca_expr::logical::{AggStage, JoinKind, LogicalExpr, LogicalOp, SetOpKind, TableRef};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::{AggFunc, CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;
use std::sync::Arc;

/// Test fixture: a small star schema loaded into both the catalog (for the
/// optimizer) and the database (for execution).
struct Fixture {
    provider: Arc<MemoryProvider>,
    registry: Arc<ColumnRegistry>,
    db: Database,
}

const SEGMENTS: usize = 4;

impl Fixture {
    fn new() -> Fixture {
        let provider = Arc::new(MemoryProvider::new());
        let registry = Arc::new(ColumnRegistry::new());
        let mut db = Database::new(SegmentConfig::default().with_segments(SEGMENTS));

        // fact(k int, dim_id int, date_k int, amount int) hashed(k),
        // partitioned by date_k into 10 parts over [0, 100).
        let fact_rows: Vec<Row> = (0..2000)
            .map(|i| {
                vec![
                    Datum::Int(i),
                    Datum::Int(i % 50),
                    Datum::Int(i % 100),
                    Datum::Int(i % 7),
                ]
            })
            .collect();
        Self::install(
            &provider,
            &registry,
            &mut db,
            "fact",
            vec![
                ColumnMeta::new("k", DataType::Int).not_null(),
                ColumnMeta::new("dim_id", DataType::Int).not_null(),
                ColumnMeta::new("date_k", DataType::Int).not_null(),
                ColumnMeta::new("amount", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
            Some(Partitioning::range(2, 0, 100, 10)),
            fact_rows,
        );
        // dim(id int, grp int) hashed(id).
        let dim_rows: Vec<Row> = (0..50)
            .map(|i| vec![Datum::Int(i), Datum::Int(i % 5)])
            .collect();
        Self::install(
            &provider,
            &registry,
            &mut db,
            "dim",
            vec![
                ColumnMeta::new("id", DataType::Int).not_null(),
                ColumnMeta::new("grp", DataType::Int).not_null(),
            ],
            Distribution::Hashed(vec![0]),
            None,
            dim_rows,
        );
        // small(id int, v int) replicated.
        let small_rows: Vec<Row> = (0..10)
            .map(|i| vec![Datum::Int(i * 5), Datum::Int(i)])
            .collect();
        Self::install(
            &provider,
            &registry,
            &mut db,
            "small",
            vec![
                ColumnMeta::new("id", DataType::Int).not_null(),
                ColumnMeta::new("v", DataType::Int),
            ],
            Distribution::Replicated,
            None,
            small_rows,
        );
        Fixture {
            provider,
            registry,
            db,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn install(
        provider: &Arc<MemoryProvider>,
        registry: &Arc<ColumnRegistry>,
        db: &mut Database,
        name: &str,
        cols: Vec<ColumnMeta>,
        dist: Distribution,
        part: Option<Partitioning>,
        rows: Vec<Row>,
    ) {
        let ncols = cols.len();
        let id = provider.register(name, cols, dist);
        if let Some(p) = part {
            let mut t = (*provider.table(id).unwrap()).clone();
            t = t.with_partitioning(p);
            provider.install_table(Arc::new(t));
        }
        // Statistics from the actual data.
        let mut stats = TableStats::new(rows.len() as f64, ncols);
        for c in 0..ncols {
            let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
            stats.columns[c] = Some(ColumnStats::from_column(&values, 16));
        }
        provider.set_stats(id, stats);
        for c in 0..ncols {
            let t = provider.table(id).unwrap();
            registry.fresh(&format!("{name}.{}", t.columns[c].name), t.columns[c].dtype);
        }
        let t = provider.table(id).unwrap();
        db.load_table(t, rows).unwrap();
    }

    fn tref(&self, name: &str) -> TableRef {
        TableRef(
            self.provider
                .table(self.provider.table_by_name(name).unwrap())
                .unwrap(),
        )
    }

    /// ColIds for a table, assuming registration order fact, dim, small.
    fn cols(&self, name: &str) -> Vec<ColId> {
        let (first, n) = match name {
            "fact" => (0u32, 4),
            "dim" => (4, 2),
            "small" => (6, 2),
            _ => panic!("unknown table"),
        };
        (first..first + n).map(ColId).collect()
    }

    fn get(&self, name: &str) -> LogicalExpr {
        LogicalExpr::leaf(LogicalOp::Get {
            table: self.tref(name),
            cols: self.cols(name),
            parts: None,
        })
    }

    /// Optimize and execute `expr`; compare with the reference interpreter
    /// of the same tree. Returns (rows, simulated seconds, plan motions).
    fn check(&self, expr: &LogicalExpr, output: &[ColId], workers: usize) -> (usize, f64, usize) {
        let config = OptimizerConfig::default()
            .with_workers(workers)
            .with_cluster(SegmentConfig::default().with_segments(SEGMENTS));
        let optimizer = Optimizer::new(self.provider.clone(), config);
        let reqs = QueryReqs::gather_all(output.to_vec());
        let (plan, stats) = optimizer
            .optimize(expr, &self.registry, &reqs)
            .unwrap_or_else(|e| {
                panic!(
                    "optimize failed: {e}\n{}",
                    orca_expr::pretty::explain_logical(expr)
                )
            });
        let engine = ExecEngine::new(&self.db);
        let got = engine.run(&plan, output).unwrap_or_else(|e| {
            panic!(
                "exec failed: {e}\n{}",
                orca_expr::pretty::explain_physical(&plan)
            )
        });
        let expected = run_reference(&self.db, expr, output).expect("reference failed");
        assert_eq!(
            sort_rows(got.rows.clone()),
            sort_rows(expected),
            "plan diverged:\n{}",
            orca_expr::pretty::explain_physical(&plan)
        );
        assert!(stats.plan_cost.is_finite());
        (got.rows.len(), got.sim_seconds, plan.motion_count())
    }
}

#[test]
fn simple_filter_scan() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(3)), ScalarExpr::int(3)),
        },
        vec![f.get("fact")],
    );
    let (n, sim, _) = f.check(&q, &[ColId(0), ColId(3)], 1);
    assert!(n > 0);
    assert!(sim > 0.0);
}

#[test]
fn two_way_join_co_location() {
    let f = Fixture::new();
    // fact ⋈ dim on dim_id = id.
    let q = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(1), ColId(4)),
        },
        vec![f.get("fact"), f.get("dim")],
    );
    let (n, _, motions) = f.check(&q, &[ColId(0), ColId(5)], 2);
    assert_eq!(n, 2000, "PK-FK join preserves fact rows");
    assert!(motions >= 1);
}

#[test]
fn three_way_join_orders_explored() {
    let f = Fixture::new();
    let join_fd = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(1), ColId(4)),
        },
        vec![f.get("fact"), f.get("dim")],
    );
    let q = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(0), ColId(6)),
        },
        vec![join_fd, f.get("small")],
    );
    f.check(&q, &[ColId(0), ColId(5), ColId(7)], 4);
}

#[test]
fn grouped_aggregation_possibly_two_stage() {
    let f = Fixture::new();
    let sum_col = f.registry.fresh("sum_amount", DataType::Int);
    let cnt_col = f.registry.fresh("cnt", DataType::Int);
    let q = LogicalExpr::new(
        LogicalOp::GbAgg {
            group_cols: vec![ColId(1)],
            aggs: vec![
                (
                    sum_col,
                    ScalarExpr::Agg {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col(ColId(3)))),
                        distinct: false,
                    },
                ),
                (
                    cnt_col,
                    ScalarExpr::Agg {
                        func: AggFunc::Count,
                        arg: None,
                        distinct: false,
                    },
                ),
            ],
            stage: AggStage::Single,
        },
        vec![f.get("fact")],
    );
    let (n, _, _) = f.check(&q, &[ColId(1), sum_col, cnt_col], 2);
    assert_eq!(n, 50);
}

#[test]
fn scalar_aggregate() {
    let f = Fixture::new();
    let max_col = f.registry.fresh("max_amount", DataType::Int);
    let q = LogicalExpr::new(
        LogicalOp::GbAgg {
            group_cols: vec![],
            aggs: vec![(
                max_col,
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col(ColId(3)))),
                    distinct: false,
                },
            )],
            stage: AggStage::Single,
        },
        vec![f.get("fact")],
    );
    let (n, _, _) = f.check(&q, &[max_col], 1);
    assert_eq!(n, 1);
}

#[test]
fn exists_subquery_decorrelated() {
    let f = Fixture::new();
    // fact rows whose dim_id has a dim row with grp = 2.
    let sub = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::and(vec![
                ScalarExpr::col_eq_col(ColId(4), ColId(1)), // correlated
                ScalarExpr::eq(ScalarExpr::col(ColId(5)), ScalarExpr::int(2)),
            ]),
        },
        vec![f.get("dim")],
    );
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::Exists {
                negated: false,
                subquery: Box::new(sub),
            },
        },
        vec![f.get("fact")],
    );
    let (n, _, _) = f.check(&q, &[ColId(0)], 2);
    assert!(n > 0 && n < 2000);
}

#[test]
fn not_in_subquery() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::InSubquery {
                expr: Box::new(ScalarExpr::col(ColId(1))),
                subquery: Box::new(f.get("small")),
                subquery_col: ColId(6),
                negated: true,
            },
        },
        vec![f.get("fact")],
    );
    f.check(&q, &[ColId(0), ColId(1)], 2);
}

#[test]
fn correlated_scalar_agg_subquery() {
    let f = Fixture::new();
    let avg = f.registry.fresh("max_v", DataType::Int);
    // fact rows with amount > (SELECT max(grp) FROM dim WHERE id = dim_id)
    let sub = LogicalExpr::new(
        LogicalOp::GbAgg {
            group_cols: vec![],
            aggs: vec![(
                avg,
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(ScalarExpr::col(ColId(5)))),
                    distinct: false,
                },
            )],
            stage: AggStage::Single,
        },
        vec![LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::col_eq_col(ColId(4), ColId(1)),
            },
            vec![f.get("dim")],
        )],
    );
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(ColId(3)),
                ScalarExpr::ScalarSubquery {
                    subquery: Box::new(sub),
                    subquery_col: avg,
                },
            ),
        },
        vec![f.get("fact")],
    );
    f.check(&q, &[ColId(0), ColId(3)], 2);
}

#[test]
fn partition_elimination_prunes_and_matches() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::and(vec![
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(ColId(2)), ScalarExpr::int(20)),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(2)), ScalarExpr::int(40)),
            ]),
        },
        vec![f.get("fact")],
    );
    let (n, _, _) = f.check(&q, &[ColId(0), ColId(2)], 1);
    assert_eq!(n, 400, "20 date keys × 20 rows each");
}

#[test]
fn shared_cte_two_consumers() {
    let f = Fixture::new();
    let cte = CteId(7);
    let prod_cols = vec![ColId(100), ColId(101)];
    let producer_body = LogicalExpr::new(
        LogicalOp::Project {
            exprs: vec![
                (ColId(100), ScalarExpr::col(ColId(1))),
                (ColId(101), ScalarExpr::col(ColId(3))),
            ],
        },
        vec![f.get("fact")],
    );
    let producer = LogicalExpr::new(
        LogicalOp::CteProducer {
            id: cte,
            cols: prod_cols.clone(),
        },
        vec![producer_body],
    );
    let consumer = |first: u32| {
        LogicalExpr::leaf(LogicalOp::CteConsumer {
            id: cte,
            cols: vec![ColId(first), ColId(first + 1)],
            producer_cols: prod_cols.clone(),
        })
    };
    let join = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::and(vec![
                ScalarExpr::col_eq_col(ColId(110), ColId(120)),
                ScalarExpr::col_eq_col(ColId(111), ColId(121)),
            ]),
        },
        vec![consumer(110), consumer(120)],
    );
    let q = LogicalExpr::new(LogicalOp::Sequence { id: cte }, vec![producer, join]);
    f.check(&q, &[ColId(110), ColId(121)], 2);
}

#[test]
fn set_operations() {
    let f = Fixture::new();
    let out = vec![ColId(200)];
    let mk_side = |table: &str, col: u32| {
        LogicalExpr::new(
            LogicalOp::Project {
                exprs: vec![(
                    ColId(col),
                    ScalarExpr::col(ColId(if table == "dim" { 4 } else { 6 })),
                )],
            },
            vec![f.get(table)],
        )
    };
    for kind in [
        SetOpKind::UnionAll,
        SetOpKind::Union,
        SetOpKind::Intersect,
        SetOpKind::Except,
    ] {
        let q = LogicalExpr::new(
            LogicalOp::SetOp {
                kind,
                output: out.clone(),
                input_cols: vec![vec![ColId(210)], vec![ColId(211)]],
            },
            vec![mk_side("dim", 210), mk_side("small", 211)],
        );
        f.check(&q, &out, 2);
    }
}

#[test]
fn order_by_limit_top_n() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Limit {
            order: OrderSpec::by(&[ColId(0)]),
            offset: 5,
            count: Some(10),
        },
        vec![f.get("fact")],
    );
    let config =
        OptimizerConfig::default().with_cluster(SegmentConfig::default().with_segments(SEGMENTS));
    let optimizer = Optimizer::new(f.provider.clone(), config);
    let reqs = QueryReqs::gather_all(vec![ColId(0)]);
    let (plan, _) = optimizer.optimize(&q, &f.registry, &reqs).unwrap();
    let engine = ExecEngine::new(&f.db);
    let got = engine.run(&plan, &[ColId(0)]).unwrap();
    let keys: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(keys, (5..15).collect::<Vec<i64>>());
}

#[test]
fn ordered_output_respects_query_requirement() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Select {
            pred: ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(0)), ScalarExpr::int(100)),
        },
        vec![f.get("fact")],
    );
    let config =
        OptimizerConfig::default().with_cluster(SegmentConfig::default().with_segments(SEGMENTS));
    let optimizer = Optimizer::new(f.provider.clone(), config);
    let reqs = QueryReqs {
        output_cols: vec![ColId(0)],
        order: OrderSpec::by(&[ColId(0)]),
        dist: DistSpec::Singleton,
    };
    let (plan, _) = optimizer.optimize(&q, &f.registry, &reqs).unwrap();
    let engine = ExecEngine::new(&f.db);
    let got = engine.run(&plan, &[ColId(0)]).unwrap();
    let keys: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "query-level ORDER BY must be enforced");
    assert_eq!(keys.len(), 100);
}

#[test]
fn parallel_and_serial_plans_agree_on_cost() {
    let f = Fixture::new();
    let q = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(1), ColId(4)),
        },
        vec![f.get("fact"), f.get("dim")],
    );
    let reqs = QueryReqs::gather_all(vec![ColId(0)]);
    let mut costs = Vec::new();
    for workers in [1, 2, 8] {
        let config = OptimizerConfig::default()
            .with_workers(workers)
            .with_cluster(SegmentConfig::default().with_segments(SEGMENTS));
        let optimizer = Optimizer::new(f.provider.clone(), config);
        let (_, stats) = optimizer.optimize(&q, &f.registry, &reqs).unwrap();
        costs.push(stats.plan_cost);
    }
    assert!(
        costs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
        "worker count must not change the chosen plan cost: {costs:?}"
    );
}
