//! Randomized end-to-end equivalence: generate random logical queries over
//! random data; the Orca-optimized, MPP-executed result must equal the
//! naive single-node reference interpretation. Also: random job graphs on
//! the GPOS scheduler always complete with correct goal deduplication.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs};
use orca_catalog::provider::MdProvider as _;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
use orca_common::{ColId, DataType, Datum, SegmentConfig};
use orca_executor::engine::sort_rows;
use orca_executor::reference::run_reference;
use orca_executor::{Database, ExecEngine};
use orca_expr::logical::{AggStage, JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::props::OrderSpec;
use orca_expr::scalar::{AggFunc, CmpOp, ScalarExpr};
use orca_expr::ColumnRegistry;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const SEGMENTS: usize = 3;
/// Three tables, 3 int columns each; table i owns ColIds 3i..3i+3.
const NCOLS: u32 = 3;

struct Fixture {
    provider: Arc<MemoryProvider>,
    db: Database,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let provider = Arc::new(MemoryProvider::new());
        let mut db = Database::new(SegmentConfig::default().with_segments(SEGMENTS));
        let dists = [
            Distribution::Hashed(vec![0]),
            Distribution::Hashed(vec![1]),
            Distribution::Replicated,
        ];
        for (t, dist) in dists.into_iter().enumerate() {
            let name = format!("pt{t}");
            let id = provider.register(
                &name,
                (0..NCOLS)
                    .map(|c| ColumnMeta::new(&format!("c{c}"), DataType::Int))
                    .collect(),
                dist,
            );
            // Deterministic pseudo-random data with overlapping domains
            // and some NULLs.
            let rows: Vec<Vec<Datum>> = (0..120)
                .map(|i| {
                    (0..NCOLS)
                        .map(|c| {
                            let v = (i * 7 + (c as i64) * 13 + (t as i64) * 3) % 17;
                            if v == 16 {
                                Datum::Null
                            } else {
                                Datum::Int(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let mut stats = TableStats::new(rows.len() as f64, NCOLS as usize);
            for c in 0..NCOLS as usize {
                let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
                stats.columns[c] = Some(ColumnStats::from_column(&values, 8));
            }
            provider.set_stats(id, stats);
            db.load_table(provider.table(id).expect("registered"), rows)
                .expect("load");
        }
        Fixture { provider, db }
    })
}

/// Declarative random query: a left-deep join chain over distinct tables
/// with random join columns, filters, and an optional aggregation.
#[derive(Debug, Clone)]
struct QuerySpec {
    tables: Vec<usize>,
    /// join i connects tables[i+1] to tables[0..=i]: (left col offset in
    /// the accumulated output, right col 0..3, join kind).
    joins: Vec<(u32, u32, u8)>,
    filters: Vec<(u32, u8, i64)>,
    agg: Option<(u32, bool)>,
    limit: Option<u64>,
}

fn spec_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        prop::sample::subsequence(vec![0usize, 1, 2], 1..=3).prop_shuffle(),
        prop::collection::vec((0u32..NCOLS, 0u32..NCOLS, 0u8..4), 0..2),
        prop::collection::vec((0u32..NCOLS, 0u8..5, 0i64..16), 0..3),
        prop::option::of((0u32..NCOLS, any::<bool>())),
        prop::option::of(1u64..20),
    )
        .prop_map(|(tables, joins, filters, agg, limit)| QuerySpec {
            tables,
            joins,
            filters,
            agg,
            limit,
        })
}

fn col(table: usize, c: u32) -> ColId {
    ColId(table as u32 * NCOLS + c)
}

fn build_query(spec: &QuerySpec, registry: &ColumnRegistry) -> (LogicalExpr, Vec<ColId>) {
    let fx = fixture();
    // Register table columns 0..9 in order, then extra agg columns.
    while registry.len() < (3 * NCOLS) as usize {
        registry.fresh(&format!("c{}", registry.len()), DataType::Int);
    }
    let get = |t: usize| {
        let mdid = fx.provider.table_by_name(&format!("pt{t}")).expect("table");
        LogicalExpr::leaf(LogicalOp::Get {
            table: TableRef(fx.provider.table(mdid).expect("desc")),
            cols: (0..NCOLS).map(|c| col(t, c)).collect(),
            parts: None,
        })
    };
    let mut expr = get(spec.tables[0]);
    let mut visible: Vec<ColId> = expr.output_cols();
    for (i, t) in spec.tables.iter().enumerate().skip(1) {
        let (lc, rc, kindsel) = spec.joins.get(i - 1).copied().unwrap_or((0, 0, 0));
        let left_col = visible[(lc as usize) % visible.len()];
        let right_col = col(*t, rc);
        let kind = match kindsel % 4 {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            2 => JoinKind::LeftSemi,
            _ => JoinKind::LeftAntiSemi,
        };
        expr = LogicalExpr::new(
            LogicalOp::Join {
                kind,
                pred: ScalarExpr::col_eq_col(left_col, right_col),
            },
            vec![expr, get(*t)],
        );
        visible = expr.output_cols();
    }
    // Filters over whatever is visible.
    let mut conjuncts = Vec::new();
    for (c, op, v) in &spec.filters {
        let target = visible[(*c as usize) % visible.len()];
        let op = match op % 5 {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Ge,
            _ => CmpOp::Le,
        };
        conjuncts.push(ScalarExpr::cmp(
            op,
            ScalarExpr::col(target),
            ScalarExpr::int(*v),
        ));
    }
    if !conjuncts.is_empty() {
        expr = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(conjuncts),
            },
            vec![expr],
        );
    }
    // Optional aggregation.
    let mut output = visible.clone();
    if let Some((gc, use_sum)) = &spec.agg {
        let group = visible[(*gc as usize) % visible.len()];
        let agg_col = registry.fresh("agg_out", DataType::Int);
        let agg_arg = visible[(*gc as usize + 1) % visible.len()];
        let func = if *use_sum {
            AggFunc::Sum
        } else {
            AggFunc::Count
        };
        expr = LogicalExpr::new(
            LogicalOp::GbAgg {
                group_cols: vec![group],
                aggs: vec![(
                    agg_col,
                    ScalarExpr::Agg {
                        func,
                        arg: Some(Box::new(ScalarExpr::col(agg_arg))),
                        distinct: false,
                    },
                )],
                stage: AggStage::Single,
            },
            vec![expr],
        );
        output = vec![group, agg_col];
    }
    // Optional deterministic top-N (full order over the output).
    if let Some(n) = spec.limit {
        expr = LogicalExpr::new(
            LogicalOp::Limit {
                order: OrderSpec::by(&output),
                offset: 0,
                count: Some(n),
            },
            vec![expr],
        );
    }
    (expr, output)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Optimized-and-executed equals reference for random queries, at 1
    /// and 4 scheduler workers.
    #[test]
    fn random_queries_match_reference(spec in spec_strategy(), workers in prop::sample::select(vec![1usize, 4])) {
        let fx = fixture();
        let registry = Arc::new(ColumnRegistry::new());
        let (expr, output) = build_query(&spec, &registry);
        let optimizer = Optimizer::new(
            fx.provider.clone(),
            OptimizerConfig::default()
                .with_workers(workers)
                .with_cluster(SegmentConfig::default().with_segments(SEGMENTS)),
        );
        let reqs = QueryReqs::gather_all(output.clone());
        let (plan, _) = optimizer
            .optimize(&expr, &registry, &reqs)
            .expect("optimizes");
        let engine = ExecEngine::new(&fx.db);
        let got = engine.run(&plan, &output).expect("executes");
        let expected = run_reference(&fx.db, &expr, &output).expect("reference");
        // Limit with a full-output order is deterministic up to ties in
        // the sort key; compare multisets after applying the same sort.
        prop_assert_eq!(
            sort_rows(got.rows.clone()),
            sort_rows(expected),
            "spec {:?}\nplan:\n{}",
            spec,
            orca_expr::pretty::explain_physical(&plan)
        );
    }
}

// ---------------------------------------------------------------------
// Scheduler: random dependency graphs
// ---------------------------------------------------------------------

mod sched_props {
    use super::*;
    use orca_gpos::sched::{Job, JobHandle, Scheduler, StepResult};
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Ctx {
        completions: AtomicUsize,
        goal_runs: AtomicUsize,
    }

    /// A job that spawns a random mix of anonymous children and shared
    /// goals, driven by a precomputed shape vector.
    struct RandomJob {
        shape: Vec<(bool, u64)>,
        depth: u8,
        spawned: bool,
    }

    impl Job<Ctx, u64> for RandomJob {
        fn step(&mut self, h: &JobHandle<'_, Ctx, u64>, ctx: &Ctx) -> StepResult {
            if self.depth > 0 && !self.spawned {
                self.spawned = true;
                let mut waiting = false;
                for (anonymous, goal) in &self.shape {
                    if *anonymous {
                        h.spawn(Box::new(RandomJob {
                            shape: self.shape.clone(),
                            depth: self.depth - 1,
                            spawned: false,
                        }));
                        waiting = true;
                    } else {
                        waiting |= h.spawn_goal(*goal, || Box::new(GoalWork(*goal)));
                    }
                }
                if waiting {
                    return StepResult::Suspended;
                }
            }
            ctx.completions.fetch_add(1, Ordering::Relaxed);
            StepResult::Done
        }
    }

    struct GoalWork(#[allow(dead_code)] u64);
    impl Job<Ctx, u64> for GoalWork {
        fn step(&mut self, _h: &JobHandle<'_, Ctx, u64>, ctx: &Ctx) -> StepResult {
            ctx.goal_runs.fetch_add(1, Ordering::Relaxed);
            StepResult::Done
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random job graphs complete (no deadlock, no lost wakeups) and
        /// every goal runs exactly once, at any worker count.
        #[test]
        fn random_job_graphs_complete(
            shape in prop::collection::vec((any::<bool>(), 0u64..6), 1..4),
            depth in 1u8..4,
            roots in 1usize..6,
            workers in prop::sample::select(vec![1usize, 2, 8]),
        ) {
            let sched: Scheduler<Ctx, u64> = Scheduler::new();
            let ctx = Ctx {
                completions: AtomicUsize::new(0),
                goal_runs: AtomicUsize::new(0),
            };
            let jobs: Vec<Box<dyn Job<Ctx, u64>>> = (0..roots)
                .map(|_| {
                    Box::new(RandomJob {
                        shape: shape.clone(),
                        depth,
                        spawned: false,
                    }) as Box<dyn Job<Ctx, u64>>
                })
                .collect();
            sched.run(&ctx, jobs, workers).expect("completes");
            // Distinct goals requested ≤ 6; each ran at most once, and at
            // least once if any root requests goals.
            let distinct_goals: std::collections::HashSet<u64> = shape
                .iter()
                .filter(|(anon, _)| !anon)
                .map(|(_, g)| *g)
                .collect();
            prop_assert!(ctx.goal_runs.load(Ordering::Relaxed) <= distinct_goals.len());
            prop_assert!(ctx.completions.load(Ordering::Relaxed) >= roots);
        }
    }
}
