//! Integration tests of the DXL boundary (Figure 2) and engine-level
//! behaviors: the full DXL-in/DXL-out path, the file-based metadata
//! provider, metadata-cache sharing across sessions, multi-stage
//! optimization with timeouts, rule disabling, and Memo rendering.

use orca::engine::{Optimizer, OptimizerConfig, QueryReqs, StageConfig};
use orca_catalog::provider::MdProvider;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{ColumnMeta, Distribution, MemoryProvider, TableStats};
use orca_common::{ColId, DataType, Datum, OrcaError};
use orca_dxl::FileProvider;
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, TableRef};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::ScalarExpr;
use orca_expr::ColumnRegistry;
use std::sync::Arc;
use std::time::Duration;

fn provider_with_tables() -> Arc<MemoryProvider> {
    let p = Arc::new(MemoryProvider::new());
    for (name, rows) in [("t1", 10_000.0), ("t2", 50_000.0)] {
        let id = p.register(
            name,
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        let values: Vec<Datum> = (0..1000).map(|i| Datum::Int(i % 250)).collect();
        p.set_stats(
            id,
            TableStats::new(rows, 2)
                .set_column(0, ColumnStats::from_column(&values, 16))
                .set_column(1, ColumnStats::from_column(&values, 16)),
        );
    }
    p
}

fn running_example_dxl(p: &MemoryProvider) -> String {
    let t1 = TableRef(p.table(p.table_by_name("t1").unwrap()).unwrap());
    let t2 = TableRef(p.table(p.table_by_name("t2").unwrap()).unwrap());
    let join = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
        },
        vec![
            LogicalExpr::leaf(LogicalOp::Get {
                table: t1,
                cols: vec![ColId(0), ColId(1)],
                parts: None,
            }),
            LogicalExpr::leaf(LogicalOp::Get {
                table: t2,
                cols: vec![ColId(2), ColId(3)],
                parts: None,
            }),
        ],
    );
    orca_dxl::query_to_dxl(&orca_dxl::DxlQuery {
        expr: join,
        output_cols: vec![ColId(0)],
        order: OrderSpec::by(&[ColId(0)]),
        dist: DistSpec::Singleton,
        columns: vec![
            ("t1.a".into(), DataType::Int),
            ("t1.b".into(), DataType::Int),
            ("t2.a".into(), DataType::Int),
            ("t2.b".into(), DataType::Int),
        ],
    })
}

/// Figure 2's loop: DXL query in, DXL plan out — no native structs at the
/// boundary.
#[test]
fn dxl_in_dxl_out() {
    let p = provider_with_tables();
    let optimizer = Optimizer::new(p.clone(), OptimizerConfig::default());
    let query_dxl = running_example_dxl(&p);
    let plan_dxl = optimizer.optimize_dxl(&query_dxl).expect("optimizes");
    assert!(plan_dxl.contains("dxl:Plan"));
    assert!(plan_dxl.contains("dxl:HashJoin"));
    // The emitted plan parses back and carries the Figure 6 shape.
    let plan = orca_dxl::parse_plan_doc(&plan_dxl, p.as_ref()).expect("parses");
    let text = orca_expr::pretty::explain_physical(&plan.plan);
    assert!(
        text.contains("GatherMerge") || text.contains("Gather"),
        "{text}"
    );
    assert!(text.contains("Redistribute"), "{text}");
    assert!(plan.cost > 0.0);
}

/// §5's offline mode: harvest metadata to a DXL file, reload it through
/// the file-based provider, and optimize with no live backend.
#[test]
fn file_provider_offline_optimization() {
    let p = provider_with_tables();
    let query_dxl = running_example_dxl(&p);
    // Harvest the metadata the query needs into a minimal DXL file.
    let parsed = orca_dxl::parse_query(&query_dxl, p.as_ref()).expect("parses");
    let metadata = orca::amper::harvest_metadata(&parsed.expr, p.as_ref()).expect("harvests");
    assert_eq!(metadata.tables.len(), 2);
    let dir = std::env::temp_dir().join("orca_file_provider_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metadata.dxl");
    FileProvider::save(&metadata, &path).expect("saves");

    // A brand-new optimizer against the file — no MemoryProvider at all.
    let file_provider = Arc::new(FileProvider::open(&path).expect("opens"));
    let optimizer = Optimizer::new(file_provider.clone(), OptimizerConfig::default());
    let plan_dxl = optimizer
        .optimize_dxl(&query_dxl)
        .expect("optimizes offline");
    assert!(plan_dxl.contains("dxl:HashJoin"));
    std::fs::remove_file(&path).ok();
}

/// The metadata cache is shared across optimizer sessions: the second
/// optimization of the same tables hits the cache instead of the provider.
#[test]
fn metadata_cache_shared_across_sessions() {
    let p = provider_with_tables();
    let optimizer = Optimizer::new(p.clone(), OptimizerConfig::default());
    let query_dxl = running_example_dxl(&p);
    optimizer.optimize_dxl(&query_dxl).expect("first run");
    let misses_after_first = optimizer.cache().miss_count();
    assert!(misses_after_first > 0);
    optimizer.optimize_dxl(&query_dxl).expect("second run");
    assert_eq!(
        optimizer.cache().miss_count(),
        misses_after_first,
        "second session must be served from the cache"
    );
    assert!(optimizer.cache().hit_count() > 0);
    assert!(optimizer.cache().bytes() > 0);
}

fn bound_join(p: &MemoryProvider, registry: &Arc<ColumnRegistry>) -> (LogicalExpr, QueryReqs) {
    for name in ["t1.a", "t1.b", "t2.a", "t2.b"] {
        registry.fresh(name, DataType::Int);
    }
    let t1 = TableRef(p.table(p.table_by_name("t1").unwrap()).unwrap());
    let t2 = TableRef(p.table(p.table_by_name("t2").unwrap()).unwrap());
    let join = LogicalExpr::new(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
        },
        vec![
            LogicalExpr::leaf(LogicalOp::Get {
                table: t1,
                cols: vec![ColId(0), ColId(1)],
                parts: None,
            }),
            LogicalExpr::leaf(LogicalOp::Get {
                table: t2,
                cols: vec![ColId(2), ColId(3)],
                parts: None,
            }),
        ],
    );
    (join, QueryReqs::gather_all(vec![ColId(0)]))
}

/// Multi-stage optimization: a restricted first stage with a cost
/// threshold escalates to the full stage, and the reported plan is the
/// better one.
#[test]
fn multistage_escalation_and_rule_subsets() {
    let p = provider_with_tables();
    let registry = Arc::new(ColumnRegistry::new());
    let (expr, reqs) = bound_join(&p, &registry);

    // Full optimization baseline.
    let full = Optimizer::new(p.clone(), OptimizerConfig::default());
    let (_, full_stats) = full.optimize(&expr, &registry, &reqs).expect("full");

    // Stage 1 = NL joins only (bad), threshold forces stage 2 = all rules.
    let staged = Optimizer::new(
        p.clone(),
        OptimizerConfig {
            stages: vec![
                StageConfig {
                    rules: Some(vec![
                        "Get2TableScan",
                        "Select2Filter",
                        "Project2Project",
                        "Join2NLJoin",
                    ]),
                    timeout: None,
                    cost_threshold: Some(0.001), // unreachable: always escalate
                },
                StageConfig::default(),
            ],
            ..OptimizerConfig::default()
        },
    );
    let (_, staged_stats) = staged.optimize(&expr, &registry, &reqs).expect("staged");
    assert_eq!(staged_stats.stages_run, 2);
    assert!(
        (staged_stats.plan_cost - full_stats.plan_cost).abs() < 1e-9,
        "escalation must recover the full-rule plan: {} vs {}",
        staged_stats.plan_cost,
        full_stats.plan_cost
    );

    // A stage whose rule set cannot implement the query at all is skipped
    // in favor of the next stage.
    let crippled_then_full = Optimizer::new(
        p.clone(),
        OptimizerConfig {
            stages: vec![
                StageConfig {
                    rules: Some(vec!["Get2TableScan"]), // no join implementation
                    timeout: None,
                    cost_threshold: None,
                },
                StageConfig::default(),
            ],
            ..OptimizerConfig::default()
        },
    );
    let (_, s) = crippled_then_full
        .optimize(&expr, &registry, &reqs)
        .expect("stage 2 rescues");
    assert!((s.plan_cost - full_stats.plan_cost).abs() < 1e-9);

    // All stages crippled → NoPlan.
    let hopeless = Optimizer::new(
        p.clone(),
        OptimizerConfig {
            stages: vec![StageConfig {
                rules: Some(vec!["Get2TableScan"]),
                timeout: None,
                cost_threshold: None,
            }],
            ..OptimizerConfig::default()
        },
    );
    let err = hopeless.optimize(&expr, &registry, &reqs).unwrap_err();
    assert!(matches!(err, OrcaError::NoPlan(_)), "{err}");
}

/// A zero-length stage timeout aborts that stage; a later stage still
/// produces the plan.
#[test]
fn stage_timeout_falls_through() {
    let p = provider_with_tables();
    let registry = Arc::new(ColumnRegistry::new());
    let (expr, reqs) = bound_join(&p, &registry);
    let optimizer = Optimizer::new(
        p.clone(),
        OptimizerConfig {
            stages: vec![
                StageConfig {
                    rules: None,
                    timeout: Some(Duration::ZERO),
                    cost_threshold: None,
                },
                StageConfig::default(),
            ],
            ..OptimizerConfig::default()
        },
    );
    let (_, stats) = optimizer
        .optimize(&expr, &registry, &reqs)
        .expect("stage 2");
    assert_eq!(stats.stages_run, 2);
    // And if *every* stage times out, the timeout error surfaces.
    let all_timeout = Optimizer::new(
        p,
        OptimizerConfig {
            stages: vec![StageConfig {
                rules: None,
                timeout: Some(Duration::ZERO),
                cost_threshold: None,
            }],
            ..OptimizerConfig::default()
        },
    );
    let err = all_timeout.optimize(&expr, &registry, &reqs).unwrap_err();
    // Deadline expiry surfaces as the *typed* timeout (distinct from
    // external cancellation) so serving layers can degrade instead of fail.
    assert_eq!(err.kind(), "timeout");
}

/// Disabling join reordering globally changes nothing about correctness
/// but can change the chosen plan cost; disabling an implementation rule
/// removes its operators from the plan.
#[test]
fn rule_disabling_is_respected() {
    let p = provider_with_tables();
    let registry = Arc::new(ColumnRegistry::new());
    let (expr, reqs) = bound_join(&p, &registry);
    let no_hash = Optimizer::new(
        p.clone(),
        OptimizerConfig {
            disabled_rules: vec!["Join2HashJoin"],
            ..OptimizerConfig::default()
        },
    );
    let (plan, _) = no_hash.optimize(&expr, &registry, &reqs).expect("plans");
    let text = orca_expr::pretty::explain_physical(&plan);
    assert!(!text.contains("HashJoin"), "{text}");
    assert!(text.contains("NLJoin"), "{text}");
}

/// The Memo renders Figure 6-style: groups, expressions (including
/// enforcers marked with `*`), and best-candidate lines per request.
#[test]
fn memo_explain_shows_figure6_structure() {
    let p = provider_with_tables();
    let registry = Arc::new(ColumnRegistry::new());
    let (expr, reqs) = bound_join(&p, &registry);
    let optimizer = Optimizer::new(p, OptimizerConfig::default());
    let (memo, root, req, _, _) = optimizer
        .optimize_with_memo(&expr, &registry, &reqs)
        .expect("optimizes");
    let text = memo.explain();
    assert!(text.contains("GROUP g0"));
    assert!(text.contains("InnerJoin"), "{text}");
    assert!(text.contains("InnerHashJoin"), "{text}");
    assert!(text.contains("*"), "enforcers are rendered: {text}");
    assert!(text.contains("req {Singleton"), "{text}");
    // The root group's context satisfies the original request.
    let group = memo.group(root);
    let g = group.read();
    let best = g.best_for(memo.intern_req(&req)).expect("best candidate");
    assert!(best.derived.satisfies(&req));
    // TAQO can count a non-trivial plan space from this memo.
    let mut sampler = orca::taqo::PlanSampler::new(&memo);
    assert!(sampler.count(root, &req) >= 2.0, "multiple plans recorded");
}
