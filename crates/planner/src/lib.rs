//! `orca-planner` — the comparison optimizers of §7.
//!
//! * [`legacy`] — the GPDB **Planner**: a PostgreSQL-style bottom-up
//!   dynamic-programming optimizer ("inherits part of its design from the
//!   PostgreSQL optimizer", §7.2). Distribution-aware and cost-based for
//!   join ordering, but with the documented legacy gaps that §7.2.2
//!   attributes Orca's wins to: correlated subqueries stay as per-row
//!   SubPlans, WITH clauses are inlined per consumer (no shared CTEs),
//!   partitioned tables are scanned in full (no partition elimination),
//!   aggregates are never split into local/global stages, and join trees
//!   are left-deep only.
//! * [`rivals`] — simulated Hadoop SQL engines (§7.3): Impala-, Presto-
//!   and Stinger-like profiles with literal join ordering ("Impala and
//!   Stinger handle join orders as literally specified in the query"),
//!   per-engine SQL feature support matrices (§7.3.1), no-spill execution
//!   and MapReduce stage-materialization penalties.
//! * [`est`] — the crude shared cardinality estimator these planners use
//!   (deliberately simpler than Orca's histogram machinery).

pub mod est;
pub mod legacy;
pub mod rivals;

pub use legacy::LegacyPlanner;
pub use rivals::{EngineProfile, QueryFeature};

/// Map a table distribution to a `DistSpec` over scan output columns
/// (shared by both baseline planners; mirrors `orca::enforce`).
pub(crate) fn shared_table_dist(
    dist: &orca_catalog::Distribution,
    cols: &[orca_common::ColId],
) -> orca_expr::props::DistSpec {
    use orca_catalog::Distribution;
    use orca_expr::props::DistSpec;
    match dist {
        Distribution::Hashed(idxs) => {
            let mapped: Option<Vec<orca_common::ColId>> =
                idxs.iter().map(|i| cols.get(*i).copied()).collect();
            match mapped {
                Some(cols) => DistSpec::Hashed(cols),
                None => DistSpec::Random,
            }
        }
        Distribution::Random => DistSpec::Random,
        Distribution::Replicated => DistSpec::Replicated,
        Distribution::Singleton => DistSpec::Singleton,
    }
}
