//! Simulated Hadoop SQL engines (§7.3): rule-based planners with literal
//! join ordering and per-engine feature-support matrices.
//!
//! §7.3.1/§7.3.2 describe the behaviors modelled here:
//! * "Impala does not yet support window functions, ORDER BY statement
//!   without LIMIT and some analytic functions like ROLLUP and CUBE.
//!   Presto does not yet support non-equi joins. Stinger currently does
//!   not support WITH clause and CASE statement. In addition, none of the
//!   systems supports INTERSECT, EXCEPT, disjunctive join conditions and
//!   correlated subqueries."
//! * "Impala and Stinger handle join orders as literally specified in the
//!   query" and "Impala recommends users to write joins in the descending
//!   order of the sizes of joined tables" — the literal planner broadcasts
//!   the right side of every join (Impala's default without statistics).
//! * The out-of-memory failures of Figure 13 come from "the inability of
//!   these systems to spill partial results to disk" — expressed through
//!   the engine's `can_spill` flag, enforced by the execution simulator.

use orca_common::{ColId, OrcaError, Result};
use orca_expr::logical::{LogicalExpr, LogicalOp, TableRef};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::ScalarExpr;

/// SQL features a query may require (the Figure 15 support dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFeature {
    WindowFunctions,
    RollupCube,
    OrderByWithoutLimit,
    NonEquiJoin,
    WithClause,
    CaseStatement,
    IntersectExcept,
    DisjunctiveJoin,
    CorrelatedSubquery,
    UncorrelatedSubquery,
    OuterJoin,
    ImplicitCrossJoin,
}

/// One engine's capabilities.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    pub name: &'static str,
    unsupported: &'static [QueryFeature],
    /// Joins planned exactly as written, no reordering.
    pub literal_join_order: bool,
    /// Whether operators may spill (Figure 13's `*` bars are engines that
    /// cannot).
    pub can_spill: bool,
    /// Simulated-time multiplier per plan stage, modelling MapReduce
    /// materialization between stages (Stinger).
    pub stage_penalty: f64,
}

impl EngineProfile {
    /// HAWQ: full SQL support, cost-based (planned by Orca, not here).
    pub fn hawq() -> EngineProfile {
        EngineProfile {
            name: "HAWQ",
            unsupported: &[],
            literal_join_order: false,
            can_spill: true,
            stage_penalty: 0.0,
        }
    }

    pub fn impala() -> EngineProfile {
        EngineProfile {
            name: "Impala",
            unsupported: &[
                QueryFeature::WindowFunctions,
                QueryFeature::RollupCube,
                QueryFeature::OrderByWithoutLimit,
                QueryFeature::IntersectExcept,
                QueryFeature::DisjunctiveJoin,
                QueryFeature::CorrelatedSubquery,
            ],
            literal_join_order: true,
            can_spill: false,
            stage_penalty: 0.0,
        }
    }

    pub fn presto() -> EngineProfile {
        EngineProfile {
            name: "Presto",
            unsupported: &[
                QueryFeature::NonEquiJoin,
                QueryFeature::WindowFunctions,
                QueryFeature::RollupCube,
                QueryFeature::IntersectExcept,
                QueryFeature::DisjunctiveJoin,
                QueryFeature::CorrelatedSubquery,
                QueryFeature::ImplicitCrossJoin,
                QueryFeature::OuterJoin,
                QueryFeature::UncorrelatedSubquery,
            ],
            literal_join_order: true,
            can_spill: false,
            stage_penalty: 0.0,
        }
    }

    pub fn stinger() -> EngineProfile {
        EngineProfile {
            name: "Stinger",
            unsupported: &[
                QueryFeature::WithClause,
                QueryFeature::CaseStatement,
                QueryFeature::IntersectExcept,
                QueryFeature::DisjunctiveJoin,
                QueryFeature::CorrelatedSubquery,
                QueryFeature::ImplicitCrossJoin,
            ],
            literal_join_order: true,
            can_spill: true,
            stage_penalty: 0.4,
        }
    }

    pub fn supports(&self, f: QueryFeature) -> bool {
        !self.unsupported.contains(&f)
    }

    /// Can this engine produce a plan for a query needing `features`?
    pub fn supports_all(&self, features: &[QueryFeature]) -> bool {
        features.iter().all(|f| self.supports(*f))
    }

    /// First unsupported feature, for error messages.
    pub fn first_unsupported(&self, features: &[QueryFeature]) -> Option<QueryFeature> {
        features.iter().copied().find(|f| !self.supports(*f))
    }

    /// Plan a query this engine supports: literal join order, broadcast
    /// joins, no subquery decorrelation (unsupported queries must have
    /// been filtered by the feature check). WITH clauses are inlined per
    /// consumer (none of these engines share CTE results).
    pub fn plan(
        &self,
        expr: &LogicalExpr,
        features: &[QueryFeature],
        order: &OrderSpec,
        registry: &orca_expr::ColumnRegistry,
    ) -> Result<(PhysicalPlan, DistSpec)> {
        if let Some(f) = self.first_unsupported(features) {
            return Err(OrcaError::Unsupported(format!(
                "{} does not support {f:?}",
                self.name
            )));
        }
        let expr = crate::legacy::inline_all_ctes(expr.clone(), registry);
        let (mut plan, dist) = plan_literal(&expr)?;
        let mut out_dist = dist;
        if out_dist != DistSpec::Singleton {
            plan = PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![plan],
            );
            out_dist = DistSpec::Singleton;
        }
        if !order.is_any() {
            plan = PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: order.clone(),
                },
                vec![plan],
            );
        }
        Ok((plan, out_dist))
    }
}

/// Distribution of a base table scan over its output columns.
pub fn table_dist(table: &TableRef, cols: &[ColId]) -> DistSpec {
    crate::shared_table_dist(&table.distribution, cols)
}

/// Literal (no-reordering) physical planning: hash join with the right
/// side always broadcast (Impala's stats-free default), single-stage
/// aggregation, full scans.
fn plan_literal(expr: &LogicalExpr) -> Result<(PhysicalPlan, DistSpec)> {
    Ok(match &expr.op {
        LogicalOp::Get { table, cols, .. } => (
            PhysicalPlan::leaf(PhysicalOp::TableScan {
                table: table.clone(),
                cols: cols.clone(),
                parts: None,
            }),
            table_dist(table, cols),
        ),
        LogicalOp::Select { pred } => {
            let (child, dist) = plan_literal(&expr.children[0])?;
            (
                PhysicalPlan::new(PhysicalOp::Filter { pred: pred.clone() }, vec![child]),
                dist,
            )
        }
        LogicalOp::Project { exprs } => {
            let (child, dist) = plan_literal(&expr.children[0])?;
            let out_cols: Vec<ColId> = exprs.iter().map(|(c, _)| *c).collect();
            (
                PhysicalPlan::new(
                    PhysicalOp::Project {
                        exprs: exprs.clone(),
                    },
                    vec![child],
                ),
                dist.project(&out_cols),
            )
        }
        LogicalOp::Join { kind, pred } => {
            let (left, ldist) = plan_literal(&expr.children[0])?;
            let (right, _) = plan_literal(&expr.children[1])?;
            let left_cols = left.output_cols();
            let right_cols = right.output_cols();
            let mut lkeys = Vec::new();
            let mut rkeys = Vec::new();
            let mut residual = Vec::new();
            for conj in pred.clone().into_conjuncts() {
                match conj.as_equi_pair(&left_cols, &right_cols) {
                    Some((l, r)) => {
                        lkeys.push(l);
                        rkeys.push(r);
                    }
                    None => residual.push(conj),
                }
            }
            // Broadcast the right side as written — no size reasoning.
            let bright = PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Broadcast,
                },
                vec![right],
            );
            let plan = if lkeys.is_empty() {
                PhysicalPlan::new(
                    PhysicalOp::NLJoin {
                        kind: *kind,
                        pred: pred.clone(),
                    },
                    vec![left, bright],
                )
            } else {
                PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: *kind,
                        left_keys: lkeys,
                        right_keys: rkeys,
                        residual: if residual.is_empty() {
                            None
                        } else {
                            Some(ScalarExpr::and(residual))
                        },
                    },
                    vec![left, bright],
                )
            };
            (plan, ldist)
        }
        LogicalOp::GbAgg {
            group_cols, aggs, ..
        } => {
            let (child, _) = plan_literal(&expr.children[0])?;
            let input = if group_cols.is_empty() {
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Gather,
                    },
                    vec![child],
                )
            } else {
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Redistribute(group_cols.clone()),
                    },
                    vec![child],
                )
            };
            let dist = if group_cols.is_empty() {
                DistSpec::Singleton
            } else {
                DistSpec::Hashed(group_cols.clone())
            };
            (
                PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: group_cols.clone(),
                        aggs: aggs.clone(),
                        stage: orca_expr::logical::AggStage::Single,
                    },
                    vec![input],
                ),
                dist,
            )
        }
        LogicalOp::Limit {
            order,
            offset,
            count,
        } => {
            let (child, _) = plan_literal(&expr.children[0])?;
            let gathered = PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![child],
            );
            let sorted = if order.is_any() {
                gathered
            } else {
                PhysicalPlan::new(
                    PhysicalOp::Sort {
                        order: order.clone(),
                    },
                    vec![gathered],
                )
            };
            (
                PhysicalPlan::new(
                    PhysicalOp::Limit {
                        order: order.clone(),
                        offset: *offset,
                        count: *count,
                    },
                    vec![sorted],
                ),
                DistSpec::Singleton,
            )
        }
        LogicalOp::SetOp {
            kind,
            output,
            input_cols,
        } => {
            let mut children = Vec::new();
            for c in &expr.children {
                let (p, dist) = plan_literal(c)?;
                children.push(if dist == DistSpec::Singleton {
                    p
                } else {
                    PhysicalPlan::new(
                        PhysicalOp::Motion {
                            kind: MotionKind::Gather,
                        },
                        vec![p],
                    )
                });
            }
            let op = if *kind == orca_expr::logical::SetOpKind::UnionAll {
                PhysicalOp::UnionAll {
                    output: output.clone(),
                    input_cols: input_cols.clone(),
                }
            } else {
                PhysicalOp::HashSetOp {
                    kind: *kind,
                    output: output.clone(),
                    input_cols: input_cols.clone(),
                }
            };
            (PhysicalPlan::new(op, children), DistSpec::Singleton)
        }
        LogicalOp::MaxOneRow => {
            let (child, dist) = plan_literal(&expr.children[0])?;
            let input = if dist == DistSpec::Singleton {
                child
            } else {
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Gather,
                    },
                    vec![child],
                )
            };
            (
                PhysicalPlan::new(PhysicalOp::AssertOneRow, vec![input]),
                DistSpec::Singleton,
            )
        }
        other => {
            return Err(OrcaError::Unsupported(format!(
                "literal planner cannot handle {}",
                other.name()
            )))
        }
    })
}
