//! The legacy GPDB **Planner** (§7.2): a PostgreSQL-style bottom-up
//! optimizer used as the baseline for Figure 12.
//!
//! Faithful in what it *can* do — cost-based left-deep join ordering via
//! dynamic programming over join subsets, distribution-aware co-location
//! through Redistribute motions, predicate pushdown — and faithful in what
//! it cannot:
//!
//! * correlated subqueries stay as per-row **SubPlans** in filter
//!   predicates (the executor runs them per outer row);
//! * WITH clauses are **inlined at every consumer** (re-executing the
//!   shared expression);
//! * no partition elimination — partitioned tables are scanned fully;
//! * no broadcast joins, no multi-stage aggregation, no index paths;
//! * NDV-only cardinality estimation ([`crate::est`]).

use crate::est::{self, RoughStats};
use orca_catalog::MdAccessor;
use orca_common::hash::FnvHashMap;
use orca_common::{ColId, OrcaError, Result};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::props::{DistSpec, OrderSpec};
use orca_expr::scalar::ScalarExpr;
use orca_expr::ColumnRegistry;

/// The baseline planner.
pub struct LegacyPlanner<'a> {
    pub md: &'a MdAccessor,
    pub registry: &'a ColumnRegistry,
    /// Exhaustive left-deep DP up to this many relations; greedy beyond.
    pub dp_threshold: usize,
}

/// A planned subtree with its delivered distribution and estimated rows.
struct Planned {
    plan: PhysicalPlan,
    dist: DistSpec,
    stats: RoughStats,
    /// Accumulated estimated cost (row-count based).
    cost: f64,
}

impl<'a> LegacyPlanner<'a> {
    pub fn new(md: &'a MdAccessor, registry: &'a ColumnRegistry) -> LegacyPlanner<'a> {
        LegacyPlanner {
            md,
            registry,
            dp_threshold: 8,
        }
    }

    /// Plan a query: the result gathers to the master with the given sort
    /// order (same contract as Orca's root optimization request).
    pub fn plan(&self, expr: &LogicalExpr, order: &OrderSpec) -> Result<(PhysicalPlan, f64)> {
        // Legacy preprocessing: inline all CTEs (re-execution!), push
        // predicates down. Subqueries remain as markers.
        let expr = inline_all_ctes(expr.clone(), self.registry);
        let planned = self.plan_rel(&expr)?;
        let mut plan = planned.plan;
        let mut cost = planned.cost;
        // Gather to the master.
        if planned.dist != DistSpec::Singleton {
            plan = PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![plan],
            );
            cost += planned.stats.rows;
        }
        if !order.is_any() {
            plan = PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: order.clone(),
                },
                vec![plan],
            );
            cost += planned.stats.rows.max(2.0) * planned.stats.rows.max(2.0).log2() * 0.01;
        }
        Ok((plan, cost))
    }

    fn plan_rel(&self, expr: &LogicalExpr) -> Result<Planned> {
        match &expr.op {
            LogicalOp::Get { table, cols, .. } => {
                // No partition elimination: scan everything.
                let stats = est::estimate(
                    &LogicalExpr::leaf(LogicalOp::Get {
                        table: table.clone(),
                        cols: cols.clone(),
                        parts: None,
                    }),
                    self.md,
                )?;
                Ok(Planned {
                    plan: PhysicalPlan::leaf(PhysicalOp::TableScan {
                        table: table.clone(),
                        cols: cols.clone(),
                        parts: None,
                    }),
                    dist: crate::rivals::table_dist(table, cols),
                    cost: stats.rows,
                    stats,
                })
            }
            LogicalOp::Select { pred } => {
                // Like PostgreSQL, plain WHERE conjuncts participate in
                // join planning; SubPlan conjuncts stay in a Filter above
                // (executed per row — where the 10x–1000x of Figure 12
                // comes from).
                let (plain, subplans): (Vec<ScalarExpr>, Vec<ScalarExpr>) = pred
                    .clone()
                    .into_conjuncts()
                    .into_iter()
                    .partition(|c| !c.has_subquery());
                let child = if matches!(
                    &expr.children[0].op,
                    LogicalOp::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                ) && !plain.is_empty()
                {
                    self.plan_join_tree_with(&expr.children[0], plain)?
                } else if plain.is_empty() {
                    self.plan_rel(&expr.children[0])?
                } else {
                    let inner = self.plan_rel(&expr.children[0])?;
                    let stats = derive_rough_filter(&inner.stats);
                    Planned {
                        plan: PhysicalPlan::new(
                            PhysicalOp::Filter {
                                pred: ScalarExpr::and(plain),
                            },
                            vec![inner.plan],
                        ),
                        dist: inner.dist,
                        cost: inner.cost + inner.stats.rows,
                        stats,
                    }
                };
                if subplans.is_empty() {
                    return Ok(child);
                }
                let pred = ScalarExpr::and(subplans);
                let cost = child.cost
                    + child.stats.rows
                    + subplan_penalty(&pred, child.stats.rows, self.md)?;
                let stats = derive_rough_filter(&child.stats);
                Ok(Planned {
                    plan: PhysicalPlan::new(PhysicalOp::Filter { pred }, vec![child.plan]),
                    dist: child.dist,
                    stats,
                    cost,
                })
            }
            LogicalOp::Project { exprs } => {
                let child = self.plan_rel(&expr.children[0])?;
                let stats = est::estimate(expr, self.md)?;
                let cost = child.cost
                    + child.stats.rows * 0.1
                    + exprs
                        .iter()
                        .map(|(_, e)| subplan_penalty(e, child.stats.rows, self.md).unwrap_or(0.0))
                        .sum::<f64>();
                Ok(Planned {
                    plan: PhysicalPlan::new(
                        PhysicalOp::Project {
                            exprs: exprs.clone(),
                        },
                        vec![child.plan],
                    ),
                    dist: child
                        .dist
                        .project(&exprs.iter().map(|(c, _)| *c).collect::<Vec<_>>()),
                    stats,
                    cost,
                })
            }
            LogicalOp::Join { .. } => self.plan_join_tree(expr),
            LogicalOp::GbAgg {
                group_cols, aggs, ..
            } => {
                let child = self.plan_rel(&expr.children[0])?;
                let stats = est::estimate(expr, self.md)?;
                // Single-stage only: co-locate on grouping columns first.
                let (input, moved) = if group_cols.is_empty() {
                    self.to_singleton(child)
                } else {
                    self.to_hashed(child, group_cols)
                };
                let cost = input.cost + moved + input.stats.rows;
                Ok(Planned {
                    plan: PhysicalPlan::new(
                        PhysicalOp::HashAgg {
                            group_cols: group_cols.clone(),
                            aggs: aggs.clone(),
                            stage: orca_expr::logical::AggStage::Single,
                        },
                        vec![input.plan],
                    ),
                    dist: input.dist,
                    stats,
                    cost,
                })
            }
            LogicalOp::Limit {
                order,
                offset,
                count,
            } => {
                let child = self.plan_rel(&expr.children[0])?;
                let stats = est::estimate(expr, self.md)?;
                let (mut input, moved) = self.to_singleton(child);
                if !order.is_any() {
                    input.plan = PhysicalPlan::new(
                        PhysicalOp::Sort {
                            order: order.clone(),
                        },
                        vec![input.plan],
                    );
                }
                let cost = input.cost + moved + input.stats.rows;
                Ok(Planned {
                    plan: PhysicalPlan::new(
                        PhysicalOp::Limit {
                            order: order.clone(),
                            offset: *offset,
                            count: *count,
                        },
                        vec![input.plan],
                    ),
                    dist: DistSpec::Singleton,
                    stats,
                    cost,
                })
            }
            LogicalOp::SetOp {
                kind,
                output,
                input_cols,
            } => {
                let mut children = Vec::new();
                let mut cost = 0.0;
                let mut rows = 0.0;
                for c in &expr.children {
                    let p = self.plan_rel(c)?;
                    let (p, moved) = self.to_singleton(p);
                    cost += p.cost + moved;
                    rows += p.stats.rows;
                    children.push(p.plan);
                }
                let op = if *kind == orca_expr::logical::SetOpKind::UnionAll {
                    PhysicalOp::UnionAll {
                        output: output.clone(),
                        input_cols: input_cols.clone(),
                    }
                } else {
                    PhysicalOp::HashSetOp {
                        kind: *kind,
                        output: output.clone(),
                        input_cols: input_cols.clone(),
                    }
                };
                Ok(Planned {
                    plan: PhysicalPlan::new(op, children),
                    dist: DistSpec::Singleton,
                    stats: RoughStats {
                        rows,
                        ndv: Default::default(),
                    },
                    cost: cost + rows,
                })
            }
            LogicalOp::MaxOneRow => {
                let child = self.plan_rel(&expr.children[0])?;
                let (input, moved) = self.to_singleton(child);
                Ok(Planned {
                    plan: PhysicalPlan::new(PhysicalOp::AssertOneRow, vec![input.plan]),
                    dist: DistSpec::Singleton,
                    stats: RoughStats {
                        rows: 1.0,
                        ndv: Default::default(),
                    },
                    cost: input.cost + moved,
                })
            }
            LogicalOp::Sequence { .. }
            | LogicalOp::CteProducer { .. }
            | LogicalOp::CteConsumer { .. } => Err(OrcaError::Internal(
                "CTE nodes must be inlined before legacy planning".into(),
            )),
            LogicalOp::ConstTable { cols, rows } => Ok(Planned {
                plan: PhysicalPlan::leaf(PhysicalOp::ConstTable {
                    cols: cols.clone(),
                    rows: rows.clone(),
                }),
                dist: DistSpec::Singleton,
                stats: RoughStats {
                    rows: rows.len() as f64,
                    ndv: Default::default(),
                },
                cost: rows.len() as f64,
            }),
        }
    }

    /// Flatten a tree of inner joins, DP over left-deep orders, emit
    /// redistribute-based hash joins.
    fn plan_join_tree(&self, expr: &LogicalExpr) -> Result<Planned> {
        self.plan_join_tree_with(expr, Vec::new())
    }

    /// As [`LegacyPlanner::plan_join_tree`], with extra WHERE conjuncts
    /// folded into the DP.
    fn plan_join_tree_with(
        &self,
        expr: &LogicalExpr,
        extra_conjuncts: Vec<ScalarExpr>,
    ) -> Result<Planned> {
        let LogicalOp::Join { kind, pred } = &expr.op else {
            unreachable!()
        };
        if *kind != JoinKind::Inner {
            // Non-inner joins keep the written order: plan both sides,
            // co-locate, hash or NL join.
            let left = self.plan_rel(&expr.children[0])?;
            let right = self.plan_rel(&expr.children[1])?;
            let joined = self.emit_join(*kind, left, right, pred.clone())?;
            return Ok(if extra_conjuncts.is_empty() {
                joined
            } else {
                let stats = derive_rough_filter(&joined.stats);
                Planned {
                    plan: PhysicalPlan::new(
                        PhysicalOp::Filter {
                            pred: ScalarExpr::and(extra_conjuncts),
                        },
                        vec![joined.plan],
                    ),
                    dist: joined.dist,
                    cost: joined.cost + joined.stats.rows,
                    stats,
                }
            });
        }
        // Collect the flattened inner-join list.
        let mut relations: Vec<&LogicalExpr> = Vec::new();
        let mut conjuncts: Vec<ScalarExpr> = extra_conjuncts;
        conjuncts.retain(|c| !matches!(c, ScalarExpr::Const(orca_common::Datum::Bool(true))));
        flatten_inner_joins(expr, &mut relations, &mut conjuncts);
        if relations.len() > 12 {
            // Too large for the DP: literal order.
            let left = self.plan_rel(&expr.children[0])?;
            let right = self.plan_rel(&expr.children[1])?;
            return self.emit_join(JoinKind::Inner, left, right, pred.clone());
        }
        let planned: Vec<Planned> = relations
            .iter()
            .map(|r| self.plan_rel(r))
            .collect::<Result<_>>()?;
        let order = self.choose_left_deep_order(&planned, &conjuncts)?;
        // Emit in the chosen order.
        let mut iter = order.into_iter();
        let first = iter.next().expect("non-empty join order");
        let mut acc = self.plan_rel(relations[first])?;
        let mut remaining = conjuncts;
        let mut joined_cols: Vec<ColId> = acc.plan.output_cols();
        for idx in iter {
            let right = self.plan_rel(relations[idx])?;
            let right_cols = right.plan.output_cols();
            let mut all_cols = joined_cols.clone();
            all_cols.extend_from_slice(&right_cols);
            // Conjuncts now evaluable.
            let (usable, rest): (Vec<ScalarExpr>, Vec<ScalarExpr>) = remaining
                .into_iter()
                .partition(|c| c.used_cols().iter().all(|u| all_cols.contains(u)));
            remaining = rest;
            acc = self.emit_join(JoinKind::Inner, acc, right, ScalarExpr::and(usable))?;
            joined_cols = all_cols;
        }
        if !remaining.is_empty() {
            let stats = acc.stats.clone();
            acc = Planned {
                plan: PhysicalPlan::new(
                    PhysicalOp::Filter {
                        pred: ScalarExpr::and(remaining),
                    },
                    vec![acc.plan],
                ),
                dist: acc.dist,
                cost: acc.cost + stats.rows,
                stats,
            };
        }
        Ok(acc)
    }

    /// Left-deep DP (≤ `dp_threshold` relations) or greedy smallest-next.
    #[allow(clippy::needless_range_loop)] // bitmask-indexed DP reads clearer
    fn choose_left_deep_order(
        &self,
        planned: &[Planned],
        conjuncts: &[ScalarExpr],
    ) -> Result<Vec<usize>> {
        let n = planned.len();
        let rows: Vec<f64> = planned.iter().map(|p| p.stats.rows).collect();
        let cols: Vec<Vec<ColId>> = planned.iter().map(|p| p.plan.output_cols()).collect();
        // Join cardinality estimate for a set of relations: product of
        // rows × equi selectivities of applicable conjuncts.
        let card = |mask: u32| -> f64 {
            let mut r = 1.0;
            let mut in_cols: Vec<ColId> = Vec::new();
            for (i, c) in cols.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    r *= rows[i];
                    in_cols.extend_from_slice(c);
                }
            }
            for conj in conjuncts {
                if conj.used_cols().iter().all(|u| in_cols.contains(u)) {
                    r *= 0.001_f64.max(1.0 / rows.iter().cloned().fold(f64::INFINITY, f64::min));
                }
            }
            r.max(1.0)
        };
        // Connectivity: joining rel j to set S must share a conjunct.
        let connected = |mask: u32, j: usize| -> bool {
            let mut set_cols: Vec<ColId> = Vec::new();
            for (i, c) in cols.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    set_cols.extend_from_slice(c);
                }
            }
            conjuncts.iter().any(|conj| {
                let used = conj.used_cols();
                !used.is_empty()
                    && used.iter().any(|u| set_cols.contains(u))
                    && used.iter().any(|u| cols[j].contains(u))
                    && used
                        .iter()
                        .all(|u| set_cols.contains(u) || cols[j].contains(u))
            })
        };
        if n <= self.dp_threshold {
            // dp[mask] = (cost, last order)
            let full = (1u32 << n) - 1;
            let mut dp: FnvHashMap<u32, (f64, Vec<usize>)> = FnvHashMap::default();
            for i in 0..n {
                dp.insert(1 << i, (rows[i], vec![i]));
            }
            for mask in 1..=full {
                let Some((base_cost, order)) = dp.get(&mask).cloned() else {
                    continue;
                };
                for j in 0..n {
                    if mask & (1 << j) != 0 {
                        continue;
                    }
                    // Avoid cross joins when a connected extension exists;
                    // allow them as fallback with a penalty.
                    let next = mask | (1 << j);
                    let penalty = if connected(mask, j) { 1.0 } else { 1e6 };
                    let cost = base_cost + card(next) * penalty + rows[j];
                    let better = dp.get(&next).map(|(c, _)| cost < *c).unwrap_or(true);
                    if better {
                        let mut o = order.clone();
                        o.push(j);
                        dp.insert(next, (cost, o));
                    }
                }
            }
            Ok(dp
                .remove(&full)
                .map(|(_, o)| o)
                .ok_or_else(|| OrcaError::Internal("join DP found no order".into()))?)
        } else {
            // Greedy: start from the smallest relation, repeatedly add the
            // connected relation minimizing the intermediate cardinality.
            let mut order = Vec::with_capacity(n);
            let mut mask = 0u32;
            let first = (0..n)
                .min_by(|&a, &b| rows[a].partial_cmp(&rows[b]).expect("finite"))
                .expect("non-empty");
            order.push(first);
            mask |= 1 << first;
            while order.len() < n {
                let next = (0..n)
                    .filter(|j| mask & (1 << j) == 0)
                    .min_by(|&a, &b| {
                        let ca = card(mask | (1 << a)) * if connected(mask, a) { 1.0 } else { 1e6 };
                        let cb = card(mask | (1 << b)) * if connected(mask, b) { 1.0 } else { 1e6 };
                        ca.partial_cmp(&cb).expect("finite")
                    })
                    .expect("remaining relation");
                order.push(next);
                mask |= 1 << next;
            }
            Ok(order)
        }
    }

    /// Join two planned sides: hash join on equi conjuncts (co-locating by
    /// redistribution), NL join at the master otherwise.
    fn emit_join(
        &self,
        kind: JoinKind,
        left: Planned,
        right: Planned,
        pred: ScalarExpr,
    ) -> Result<Planned> {
        let left_cols = left.plan.output_cols();
        let right_cols = right.plan.output_cols();
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        let mut residual = Vec::new();
        for conj in pred.clone().into_conjuncts() {
            match conj.as_equi_pair(&left_cols, &right_cols) {
                Some((l, r)) => {
                    lkeys.push(l);
                    rkeys.push(r);
                }
                None => residual.push(conj),
            }
        }
        let out_rows = (left.stats.rows * right.stats.rows * 0.001).max(1.0);
        let mut ndv = left.stats.ndv.clone();
        ndv.extend(right.stats.ndv.clone());
        let out_stats = RoughStats {
            rows: out_rows,
            ndv,
        };
        if lkeys.is_empty() {
            // No equi keys: gather both sides, NL join at the master.
            let (l, lm) = self.to_singleton(left);
            let (r, rm) = self.to_singleton(right);
            let cost = l.cost + r.cost + lm + rm + l.stats.rows * r.stats.rows * 0.35;
            return Ok(Planned {
                plan: PhysicalPlan::new(PhysicalOp::NLJoin { kind, pred }, vec![l.plan, r.plan]),
                dist: DistSpec::Singleton,
                stats: out_stats,
                cost,
            });
        }
        let (l, lm) = self.to_hashed(left, &lkeys);
        let (r, rm) = self.to_hashed(right, &rkeys);
        let cost = l.cost + r.cost + lm + rm + l.stats.rows + r.stats.rows * 1.8;
        Ok(Planned {
            dist: l.dist.clone(),
            plan: PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind,
                    left_keys: lkeys,
                    right_keys: rkeys,
                    residual: if residual.is_empty() {
                        None
                    } else {
                        Some(ScalarExpr::and(residual))
                    },
                },
                vec![l.plan, r.plan],
            ),
            stats: out_stats,
            cost,
        })
    }

    /// Redistribute a side onto `keys` unless already co-located. Returns
    /// the new plan and the movement cost charged.
    fn to_hashed(&self, p: Planned, keys: &[ColId]) -> (Planned, f64) {
        if p.dist == DistSpec::Hashed(keys.to_vec()) {
            return (p, 0.0);
        }
        let moved = p.stats.rows;
        (
            Planned {
                plan: PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Redistribute(keys.to_vec()),
                    },
                    vec![p.plan],
                ),
                dist: DistSpec::Hashed(keys.to_vec()),
                stats: p.stats,
                cost: p.cost,
            },
            moved,
        )
    }

    fn to_singleton(&self, p: Planned) -> (Planned, f64) {
        if p.dist == DistSpec::Singleton {
            return (p, 0.0);
        }
        let moved = p.stats.rows * 2.0;
        (
            Planned {
                plan: PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Gather,
                    },
                    vec![p.plan],
                ),
                dist: DistSpec::Singleton,
                stats: p.stats,
                cost: p.cost,
            },
            moved,
        )
    }
}

/// Rough post-filter statistics (fixed 1/3 selectivity — the legacy
/// estimator has no histograms to do better).
fn derive_rough_filter(input: &RoughStats) -> RoughStats {
    RoughStats {
        rows: input.rows * 0.33,
        ndv: input.ndv.clone(),
    }
}

/// Estimated extra work for SubPlan predicates: each subquery re-runs per
/// outer row.
fn subplan_penalty(pred: &ScalarExpr, outer_rows: f64, md: &MdAccessor) -> Result<f64> {
    if !pred.has_subquery() {
        return Ok(0.0);
    }
    let mut inner_rows = 0.0;
    collect_subquery_rows(pred, md, &mut inner_rows)?;
    Ok(outer_rows * inner_rows)
}

fn collect_subquery_rows(e: &ScalarExpr, md: &MdAccessor, total: &mut f64) -> Result<()> {
    match e {
        ScalarExpr::Exists { subquery, .. } | ScalarExpr::ScalarSubquery { subquery, .. } => {
            *total += est::estimate(subquery, md)?.rows;
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_subquery_rows(expr, md, total)?;
            *total += est::estimate(subquery, md)?.rows;
        }
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            collect_subquery_rows(left, md, total)?;
            collect_subquery_rows(right, md, total)?;
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => {
            for x in v {
                collect_subquery_rows(x, md, total)?;
            }
        }
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => collect_subquery_rows(x, md, total)?,
        _ => {}
    }
    Ok(())
}

fn flatten_inner_joins<'e>(
    expr: &'e LogicalExpr,
    relations: &mut Vec<&'e LogicalExpr>,
    conjuncts: &mut Vec<ScalarExpr>,
) {
    match &expr.op {
        LogicalOp::Join {
            kind: JoinKind::Inner,
            pred,
        } => {
            conjuncts.extend(
                pred.clone()
                    .into_conjuncts()
                    .into_iter()
                    .filter(|c| !matches!(c, ScalarExpr::Const(orca_common::Datum::Bool(true)))),
            );
            flatten_inner_joins(&expr.children[0], relations, conjuncts);
            flatten_inner_joins(&expr.children[1], relations, conjuncts);
        }
        _ => relations.push(expr),
    }
}

/// Inline every CTE consumer with a fresh-column copy of the producer body
/// (the legacy re-execution model).
pub fn inline_all_ctes(expr: LogicalExpr, registry: &ColumnRegistry) -> LogicalExpr {
    let mut node = LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(|c| inline_all_ctes(c, registry))
            .collect(),
    };
    if let LogicalOp::Sequence { id } = node.op {
        let main = node.children.pop().expect("sequence main");
        let producer = node.children.pop().expect("sequence producer");
        let LogicalOp::CteProducer { cols, .. } = &producer.op else {
            return LogicalExpr::new(LogicalOp::Sequence { id }, vec![producer, main]);
        };
        let cols = cols.clone();
        let body = producer.children.into_iter().next().expect("producer body");
        return replace_consumers(main, id, &cols, &body, registry);
    }
    node
}

fn replace_consumers(
    expr: LogicalExpr,
    id: orca_common::CteId,
    producer_cols: &[ColId],
    body: &LogicalExpr,
    registry: &ColumnRegistry,
) -> LogicalExpr {
    if let LogicalOp::CteConsumer { id: cid, cols, .. } = &expr.op {
        if *cid == id {
            // Fresh copy of the body with brand-new column ids.
            let produced = body.produced_cols();
            let mut map: FnvHashMap<ColId, ColId> = FnvHashMap::default();
            for c in &produced {
                map.insert(
                    *c,
                    registry.fresh(&format!("cte_copy_{}", c.0), registry.dtype(*c)),
                );
            }
            let copy = body.remap_all(&|c| map.get(&c).copied().unwrap_or(c));
            // Project the copy's producer columns onto the consumer's ids.
            let exprs: Vec<(ColId, ScalarExpr)> = cols
                .iter()
                .zip(producer_cols)
                .map(|(c, p)| (*c, ScalarExpr::ColRef(map[p])))
                .collect();
            return LogicalExpr::new(LogicalOp::Project { exprs }, vec![copy]);
        }
    }
    LogicalExpr {
        op: expr.op,
        children: expr
            .children
            .into_iter()
            .map(|c| replace_consumers(c, id, producer_cols, body, registry))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::provider::MdProvider;
    use orca_catalog::stats::ColumnStats;
    use orca_catalog::{ColumnMeta, MdAccessor, MdCache, MemoryProvider, TableStats};
    use orca_common::{CteId, DataType, Datum};
    use orca_expr::pretty::explain_physical;
    use std::sync::Arc;

    /// Catalog: a big fact table and two small dimensions.
    fn setup() -> (Arc<MemoryProvider>, Arc<ColumnRegistry>) {
        let p = Arc::new(MemoryProvider::new());
        let registry = Arc::new(ColumnRegistry::new());
        for (name, rows) in [("fact", 100_000.0), ("dim1", 100.0), ("dim2", 500.0)] {
            let id = p.register(
                name,
                vec![
                    ColumnMeta::new("k", DataType::Int),
                    ColumnMeta::new("v", DataType::Int),
                ],
                orca_catalog::Distribution::Hashed(vec![0]),
            );
            let values: Vec<Datum> = (0..100).map(Datum::Int).collect();
            p.set_stats(
                id,
                TableStats::new(rows, 2)
                    .set_column(0, ColumnStats::from_column(&values, 8))
                    .set_column(1, ColumnStats::from_column(&values, 8)),
            );
            registry.fresh(&format!("{name}.k"), DataType::Int);
            registry.fresh(&format!("{name}.v"), DataType::Int);
        }
        (p, registry)
    }

    fn get(p: &MemoryProvider, name: &str, first: u32) -> LogicalExpr {
        let t = p.table(p.table_by_name(name).unwrap()).unwrap();
        LogicalExpr::leaf(LogicalOp::Get {
            table: orca_expr::logical::TableRef(t),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    /// DP join ordering: written as fact ⋈ dim1 ⋈ dim2 with the fact last
    /// in predicates, the planner should avoid fact-first cross products
    /// and still join through connected edges.
    #[test]
    fn dp_reorders_connected_joins() {
        let (p, registry) = setup();
        // ((dim1 ⋈ dim2 on nothing-direct) ⋈ fact) written badly: put the
        // two dims first with a pred that connects each dim to the fact.
        let join_inner = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::Const(Datum::Bool(true)), // cross as written
            },
            vec![get(&p, "dim1", 2), get(&p, "dim2", 4)],
        );
        let query = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(vec![
                    ScalarExpr::col_eq_col(ColId(0), ColId(2)), // fact.k = dim1.k
                    ScalarExpr::col_eq_col(ColId(1), ColId(4)), // fact.v = dim2.k
                ]),
            },
            vec![LogicalExpr::new(
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    pred: ScalarExpr::Const(Datum::Bool(true)),
                },
                vec![join_inner, get(&p, "fact", 0)],
            )],
        );
        let md = MdAccessor::new(MdCache::new(), p.clone() as Arc<dyn MdProvider>);
        let planner = LegacyPlanner::new(&md, &registry);
        let (plan, cost) = planner.plan(&query, &OrderSpec::any()).unwrap();
        let text = explain_physical(&plan);
        // Equi hash joins, not NL cross joins.
        assert_eq!(
            plan.find_ops(&|op| matches!(op, PhysicalOp::HashJoin { .. }))
                .len(),
            2,
            "{text}"
        );
        assert!(
            plan.find_ops(&|op| matches!(op, PhysicalOp::NLJoin { .. }))
                .is_empty(),
            "no cross joins: {text}"
        );
        assert!(cost.is_finite());
    }

    /// The legacy planner never prunes partitions and keeps subplans in
    /// filters.
    #[test]
    fn no_partition_elimination_and_subplans_stay() {
        let (p, registry) = setup();
        // A partitioned copy of fact.
        let id = p.table_by_name("fact").unwrap();
        let mut t = (*p.table(id).unwrap()).clone();
        t.name = "fact_part".into();
        t.mdid = orca_common::MdId::new(orca_common::SysId::Gpdb, 77, 1);
        let t = t.with_partitioning(orca_catalog::Partitioning::range(0, 0, 100, 10));
        p.install_table(Arc::new(t));
        p.set_stats(
            orca_common::MdId::new(orca_common::SysId::Gpdb, 77, 1),
            TableStats::new(1000.0, 2),
        );
        let scan = LogicalExpr::leaf(LogicalOp::Get {
            table: orca_expr::logical::TableRef(
                p.table(orca_common::MdId::new(orca_common::SysId::Gpdb, 77, 1))
                    .unwrap(),
            ),
            cols: vec![ColId(10), ColId(11)],
            parts: None,
        });
        let query = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::and(vec![
                    ScalarExpr::cmp(
                        orca_expr::scalar::CmpOp::Lt,
                        ScalarExpr::col(ColId(10)),
                        ScalarExpr::int(10),
                    ),
                    ScalarExpr::Exists {
                        negated: false,
                        subquery: Box::new(get(&p, "dim1", 2)),
                    },
                ]),
            },
            vec![scan],
        );
        let md = MdAccessor::new(MdCache::new(), p.clone() as Arc<dyn MdProvider>);
        let planner = LegacyPlanner::new(&md, &registry);
        let (plan, _) = planner.plan(&query, &OrderSpec::any()).unwrap();
        // Scan keeps parts=None (full scan) and a Filter with the subplan
        // marker survives.
        let scans = plan.find_ops(&|op| matches!(op, PhysicalOp::TableScan { .. }));
        assert!(scans
            .iter()
            .all(|s| matches!(s, PhysicalOp::TableScan { parts: None, .. })));
        let has_subplan_filter = plan
            .find_ops(&|op| matches!(op, PhysicalOp::Filter { pred } if pred.has_subquery()))
            .len()
            == 1;
        assert!(has_subplan_filter);
    }

    /// CTE inlining duplicates the producer with fresh column ids.
    #[test]
    fn cte_inlining_copies_with_fresh_cols() {
        let (p, registry) = setup();
        let producer = LogicalExpr::new(
            LogicalOp::CteProducer {
                id: CteId(1),
                cols: vec![ColId(0), ColId(1)],
            },
            vec![get(&p, "fact", 0)],
        );
        let consumer = |first: u32| {
            LogicalExpr::leaf(LogicalOp::CteConsumer {
                id: CteId(1),
                cols: vec![ColId(first), ColId(first + 1)],
                producer_cols: vec![ColId(0), ColId(1)],
            })
        };
        // Register consumer col ids so the registry can type them.
        for i in 0..30 {
            let _ = i;
            registry.fresh("pad", DataType::Int);
        }
        let join = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(10), ColId(20)),
            },
            vec![consumer(10), consumer(20)],
        );
        let seq = LogicalExpr::new(LogicalOp::Sequence { id: CteId(1) }, vec![producer, join]);
        let inlined = inline_all_ctes(seq, &registry);
        let text = orca_expr::pretty::explain_logical(&inlined);
        assert!(!text.contains("Sequence"), "{text}");
        assert!(!text.contains("CTEConsumer"), "{text}");
        // The fact table is scanned twice (re-execution).
        assert_eq!(text.matches("Get(fact)").count(), 2, "{text}");
        // The two copies must not share column ids.
        let mut get_cols: Vec<Vec<ColId>> = Vec::new();
        fn collect(e: &LogicalExpr, out: &mut Vec<Vec<ColId>>) {
            if let LogicalOp::Get { cols, .. } = &e.op {
                out.push(cols.clone());
            }
            for c in &e.children {
                collect(c, out);
            }
        }
        collect(&inlined, &mut get_cols);
        assert_eq!(get_cols.len(), 2);
        assert_ne!(get_cols[0], get_cols[1], "copies get fresh columns");
    }

    /// Engine profiles expose the §7.3.1 feature matrices.
    #[test]
    fn engine_profiles_match_paper_support_lists() {
        use crate::rivals::{EngineProfile, QueryFeature::*};
        let impala = EngineProfile::impala();
        assert!(!impala.supports(OrderByWithoutLimit));
        assert!(!impala.supports(CorrelatedSubquery));
        assert!(impala.supports(WithClause));
        assert!(impala.supports(CaseStatement));
        let presto = EngineProfile::presto();
        assert!(!presto.supports(NonEquiJoin));
        assert!(!presto.supports(ImplicitCrossJoin));
        let stinger = EngineProfile::stinger();
        assert!(!stinger.supports(WithClause));
        assert!(!stinger.supports(CaseStatement));
        assert!(stinger.supports(OrderByWithoutLimit));
        assert!(stinger.can_spill);
        assert!(!impala.can_spill);
        assert!(EngineProfile::hawq().supports_all(&[
            CorrelatedSubquery,
            WithClause,
            IntersectExcept,
            CaseStatement
        ]));
        assert_eq!(impala.first_unsupported(&[WithClause]), None);
        assert_eq!(
            impala.first_unsupported(&[WithClause, CorrelatedSubquery]),
            Some(CorrelatedSubquery)
        );
    }
}
