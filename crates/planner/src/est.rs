//! A deliberately crude cardinality estimator.
//!
//! The baselines share this NDV-only estimator (no histograms, fixed
//! default selectivities) — both because that matches the sophistication
//! gap the paper describes and because it keeps the baseline self-contained.

use orca_catalog::MdAccessor;
use orca_common::{ColId, Result};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp};
use orca_expr::scalar::{CmpOp, ScalarExpr};
use std::collections::HashMap;

/// Rough per-relation statistics: rows and per-column NDV.
#[derive(Debug, Clone, Default)]
pub struct RoughStats {
    pub rows: f64,
    pub ndv: HashMap<ColId, f64>,
}

impl RoughStats {
    pub fn ndv_of(&self, c: ColId) -> f64 {
        self.ndv.get(&c).copied().unwrap_or(self.rows).max(1.0)
    }
}

const EQ_SEL: f64 = 0.005;
const RANGE_SEL: f64 = 0.33;

/// Estimate output statistics of a logical tree (no histogram math; NDVs
/// from the catalog, default selectivities otherwise).
pub fn estimate(expr: &LogicalExpr, md: &MdAccessor) -> Result<RoughStats> {
    Ok(match &expr.op {
        LogicalOp::Get { table, cols, parts } => {
            let ts = md.stats(table.mdid)?;
            let frac = match (parts, &table.partitioning) {
                (Some(p), Some(part)) => p.len() as f64 / part.num_parts().max(1) as f64,
                _ => 1.0,
            };
            let mut ndv = HashMap::new();
            for (i, c) in cols.iter().enumerate() {
                if let Some(cs) = ts.column(i) {
                    ndv.insert(*c, cs.ndv);
                }
            }
            RoughStats {
                rows: ts.rows * frac,
                ndv,
            }
        }
        LogicalOp::Select { pred } => {
            let mut s = estimate(&expr.children[0], md)?;
            let sel = pred_selectivity(pred, &s);
            s.rows *= sel;
            s
        }
        LogicalOp::Project { exprs } => {
            let child = estimate(&expr.children[0], md)?;
            let mut ndv = HashMap::new();
            for (c, e) in exprs {
                if let ScalarExpr::ColRef(src) = e {
                    if let Some(n) = child.ndv.get(src) {
                        ndv.insert(*c, *n);
                    }
                }
            }
            RoughStats {
                rows: child.rows,
                ndv,
            }
        }
        LogicalOp::Join { kind, pred } => {
            let l = estimate(&expr.children[0], md)?;
            let r = estimate(&expr.children[1], md)?;
            let mut combined = RoughStats {
                rows: 0.0,
                ndv: l.ndv.clone(),
            };
            combined.ndv.extend(r.ndv.clone());
            let cross = l.rows * r.rows;
            let mut sel = 1.0;
            for conj in pred.conjuncts() {
                sel *= match equi_cols(conj) {
                    Some((a, b)) => 1.0 / combined.ndv_of(a).max(combined.ndv_of(b)),
                    None => RANGE_SEL,
                };
            }
            combined.rows = match kind {
                JoinKind::Inner => cross * sel,
                JoinKind::LeftOuter => (cross * sel).max(l.rows),
                JoinKind::LeftSemi => (cross * sel).min(l.rows),
                JoinKind::LeftAntiSemi => (l.rows - (cross * sel).min(l.rows)).max(0.0),
            };
            combined
        }
        LogicalOp::GbAgg { group_cols, .. } => {
            let child = estimate(&expr.children[0], md)?;
            let rows = if group_cols.is_empty() {
                1.0
            } else {
                group_cols
                    .iter()
                    .map(|c| child.ndv_of(*c))
                    .product::<f64>()
                    .min(child.rows)
                    .max(1.0)
            };
            RoughStats {
                rows,
                ndv: child.ndv,
            }
        }
        LogicalOp::Limit { count, .. } => {
            let child = estimate(&expr.children[0], md)?;
            RoughStats {
                rows: count
                    .map(|c| child.rows.min(c as f64))
                    .unwrap_or(child.rows),
                ndv: child.ndv,
            }
        }
        LogicalOp::SetOp { .. } => {
            let mut rows = 0.0;
            for c in &expr.children {
                rows += estimate(c, md)?.rows;
            }
            RoughStats {
                rows,
                ndv: HashMap::new(),
            }
        }
        LogicalOp::Sequence { .. } => estimate(&expr.children[1], md)?,
        LogicalOp::CteProducer { .. } | LogicalOp::MaxOneRow => estimate(&expr.children[0], md)?,
        LogicalOp::CteConsumer { .. } => RoughStats {
            rows: 1000.0,
            ndv: HashMap::new(),
        },
        LogicalOp::ConstTable { rows, .. } => RoughStats {
            rows: rows.len() as f64,
            ndv: HashMap::new(),
        },
    })
}

fn pred_selectivity(pred: &ScalarExpr, s: &RoughStats) -> f64 {
    let mut sel = 1.0;
    for conj in pred.conjuncts() {
        sel *= match conj {
            ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } => match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::ColRef(c), ScalarExpr::Const(_))
                | (ScalarExpr::Const(_), ScalarExpr::ColRef(c)) => 1.0 / s.ndv_of(*c),
                _ => EQ_SEL.max(1.0 / s.rows.max(1.0)),
            },
            ScalarExpr::Cmp { .. } => RANGE_SEL,
            ScalarExpr::InList { list, .. } => (list.len() as f64 * EQ_SEL).min(1.0),
            // Subqueries etc.: pretend they are moderately selective.
            _ => 0.5,
        };
    }
    sel.clamp(0.0, 1.0)
}

/// `col = col` conjunct columns.
pub fn equi_cols(conj: &ScalarExpr) -> Option<(ColId, ColId)> {
    if let ScalarExpr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = conj
    {
        if let (ScalarExpr::ColRef(a), ScalarExpr::ColRef(b)) = (left.as_ref(), right.as_ref()) {
            return Some((*a, *b));
        }
    }
    None
}
