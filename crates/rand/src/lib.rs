//! Offline shim for the `rand` crate (no crates.io access in the build
//! environment). Provides the slice of the 0.8 API the workspace uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range,
//! gen_ratio, gen_bool}` over integer/float ranges.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — deterministic
//! and statistically solid for data generation and tests, though *not* the
//! ChaCha-based generator of the real crate (sequences differ; all
//! in-repo users only rely on determinism, not on specific streams).

pub mod rngs {
    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> StdRng {
            // splitmix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Core entropy source (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types `Rng::gen` can produce (stand-in for the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as `gen_range` bounds (stand-in for `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing generation methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `num / denom`.
    fn gen_ratio(&mut self, num: u32, denom: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denom > 0 && num <= denom);
        (self.next_u64() % denom as u64) < num as u64
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = r.gen_range(-50..150);
            assert!((-50..150).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn ratio_roughly_matches() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_ratio(3, 100)).count();
        assert!((200..400).contains(&hits), "3% of 10k ≈ 300, got {hits}");
    }
}
