//! Datums: the runtime value representation used by the binder, the
//! statistics subsystem and the execution engine.
//!
//! Orca itself is value-agnostic (it sees metadata ids); our reproduction
//! needs concrete values for constant folding, histogram boundaries and
//! execution. A small closed set of types is enough for the TPC-DS-style
//! workload: integers, doubles, booleans, strings and dates.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Scalar data types understood by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    Bool,
    Int,
    Double,
    Str,
    /// Days since an arbitrary epoch; kept distinct from `Int` so the date
    /// dimension participates in type checking like in TPC-DS.
    Date,
}

impl DataType {
    /// Estimated on-disk / in-flight width in bytes, used by the cost model
    /// and the simulated network.
    pub fn width(&self) -> u64 {
        match self {
            DataType::Bool => 1,
            DataType::Int => 8,
            DataType::Double => 8,
            DataType::Str => 24,
            DataType::Date => 4,
        }
    }

    /// Whether values of this type can be redistributed by hash in the MPP
    /// engine (mirrors `IsRedistributable` in DXL metadata).
    pub fn is_redistributable(&self) -> bool {
        true
    }

    pub fn name(&self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int => "int8",
            DataType::Double => "float8",
            DataType::Str => "text",
            DataType::Date => "date",
        }
    }

    /// Inverse of [`DataType::name`].
    pub fn from_name(s: &str) -> Option<DataType> {
        Some(match s {
            "bool" => DataType::Bool,
            "int8" => DataType::Int,
            "float8" => DataType::Double,
            "text" => DataType::Str,
            "date" => DataType::Date,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value. `Null` is typeless, as in SQL.
#[derive(Debug, Clone)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    Date(i32),
}

impl Datum {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Double(_) => Some(DataType::Double),
            Datum::Str(_) => Some(DataType::Str),
            Datum::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view used by arithmetic and histogram math; strings and
    /// booleans are not numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Double(d) => Some(*d),
            Datum::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            Datum::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown), or when the
    /// operands are incomparable types.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used for sorting rows (NULLs sort last, as in GPDB's
    /// default `NULLS LAST` for ascending order).
    ///
    /// To stay transitive in the presence of cross-type numeric
    /// comparability (`Int`/`Double`/`Date` compare with each other but not
    /// with strings), ordering goes by *comparison class* first, then by
    /// value within the class.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        let (ca, cb) = (self.cmp_class(), other.cmp_class());
        if ca != cb {
            return ca.cmp(&cb);
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (a, b) => {
                let (x, y) = (
                    a.as_f64().expect("numeric class"),
                    b.as_f64().expect("numeric class"),
                );
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Classes of mutually comparable datums; NULLs sort last.
    fn cmp_class(&self) -> u8 {
        match self {
            Datum::Bool(_) => 0,
            Datum::Int(_) | Datum::Double(_) | Datum::Date(_) => 1,
            Datum::Str(_) => 2,
            Datum::Null => 3,
        }
    }

    /// Estimated width in bytes for the cost model.
    pub fn width(&self) -> u64 {
        match self {
            Datum::Null => 1,
            Datum::Str(s) => s.len() as u64 + 4,
            d => d.data_type().map(|t| t.width()).unwrap_or(8),
        }
    }
}

/// Equality is SQL equality *except* that NULL == NULL, so datums can act as
/// hash-table keys (grouping, hashed distribution).
impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Null, _) | (_, Datum::Null) => false,
            (Datum::Bool(a), Datum::Bool(b)) => a == b,
            (Datum::Str(a), Datum::Str(b)) => a == b,
            (Datum::Int(a), Datum::Int(b)) => a == b,
            (Datum::Date(a), Datum::Date(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Eq for Datum {}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int / Double / Date hash through their f64 image so that
            // cross-type equality (Int(1) == Double(1.0)) implies equal
            // hashes.
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Datum::Date(d) => {
                2u8.hash(state);
                (*d as f64).to_bits().hash(state);
            }
            Datum::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Double(d) => write!(f, "{d}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Date(d) => write!(f, "date({d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(d: &Datum) -> u64 {
        let mut s = DefaultHasher::new();
        d.hash(&mut s);
        s.finish()
    }

    #[test]
    fn cross_type_numeric_equality_and_hash() {
        assert_eq!(Datum::Int(3), Datum::Double(3.0));
        assert_eq!(h(&Datum::Int(3)), h(&Datum::Double(3.0)));
        assert_ne!(Datum::Int(3), Datum::Double(3.5));
    }

    #[test]
    fn null_semantics() {
        assert!(Datum::Null.sql_cmp(&Datum::Int(1)).is_none());
        // Hash-key equality treats NULL = NULL.
        assert_eq!(Datum::Null, Datum::Null);
        assert_ne!(Datum::Null, Datum::Int(0));
    }

    #[test]
    fn total_order_nulls_last() {
        let mut v = vec![Datum::Int(2), Datum::Null, Datum::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v, vec![Datum::Int(1), Datum::Int(2), Datum::Null]);
    }

    #[test]
    fn sql_cmp_strings() {
        assert_eq!(
            Datum::Str("a".into()).sql_cmp(&Datum::Str("b".into())),
            Some(Ordering::Less)
        );
        // String vs number is incomparable.
        assert!(Datum::Str("a".into()).sql_cmp(&Datum::Int(1)).is_none());
    }

    #[test]
    fn type_roundtrip() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Double,
            DataType::Str,
            DataType::Date,
        ] {
            assert_eq!(DataType::from_name(t.name()), Some(t));
        }
        assert_eq!(DataType::from_name("blob"), None);
    }
}
