//! Cluster description (§2.1): a master plus N shared-nothing segments
//! connected by an interconnect. Both the cost model and the execution
//! simulator are parameterized by this.

/// Static description of the simulated MPP cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentConfig {
    /// Number of segment instances (excluding the master).
    pub num_segments: usize,
    /// Simulated interconnect bandwidth in bytes per simulated second,
    /// aggregate per segment pair direction.
    pub net_bytes_per_sec: f64,
    /// Simulated per-tuple CPU processing rate (tuples per simulated second
    /// per segment core).
    pub tuples_per_sec: f64,
    /// Per-segment working memory in bytes (drives spill / OOM modelling).
    pub work_mem_bytes: u64,
    /// Whether operators may spill to disk when exceeding `work_mem_bytes`.
    /// The Hadoop engines of §7.3.2 cannot, which is why they OOM.
    pub can_spill: bool,
    /// Cost multiplier applied to spilled work (disk passes).
    pub spill_penalty: f64,
    /// Rows per columnar batch inside the execution kernels (vectorized
    /// operators process one batch at a time).
    pub batch_size: usize,
}

impl SegmentConfig {
    /// The 16-node cluster of §7.2.1 (scaled for simulation).
    pub fn mpp_16() -> SegmentConfig {
        SegmentConfig {
            num_segments: 16,
            ..SegmentConfig::default()
        }
    }

    /// Single-segment configuration: degenerates to a non-distributed
    /// database, useful as a correctness reference.
    pub fn single() -> SegmentConfig {
        SegmentConfig {
            num_segments: 1,
            ..SegmentConfig::default()
        }
    }

    pub fn with_segments(mut self, n: usize) -> SegmentConfig {
        self.num_segments = n;
        self
    }

    pub fn with_work_mem(mut self, bytes: u64) -> SegmentConfig {
        self.work_mem_bytes = bytes;
        self
    }

    pub fn with_spill(mut self, can_spill: bool) -> SegmentConfig {
        self.can_spill = can_spill;
        self
    }

    pub fn with_batch_size(mut self, rows: usize) -> SegmentConfig {
        self.batch_size = rows.max(1);
        self
    }
}

impl Default for SegmentConfig {
    fn default() -> SegmentConfig {
        SegmentConfig {
            num_segments: 8,
            net_bytes_per_sec: 100.0e6,
            tuples_per_sec: 1.0e6,
            work_mem_bytes: 64 << 20,
            can_spill: true,
            spill_penalty: 3.0,
            batch_size: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = SegmentConfig::default()
            .with_segments(4)
            .with_work_mem(1024)
            .with_spill(false)
            .with_batch_size(64);
        assert_eq!(c.num_segments, 4);
        assert_eq!(c.work_mem_bytes, 1024);
        assert!(!c.can_spill);
        assert_eq!(c.batch_size, 64);
        assert_eq!(SegmentConfig::default().batch_size, 1024);
        assert_eq!(SegmentConfig::default().with_batch_size(0).batch_size, 1);
        assert_eq!(SegmentConfig::mpp_16().num_segments, 16);
        assert_eq!(SegmentConfig::single().num_segments, 1);
    }
}
