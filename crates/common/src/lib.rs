//! `orca-common` — foundation types shared by every crate in the Orca
//! reproduction: datums and data types, column / metadata identifiers,
//! error handling, deterministic hashing, and the cluster description.
//!
//! Everything here is deliberately dependency-free so that the crate DAG
//! stays acyclic (see `DESIGN.md` §4).

pub mod datum;
pub mod error;
pub mod hash;
pub mod id;
pub mod segment;

pub use datum::{DataType, Datum};
pub use error::{OrcaError, Result};
pub use id::{ColId, CteId, MdId, SysId};
pub use segment::SegmentConfig;
