//! Deterministic hashing.
//!
//! Two distinct needs:
//! * **Memo duplicate detection** must be stable within a process but need
//!   not be stable across runs — yet determinism across runs makes test
//!   failures reproducible and keeps parallel/serial plan comparisons exact,
//!   so we use a seeded FNV-1a everywhere instead of `RandomState`.
//! * **Hashed data distribution** (the `Redistribute` motion) must agree
//!   between the optimizer's reasoning and the executor's shuffling; both
//!   call [`hash_datum_for_distribution`].

use crate::datum::Datum;
use std::hash::{BuildHasherDefault, Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Drop-in replacement for `RandomState` with deterministic output.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` with deterministic hashing (iteration order is still
/// insertion-history dependent; sort before emitting user-visible output).
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;
/// A `HashSet` with deterministic hashing.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

/// Hash any `Hash` value with FNV-1a; used for memo group-expression
/// fingerprints.
pub fn fnv_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FnvHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// The hash used to place a tuple on a segment under hashed distribution.
/// The optimizer's co-location reasoning and the executor's `Redistribute`
/// motion must use the *same* function, so it lives here.
pub fn hash_datum_for_distribution(d: &Datum) -> u64 {
    fnv_hash(d)
}

/// Map a composite distribution key to a segment in `[0, num_segments)`.
pub fn segment_for_key(key: &[Datum], num_segments: usize) -> usize {
    debug_assert!(num_segments > 0);
    let mut h = FnvHasher::default();
    for d in key {
        d.hash(&mut h);
    }
    (h.finish() % num_segments as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic() {
        assert_eq!(fnv_hash("hello"), fnv_hash("hello"));
        assert_ne!(fnv_hash("hello"), fnv_hash("world"));
    }

    #[test]
    fn equal_datums_hash_to_same_segment() {
        // Int(5) and Double(5.0) are SQL-equal, so they must co-locate.
        let a = segment_for_key(&[Datum::Int(5)], 16);
        let b = segment_for_key(&[Datum::Double(5.0)], 16);
        assert_eq!(a, b);
    }

    #[test]
    fn segments_in_range_and_spread() {
        let n = 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let s = segment_for_key(&[Datum::Int(i)], n);
            assert!(s < n);
            seen.insert(s);
        }
        // 1000 keys over 8 segments should hit every segment.
        assert_eq!(seen.len(), n);
    }
}
