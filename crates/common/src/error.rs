//! Error handling. Mirrors GPOS's `CException` taxonomy at a coarse grain:
//! every subsystem funnels into [`OrcaError`], and the optimizer engine
//! converts unexpected errors into AMPERe dumps (see `orca::amper`).

use std::fmt;

/// Unified error type for the whole workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrcaError {
    /// SQL text could not be tokenized / parsed.
    Parse(String),
    /// Name resolution / type checking failed.
    Bind(String),
    /// A metadata object could not be found or was stale.
    Metadata(String),
    /// DXL (de)serialization failure.
    Dxl(String),
    /// Internal invariant violation inside the optimizer.
    Internal(String),
    /// The optimizer could not produce any plan satisfying the request.
    NoPlan(String),
    /// Optimization aborted by external cancellation.
    Aborted(String),
    /// A deadline expired before the search produced a usable plan. Unlike
    /// [`OrcaError::Aborted`], a timeout is an *expected* outcome under
    /// admission control: callers may degrade to a fallback plan instead of
    /// failing the request.
    Timeout(String),
    /// Execution-time failure (e.g. a malformed slice or missing stream).
    Execution(String),
    /// A memory grant provably cannot fit and the engine cannot spill.
    /// Raised *before* execution starts whenever the bound is provable
    /// (preflight), and as a runtime backstop otherwise, so the service's
    /// degradation ladder can react instead of aborting mid-query.
    OutOfMemory(String),
    /// A network transport failure on the socket interconnect or the
    /// service front-end: connect retries exhausted, a peer died
    /// mid-stream, or a malformed frame arrived. Distinguished from
    /// [`OrcaError::Execution`] so distributed callers can tell "the plan
    /// is wrong" from "the cluster is unhealthy" and retry elsewhere.
    Net(String),
    /// A feature the query needs is unsupported by the engine being driven
    /// (used by the Figure 15 support matrix).
    Unsupported(String),
    /// Injected fault for AMPERe testing (§6.1).
    InjectedFault(String),
}

impl OrcaError {
    /// Short machine-readable category, used in AMPERe dumps.
    pub fn kind(&self) -> &'static str {
        match self {
            OrcaError::Parse(_) => "parse",
            OrcaError::Bind(_) => "bind",
            OrcaError::Metadata(_) => "metadata",
            OrcaError::Dxl(_) => "dxl",
            OrcaError::Internal(_) => "internal",
            OrcaError::NoPlan(_) => "noplan",
            OrcaError::Aborted(_) => "aborted",
            OrcaError::Timeout(_) => "timeout",
            OrcaError::Execution(_) => "execution",
            OrcaError::OutOfMemory(_) => "oom",
            OrcaError::Net(_) => "net",
            OrcaError::Unsupported(_) => "unsupported",
            OrcaError::InjectedFault(_) => "injected",
        }
    }

    pub fn message(&self) -> &str {
        match self {
            OrcaError::Parse(m)
            | OrcaError::Bind(m)
            | OrcaError::Metadata(m)
            | OrcaError::Dxl(m)
            | OrcaError::Internal(m)
            | OrcaError::NoPlan(m)
            | OrcaError::Aborted(m)
            | OrcaError::Timeout(m)
            | OrcaError::Execution(m)
            | OrcaError::OutOfMemory(m)
            | OrcaError::Net(m)
            | OrcaError::Unsupported(m)
            | OrcaError::InjectedFault(m) => m,
        }
    }
}

impl fmt::Display for OrcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for OrcaError {}

pub type Result<T> = std::result::Result<T, OrcaError>;

/// Convenience constructor macro: `err!(Internal, "bad group {}", id)`.
#[macro_export]
macro_rules! err {
    ($kind:ident, $($arg:tt)*) => {
        $crate::error::OrcaError::$kind(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = OrcaError::NoPlan("no valid plan for req #1".into());
        assert_eq!(e.kind(), "noplan");
        assert_eq!(e.to_string(), "noplan: no valid plan for req #1");
    }

    #[test]
    fn macro_builds_variants() {
        let e = err!(Internal, "group {} missing", 7);
        assert_eq!(e, OrcaError::Internal("group 7 missing".into()));
    }
}
