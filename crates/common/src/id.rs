//! Identifiers.
//!
//! * [`ColId`] — a query-wide unique column id handed out by the binder's
//!   column factory (Orca's `CColRef`). All operators refer to columns by
//!   `ColId`; names survive only as debug info.
//! * [`MdId`] — metadata id: `(system, object id, version)` exactly as in
//!   §4.1 of the paper ("composed of a database system identifier, an object
//!   identifier and a version number"). Versions invalidate cached metadata.

use std::fmt;

/// Identifier of the backend database system an [`MdId`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SysId {
    /// Greenplum-style MPP backend (the default in this reproduction).
    Gpdb,
    /// HAWQ / HDFS-backed backend.
    Hawq,
    /// Metadata loaded from a DXL file (AMPERe replay, tests).
    File,
}

impl SysId {
    pub fn name(&self) -> &'static str {
        match self {
            SysId::Gpdb => "GPDB",
            SysId::Hawq => "HAWQ",
            SysId::File => "FILE",
        }
    }

    pub fn from_name(s: &str) -> Option<SysId> {
        Some(match s {
            "GPDB" => SysId::Gpdb,
            "HAWQ" => SysId::Hawq,
            "FILE" => SysId::File,
            _ => return None,
        })
    }
}

/// Metadata id: uniquely identifies a metadata object (table, index, type,
/// operator) across systems and versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MdId {
    pub sysid: SysId,
    pub oid: u64,
    pub version: u32,
}

impl MdId {
    pub const fn new(sysid: SysId, oid: u64, version: u32) -> MdId {
        MdId {
            sysid,
            oid,
            version,
        }
    }

    /// A newer version of the same object (used to test cache invalidation).
    pub fn bump_version(&self) -> MdId {
        MdId {
            version: self.version + 1,
            ..*self
        }
    }

    /// Same object regardless of version.
    pub fn same_object(&self, other: &MdId) -> bool {
        self.sysid == other.sysid && self.oid == other.oid
    }

    /// DXL textual form: `SYS.oid.version`, e.g. `GPDB.1639448.1`.
    pub fn to_dxl(&self) -> String {
        format!("{}.{}.{}", self.sysid.name(), self.oid, self.version)
    }

    pub fn parse_dxl(s: &str) -> Option<MdId> {
        let mut it = s.split('.');
        let sysid = SysId::from_name(it.next()?)?;
        let oid = it.next()?.parse().ok()?;
        let version = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(MdId::new(sysid, oid, version))
    }
}

impl fmt::Display for MdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dxl())
    }
}

/// A query-wide unique column reference id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u32);

impl ColId {
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a common table expression (WITH clause producer/consumer
/// pairing, §7.2.2 "Common Expressions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CteId(pub u32);

impl fmt::Display for CteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cte{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdid_dxl_roundtrip() {
        let id = MdId::new(SysId::Gpdb, 1639448, 1);
        assert_eq!(id.to_dxl(), "GPDB.1639448.1");
        assert_eq!(MdId::parse_dxl(&id.to_dxl()), Some(id));
        assert_eq!(MdId::parse_dxl("GPDB.x.1"), None);
        assert_eq!(MdId::parse_dxl("NOPE.1.1"), None);
        assert_eq!(MdId::parse_dxl("GPDB.1.1.1"), None);
    }

    #[test]
    fn version_bump_same_object() {
        let id = MdId::new(SysId::Hawq, 42, 1);
        let id2 = id.bump_version();
        assert!(id.same_object(&id2));
        assert_ne!(id, id2);
        assert_eq!(id2.version, 2);
    }
}
