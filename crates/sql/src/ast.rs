//! SQL abstract syntax.

use orca_common::Datum;
use orca_expr::scalar::{AggFunc, ArithOp, CmpOp};

/// A full query: optional WITH clause, a set-operation tree of SELECTs,
/// plus query-level ORDER BY / LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRefAst>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRefAst {
    /// base table or CTE reference with optional alias
    Named { name: String, alias: Option<String> },
    /// derived table
    Subquery { query: Box<Query>, alias: String },
    /// `left [LEFT] JOIN right ON cond`
    Join {
        left: Box<TableRefAst>,
        right: Box<TableRefAst>,
        kind: JoinType,
        on: Expr,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    LeftOuter,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `name` or `alias.name`
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Datum),
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_value: Option<Box<Expr>>,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Agg {
        func: AggFunc,
        /// `None` = `count(*)`
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
}
