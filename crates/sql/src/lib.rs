//! `orca-sql` — a SQL frontend for the workload the paper's evaluation
//! needs (TPC-DS-style analytics): SELECT/FROM/WHERE with explicit and
//! implicit joins, GROUP BY/HAVING, ORDER BY/LIMIT/OFFSET, WITH (CTEs),
//! UNION/INTERSECT/EXCEPT, CASE, IN lists, and — crucially for §7.2.2 —
//! `EXISTS` / `IN` / scalar subqueries including correlated ones.
//!
//! The [`binder`] resolves names against an [`orca_catalog::MdProvider`],
//! mints query-wide [`orca_common::ColId`]s in a
//! [`orca_expr::ColumnRegistry`], and emits the [`orca_expr::LogicalExpr`]
//! tree plus query requirements — the same payload a DXL query document
//! carries (Listing 1).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::{bind, BoundQuery};
pub use parser::parse_query;

use orca_catalog::provider::MdProvider;
use orca_common::Result;
use orca_expr::ColumnRegistry;
use std::sync::Arc;

/// One-call convenience: SQL text → bound logical query.
pub fn compile(
    sql: &str,
    provider: &dyn MdProvider,
    registry: &Arc<ColumnRegistry>,
) -> Result<BoundQuery> {
    let ast = parse_query(sql)?;
    bind(&ast, provider, registry)
}
