//! SQL tokenizer.

use orca_common::{OrcaError, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, uppercased for keywords comparison; the
    /// original case is kept for identifiers (we lowercase them — SQL
    /// folds unquoted identifiers).
    Word(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // Line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            b')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            b',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            b'.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            b'*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            b'+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            b'-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            b'/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            b';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            b'=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(OrcaError::Parse("unterminated string literal".into()));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = std::str::from_utf8(&b[start..i]).expect("ascii");
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|_| OrcaError::Parse(format!("bad float '{text}'")))?,
                    ));
                } else {
                    let text = std::str::from_utf8(&b[start..i]).expect("ascii");
                    out.push(Token::Int(text.parse().map_err(|_| {
                        OrcaError::Parse(format!("bad integer '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&b[start..i]).expect("ascii");
                out.push(Token::Word(word.to_ascii_lowercase()));
            }
            other => {
                return Err(OrcaError::Parse(format!(
                    "unexpected character '{}' at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_fold_and_symbols_split() {
        let toks = tokenize("SELECT a.B, 42, 1.5, 'o''brien' FROM t WHERE x<>2 AND y>=3").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Symbol(Sym::Dot));
        assert_eq!(toks[3], Token::Word("b".into()));
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("o'brien".into())));
        assert!(toks.contains(&Token::Symbol(Sym::Ne)));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
    }

    #[test]
    fn comments_skipped_and_errors_reported() {
        let toks = tokenize("select -- comment here\n 1").unwrap();
        assert_eq!(toks.len(), 2);
        assert!(tokenize("select 'oops").is_err());
        assert!(tokenize("select #").is_err());
    }
}
