//! Name resolution and logical-tree construction.
//!
//! The binder resolves table/column names against the metadata provider,
//! mints query-wide `ColId`s in the shared `ColumnRegistry` (Orca's column
//! factory), and produces the `LogicalExpr` tree with subqueries embedded
//! as scalar markers — exactly the representation `orca::preprocess`
//! unnests. Correlated references resolve through a scope chain, so a
//! subquery referencing an enclosing alias simply captures the outer
//! `ColId`.

use crate::ast::{
    self, Expr, JoinType, OrderItem, Query, Select, SelectItem, SetExpr, TableRefAst,
};
use orca_catalog::provider::MdProvider;
use orca_common::{ColId, CteId, DataType, Datum, OrcaError, Result};
use orca_expr::logical::{AggStage, JoinKind, LogicalExpr, LogicalOp, SetOpKind, TableRef};
use orca_expr::props::{OrderSpec, SortKey};
use orca_expr::scalar::ScalarExpr;
use orca_expr::ColumnRegistry;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A bound query, ready for the optimizer (the payload of a DXL query).
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub expr: LogicalExpr,
    pub output_cols: Vec<ColId>,
    pub output_names: Vec<String>,
    /// Query-level ORDER BY (delivered via the root optimization request
    /// when there is no LIMIT; baked into a Limit operator otherwise).
    pub order: OrderSpec,
}

/// Bind a parsed query.
pub fn bind(
    query: &Query,
    provider: &dyn MdProvider,
    registry: &Arc<ColumnRegistry>,
) -> Result<BoundQuery> {
    let binder = Binder {
        provider,
        registry,
        next_cte: AtomicU32::new(1),
    };
    let scope = Scope::root();
    let bound = binder.bind_query(query, &scope)?;
    Ok(BoundQuery {
        expr: bound.expr,
        output_cols: bound.columns.iter().map(|c| c.id).collect(),
        output_names: bound.columns.iter().map(|c| c.name.clone()).collect(),
        order: bound.order,
    })
}

/// One visible column in a scope.
#[derive(Debug, Clone)]
struct BoundCol {
    id: ColId,
    name: String,
}

/// A relation's worth of columns under an alias.
#[derive(Debug, Clone)]
struct RelScope {
    alias: String,
    columns: Vec<BoundCol>,
}

/// Lexical scope chain: the current FROM relations plus the enclosing
/// query's scope (for correlated subqueries).
struct Scope<'a> {
    relations: Vec<RelScope>,
    ctes: Vec<(String, CteBinding)>,
    parent: Option<&'a Scope<'a>>,
}

#[derive(Debug, Clone)]
struct CteBinding {
    id: CteId,
    producer_cols: Vec<ColId>,
    names: Vec<String>,
}

impl<'a> Scope<'a> {
    fn root() -> Scope<'static> {
        Scope {
            relations: Vec::new(),
            ctes: Vec::new(),
            parent: None,
        }
    }

    fn child(&'a self) -> Scope<'a> {
        Scope {
            relations: Vec::new(),
            ctes: Vec::new(),
            parent: Some(self),
        }
    }

    fn find_cte(&self, name: &str) -> Option<&CteBinding> {
        self.ctes
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
            .or_else(|| self.parent.and_then(|p| p.find_cte(name)))
    }

    /// Resolve `qualifier.name` or `name` through the scope chain.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<ColId> {
        let mut matches = Vec::new();
        for rel in &self.relations {
            if let Some(q) = qualifier {
                if rel.alias != q {
                    continue;
                }
            }
            for c in &rel.columns {
                if c.name == name {
                    matches.push(c.id);
                }
            }
        }
        match matches.len() {
            1 => Ok(matches[0]),
            0 => match self.parent {
                Some(p) => p.resolve(qualifier, name),
                None => Err(OrcaError::Bind(format!(
                    "column '{}{}{}' not found",
                    qualifier.unwrap_or(""),
                    if qualifier.is_some() { "." } else { "" },
                    name
                ))),
            },
            _ => Err(OrcaError::Bind(format!("column '{name}' is ambiguous"))),
        }
    }
}

/// A bound relational expression with its visible columns.
struct Bound {
    expr: LogicalExpr,
    columns: Vec<BoundCol>,
    order: OrderSpec,
}

struct Binder<'p> {
    provider: &'p dyn MdProvider,
    registry: &'p Arc<ColumnRegistry>,
    next_cte: AtomicU32,
}

impl Binder<'_> {
    // -----------------------------------------------------------------
    // Query level
    // -----------------------------------------------------------------

    fn bind_query(&self, q: &Query, outer: &Scope<'_>) -> Result<Bound> {
        let mut scope = outer.child();
        // Bind CTEs in order; later CTEs see earlier ones.
        let mut producers: Vec<(CteId, Vec<ColId>, LogicalExpr)> = Vec::new();
        for (name, cq) in &q.ctes {
            let bound = self.bind_query(cq, &scope)?;
            let id = CteId(self.next_cte.fetch_add(1, Ordering::Relaxed));
            let producer_cols: Vec<ColId> = bound.columns.iter().map(|c| c.id).collect();
            scope.ctes.push((
                name.clone(),
                CteBinding {
                    id,
                    producer_cols: producer_cols.clone(),
                    names: bound.columns.iter().map(|c| c.name.clone()).collect(),
                },
            ));
            producers.push((id, producer_cols, bound.expr));
        }

        let mut body = self.bind_set_expr(&q.body, &scope)?;

        // ORDER BY resolves against the output columns (aliases first),
        // then the underlying scope.
        let order = self.bind_order(&q.order_by, &body, &scope)?;
        body.order = order.clone();

        if q.limit.is_some() || q.offset.is_some() {
            body.expr = LogicalExpr::new(
                LogicalOp::Limit {
                    order: order.clone(),
                    offset: q.offset.unwrap_or(0),
                    count: q.limit,
                },
                vec![body.expr],
            );
        }

        // Wrap Sequence nodes for each CTE (inner-most CTE outermost so
        // later producers may consume earlier ones).
        for (id, cols, tree) in producers.into_iter().rev() {
            let producer = LogicalExpr::new(LogicalOp::CteProducer { id, cols }, vec![tree]);
            body.expr = LogicalExpr::new(LogicalOp::Sequence { id }, vec![producer, body.expr]);
        }
        Ok(body)
    }

    fn bind_order(
        &self,
        items: &[OrderItem],
        body: &Bound,
        scope: &Scope<'_>,
    ) -> Result<OrderSpec> {
        let mut keys = Vec::new();
        for item in items {
            let col = match &item.expr {
                Expr::Column {
                    qualifier: None,
                    name,
                } => body
                    .columns
                    .iter()
                    .find(|c| &c.name == name)
                    .map(|c| c.id)
                    .map(Ok)
                    .unwrap_or_else(|| scope.resolve(None, name)),
                Expr::Column {
                    qualifier: Some(q),
                    name,
                } => scope.resolve(Some(q), name),
                Expr::Literal(Datum::Int(i)) => {
                    // ORDER BY ordinal.
                    let idx = (*i as usize)
                        .checked_sub(1)
                        .filter(|i| *i < body.columns.len())
                        .ok_or_else(|| {
                            OrcaError::Bind(format!("ORDER BY position {i} out of range"))
                        })?;
                    Ok(body.columns[idx].id)
                }
                other => Err(OrcaError::Bind(format!(
                    "ORDER BY supports columns and ordinals, got {other:?}"
                ))),
            }?;
            keys.push(SortKey {
                col,
                desc: item.desc,
            });
        }
        Ok(OrderSpec(keys))
    }

    fn bind_set_expr(&self, e: &SetExpr, scope: &Scope<'_>) -> Result<Bound> {
        match e {
            SetExpr::Select(sel) => self.bind_select(sel, scope),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.bind_set_expr(left, scope)?;
                let r = self.bind_set_expr(right, scope)?;
                if l.columns.len() != r.columns.len() {
                    return Err(OrcaError::Bind(format!(
                        "set operation arity mismatch: {} vs {}",
                        l.columns.len(),
                        r.columns.len()
                    )));
                }
                let kind = match (op, all) {
                    (ast::SetOp::Union, true) => SetOpKind::UnionAll,
                    (ast::SetOp::Union, false) => SetOpKind::Union,
                    (ast::SetOp::Intersect, _) => SetOpKind::Intersect,
                    (ast::SetOp::Except, _) => SetOpKind::Except,
                };
                let columns: Vec<BoundCol> = l
                    .columns
                    .iter()
                    .map(|c| BoundCol {
                        id: self.registry.fresh(&c.name, self.registry.dtype(c.id)),
                        name: c.name.clone(),
                    })
                    .collect();
                let expr = LogicalExpr::new(
                    LogicalOp::SetOp {
                        kind,
                        output: columns.iter().map(|c| c.id).collect(),
                        input_cols: vec![
                            l.columns.iter().map(|c| c.id).collect(),
                            r.columns.iter().map(|c| c.id).collect(),
                        ],
                    },
                    vec![l.expr, r.expr],
                );
                Ok(Bound {
                    expr,
                    columns,
                    order: OrderSpec::any(),
                })
            }
        }
    }

    // -----------------------------------------------------------------
    // SELECT
    // -----------------------------------------------------------------

    fn bind_select(&self, sel: &Select, outer: &Scope<'_>) -> Result<Bound> {
        let mut scope = outer.child();
        scope.ctes = Vec::new();

        // FROM: comma-separated refs become a cross-join chain.
        let mut from_expr: Option<LogicalExpr> = None;
        for tr in &sel.from {
            let bound = self.bind_table_ref(tr, &mut scope, outer)?;
            from_expr = Some(match from_expr {
                None => bound,
                Some(prev) => LogicalExpr::new(
                    LogicalOp::Join {
                        kind: JoinKind::Inner,
                        pred: ScalarExpr::Const(Datum::Bool(true)),
                    },
                    vec![prev, bound],
                ),
            });
        }
        let mut expr = from_expr.unwrap_or_else(|| {
            // SELECT without FROM: a one-row const table.
            LogicalExpr::leaf(LogicalOp::ConstTable {
                cols: vec![],
                rows: vec![vec![]],
            })
        });

        // WHERE.
        if let Some(w) = &sel.selection {
            let pred = self.bind_scalar(w, &scope)?;
            expr = LogicalExpr::new(LogicalOp::Select { pred }, vec![expr]);
        }

        // Select list expansion (wildcards first).
        let mut items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for rel in &scope.relations {
                        for c in &rel.columns {
                            items.push((
                                Expr::Column {
                                    qualifier: Some(rel.alias.clone()),
                                    name: c.name.clone(),
                                },
                                Some(c.name.clone()),
                            ));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let rel = scope
                        .relations
                        .iter()
                        .find(|r| &r.alias == q)
                        .ok_or_else(|| OrcaError::Bind(format!("unknown alias '{q}'")))?;
                    for c in &rel.columns {
                        items.push((
                            Expr::Column {
                                qualifier: Some(q.clone()),
                                name: c.name.clone(),
                            },
                            Some(c.name.clone()),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
            }
        }

        // Aggregation?
        let has_agg = !sel.group_by.is_empty()
            || sel.having.is_some()
            || items.iter().any(|(e, _)| contains_agg(e));

        let (expr, columns) = if has_agg {
            self.bind_aggregate_full(sel, &items, expr, &scope)?
        } else {
            // Plain projection.
            let mut columns = Vec::with_capacity(items.len());
            let mut proj: Vec<(ColId, ScalarExpr)> = Vec::with_capacity(items.len());
            for (e, alias) in &items {
                let scalar = self.bind_scalar(e, &scope)?;
                let name = alias.clone().unwrap_or_else(|| derive_name(e));
                let id = match &scalar {
                    ScalarExpr::ColRef(c) => *c,
                    _ => self
                        .registry
                        .fresh(&name, infer_type(&scalar, self.registry)),
                };
                proj.push((id, scalar));
                columns.push(BoundCol { id, name });
            }
            (
                LogicalExpr::new(LogicalOp::Project { exprs: proj }, vec![expr]),
                columns,
            )
        };

        // DISTINCT: group by all output columns.
        let (expr, columns) = if sel.distinct {
            let group_cols: Vec<ColId> = columns.iter().map(|c| c.id).collect();
            (
                LogicalExpr::new(
                    LogicalOp::GbAgg {
                        group_cols,
                        aggs: vec![],
                        stage: AggStage::Single,
                    },
                    vec![expr],
                ),
                columns,
            )
        } else {
            (expr, columns)
        };

        Ok(Bound {
            expr,
            columns,
            order: OrderSpec::any(),
        })
    }

    /// Grouped aggregation: GbAgg over the input, HAVING as a Select above
    /// it, then a Project computing the final select-list expressions from
    /// group columns and aggregate outputs.
    fn bind_aggregate_full(
        &self,
        sel: &Select,
        items: &[(Expr, Option<String>)],
        input: LogicalExpr,
        scope: &Scope<'_>,
    ) -> Result<(LogicalExpr, Vec<BoundCol>)> {
        // Group columns must be plain column references.
        let mut group_cols = Vec::new();
        for g in &sel.group_by {
            match self.bind_scalar(g, scope)? {
                ScalarExpr::ColRef(c) => group_cols.push(c),
                other => {
                    return Err(OrcaError::Bind(format!(
                        "GROUP BY supports plain columns, got {other}"
                    )))
                }
            }
        }
        // Collect aggregate calls from select list + HAVING; replace each
        // with a fresh output column.
        let mut aggs: Vec<(ColId, ScalarExpr)> = Vec::new();
        let mut bind_with_agg = |e: &Expr| -> Result<ScalarExpr> {
            let scalar = self.bind_scalar(e, scope)?;
            Ok(self.extract_aggs(scalar, &mut aggs))
        };
        let mut final_exprs: Vec<(ScalarExpr, String)> = Vec::new();
        for (e, alias) in items {
            let rewritten = bind_with_agg(e)?;
            final_exprs.push((rewritten, alias.clone().unwrap_or_else(|| derive_name(e))));
        }
        let having = sel.having.as_ref().map(&mut bind_with_agg).transpose()?;

        let mut tree = LogicalExpr::new(
            LogicalOp::GbAgg {
                group_cols: group_cols.clone(),
                aggs,
                stage: AggStage::Single,
            },
            vec![input],
        );
        if let Some(h) = having {
            tree = LogicalExpr::new(LogicalOp::Select { pred: h }, vec![tree]);
        }
        // Final projection.
        let mut columns = Vec::with_capacity(final_exprs.len());
        let mut proj = Vec::with_capacity(final_exprs.len());
        for (scalar, name) in final_exprs {
            let id = match &scalar {
                ScalarExpr::ColRef(c) => *c,
                _ => self
                    .registry
                    .fresh(&name, infer_type(&scalar, self.registry)),
            };
            proj.push((id, scalar));
            columns.push(BoundCol { id, name });
        }
        Ok((
            LogicalExpr::new(LogicalOp::Project { exprs: proj }, vec![tree]),
            columns,
        ))
    }

    /// Replace aggregate calls in a bound scalar with references to fresh
    /// aggregate output columns, appending them to `aggs` (deduplicated).
    fn extract_aggs(&self, e: ScalarExpr, aggs: &mut Vec<(ColId, ScalarExpr)>) -> ScalarExpr {
        match e {
            ScalarExpr::Agg { .. } => {
                if let Some((id, _)) = aggs.iter().find(|(_, a)| *a == e) {
                    return ScalarExpr::ColRef(*id);
                }
                let ScalarExpr::Agg { func, .. } = &e else {
                    unreachable!()
                };
                let id = self.registry.fresh(
                    func.name(),
                    match func {
                        orca_expr::scalar::AggFunc::Avg => DataType::Double,
                        orca_expr::scalar::AggFunc::Count => DataType::Int,
                        _ => DataType::Int,
                    },
                );
                aggs.push((id, e));
                ScalarExpr::ColRef(id)
            }
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op,
                left: Box::new(self.extract_aggs(*left, aggs)),
                right: Box::new(self.extract_aggs(*right, aggs)),
            },
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op,
                left: Box::new(self.extract_aggs(*left, aggs)),
                right: Box::new(self.extract_aggs(*right, aggs)),
            },
            ScalarExpr::And(v) => {
                ScalarExpr::And(v.into_iter().map(|x| self.extract_aggs(x, aggs)).collect())
            }
            ScalarExpr::Or(v) => {
                ScalarExpr::Or(v.into_iter().map(|x| self.extract_aggs(x, aggs)).collect())
            }
            ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(self.extract_aggs(*x, aggs))),
            ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(self.extract_aggs(*x, aggs))),
            ScalarExpr::Case {
                branches,
                else_value,
            } => ScalarExpr::Case {
                branches: branches
                    .into_iter()
                    .map(|(c, v)| (self.extract_aggs(c, aggs), self.extract_aggs(v, aggs)))
                    .collect(),
                else_value: else_value.map(|x| Box::new(self.extract_aggs(*x, aggs))),
            },
            other => other,
        }
    }

    // -----------------------------------------------------------------
    // FROM items
    // -----------------------------------------------------------------

    fn bind_table_ref(
        &self,
        tr: &TableRefAst,
        scope: &mut Scope<'_>,
        outer: &Scope<'_>,
    ) -> Result<LogicalExpr> {
        match tr {
            TableRefAst::Named { name, alias } => {
                let alias = alias.clone().unwrap_or_else(|| name.clone());
                // CTE reference?
                if let Some(cte) = scope
                    .find_cte(name)
                    .cloned()
                    .or_else(|| outer.find_cte(name).cloned())
                {
                    let cols: Vec<ColId> = cte
                        .names
                        .iter()
                        .zip(&cte.producer_cols)
                        .map(|(n, p)| self.registry.fresh(n, self.registry.dtype(*p)))
                        .collect();
                    scope.relations.push(RelScope {
                        alias,
                        columns: cte
                            .names
                            .iter()
                            .zip(&cols)
                            .map(|(n, c)| BoundCol {
                                id: *c,
                                name: n.clone(),
                            })
                            .collect(),
                    });
                    return Ok(LogicalExpr::leaf(LogicalOp::CteConsumer {
                        id: cte.id,
                        cols,
                        producer_cols: cte.producer_cols.clone(),
                    }));
                }
                // Base table.
                let mdid = self
                    .provider
                    .table_by_name(name)
                    .ok_or_else(|| OrcaError::Bind(format!("unknown table '{name}'")))?;
                let table = self.provider.table(mdid)?;
                let cols: Vec<ColId> = table
                    .columns
                    .iter()
                    .map(|c| self.registry.fresh(&format!("{alias}.{}", c.name), c.dtype))
                    .collect();
                scope.relations.push(RelScope {
                    alias,
                    columns: table
                        .columns
                        .iter()
                        .zip(&cols)
                        .map(|(c, id)| BoundCol {
                            id: *id,
                            name: c.name.clone(),
                        })
                        .collect(),
                });
                Ok(LogicalExpr::leaf(LogicalOp::Get {
                    table: TableRef(table),
                    cols,
                    parts: None,
                }))
            }
            TableRefAst::Subquery { query, alias } => {
                let bound = self.bind_query(query, outer)?;
                scope.relations.push(RelScope {
                    alias: alias.clone(),
                    columns: bound.columns.clone(),
                });
                Ok(bound.expr)
            }
            TableRefAst::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.bind_table_ref(left, scope, outer)?;
                let r = self.bind_table_ref(right, scope, outer)?;
                let pred = self.bind_scalar(on, scope)?;
                Ok(LogicalExpr::new(
                    LogicalOp::Join {
                        kind: match kind {
                            JoinType::Inner => JoinKind::Inner,
                            JoinType::LeftOuter => JoinKind::LeftOuter,
                        },
                        pred,
                    },
                    vec![l, r],
                ))
            }
        }
    }

    // -----------------------------------------------------------------
    // Scalars
    // -----------------------------------------------------------------

    fn bind_scalar(&self, e: &Expr, scope: &Scope<'_>) -> Result<ScalarExpr> {
        Ok(match e {
            Expr::Column { qualifier, name } => {
                ScalarExpr::ColRef(scope.resolve(qualifier.as_deref(), name)?)
            }
            Expr::Literal(d) => ScalarExpr::Const(d.clone()),
            Expr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(self.bind_scalar(left, scope)?),
                right: Box::new(self.bind_scalar(right, scope)?),
            },
            Expr::And(l, r) => ScalarExpr::and(vec![
                self.bind_scalar(l, scope)?,
                self.bind_scalar(r, scope)?,
            ]),
            Expr::Or(l, r) => ScalarExpr::Or(vec![
                self.bind_scalar(l, scope)?,
                self.bind_scalar(r, scope)?,
            ]),
            Expr::Not(x) => match x.as_ref() {
                // NOT EXISTS sugar.
                Expr::Exists { query, negated } => {
                    let sub = self.bind_subquery(query, scope)?;
                    ScalarExpr::Exists {
                        negated: !negated,
                        subquery: Box::new(sub.expr),
                    }
                }
                _ => ScalarExpr::Not(Box::new(self.bind_scalar(x, scope)?)),
            },
            Expr::IsNull { expr, negated } => {
                let inner = ScalarExpr::IsNull(Box::new(self.bind_scalar(expr, scope)?));
                if *negated {
                    ScalarExpr::Not(Box::new(inner))
                } else {
                    inner
                }
            }
            Expr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Box::new(self.bind_scalar(left, scope)?),
                right: Box::new(self.bind_scalar(right, scope)?),
            },
            Expr::Case {
                branches,
                else_value,
            } => ScalarExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.bind_scalar(c, scope)?, self.bind_scalar(v, scope)?)))
                    .collect::<Result<_>>()?,
                else_value: else_value
                    .as_ref()
                    .map(|x| Ok::<_, OrcaError>(Box::new(self.bind_scalar(x, scope)?)))
                    .transpose()?,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(self.bind_scalar(expr, scope)?),
                list: list
                    .iter()
                    .map(|x| self.bind_scalar(x, scope))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_scalar(expr, scope)?;
                let both = ScalarExpr::and(vec![
                    ScalarExpr::cmp(
                        orca_expr::scalar::CmpOp::Ge,
                        e.clone(),
                        self.bind_scalar(low, scope)?,
                    ),
                    ScalarExpr::cmp(
                        orca_expr::scalar::CmpOp::Le,
                        e,
                        self.bind_scalar(high, scope)?,
                    ),
                ]);
                if *negated {
                    ScalarExpr::Not(Box::new(both))
                } else {
                    both
                }
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => ScalarExpr::Agg {
                func: *func,
                arg: arg
                    .as_ref()
                    .map(|a| Ok::<_, OrcaError>(Box::new(self.bind_scalar(a, scope)?)))
                    .transpose()?,
                distinct: *distinct,
            },
            Expr::Exists { query, negated } => {
                let sub = self.bind_subquery(query, scope)?;
                ScalarExpr::Exists {
                    negated: *negated,
                    subquery: Box::new(sub.expr),
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let sub = self.bind_subquery(query, scope)?;
                if sub.columns.len() != 1 {
                    return Err(OrcaError::Bind(format!(
                        "IN subquery must return one column, got {}",
                        sub.columns.len()
                    )));
                }
                ScalarExpr::InSubquery {
                    expr: Box::new(self.bind_scalar(expr, scope)?),
                    subquery_col: sub.columns[0].id,
                    subquery: Box::new(sub.expr),
                    negated: *negated,
                }
            }
            Expr::ScalarSubquery(query) => {
                let sub = self.bind_subquery(query, scope)?;
                if sub.columns.len() != 1 {
                    return Err(OrcaError::Bind(format!(
                        "scalar subquery must return one column, got {}",
                        sub.columns.len()
                    )));
                }
                ScalarExpr::ScalarSubquery {
                    subquery_col: sub.columns[0].id,
                    subquery: Box::new(sub.expr),
                }
            }
        })
    }

    fn bind_subquery(&self, q: &Query, scope: &Scope<'_>) -> Result<Bound> {
        self.bind_query(q, scope)
    }
}

fn contains_agg(e: &Expr) -> bool {
    match e {
        Expr::Agg { .. } => true,
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            contains_agg(left) || contains_agg(right)
        }
        Expr::And(l, r) | Expr::Or(l, r) => contains_agg(l) || contains_agg(r),
        Expr::Not(x) => contains_agg(x),
        Expr::IsNull { expr, .. } => contains_agg(expr),
        Expr::Case {
            branches,
            else_value,
        } => {
            branches
                .iter()
                .any(|(c, v)| contains_agg(c) || contains_agg(v))
                || else_value.as_ref().is_some_and(|x| contains_agg(x))
        }
        Expr::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        Expr::Between {
            expr, low, high, ..
        } => contains_agg(expr) || contains_agg(low) || contains_agg(high),
        _ => false,
    }
}

fn derive_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Agg { func, .. } => func.name().to_string(),
        _ => "expr".to_string(),
    }
}

fn infer_type(e: &ScalarExpr, registry: &ColumnRegistry) -> DataType {
    match e {
        ScalarExpr::ColRef(c) => registry.dtype(*c),
        ScalarExpr::Const(d) => d.data_type().unwrap_or(DataType::Int),
        ScalarExpr::Cmp { .. }
        | ScalarExpr::And(_)
        | ScalarExpr::Or(_)
        | ScalarExpr::Not(_)
        | ScalarExpr::IsNull(_) => DataType::Bool,
        ScalarExpr::Arith { left, right, .. } => {
            if infer_type(left, registry) == DataType::Double
                || infer_type(right, registry) == DataType::Double
            {
                DataType::Double
            } else {
                DataType::Int
            }
        }
        ScalarExpr::Case {
            branches,
            else_value,
        } => branches
            .first()
            .map(|(_, v)| infer_type(v, registry))
            .or_else(|| else_value.as_ref().map(|x| infer_type(x, registry)))
            .unwrap_or(DataType::Int),
        ScalarExpr::InList { .. } => DataType::Bool,
        ScalarExpr::Agg { func, .. } => match func {
            orca_expr::scalar::AggFunc::Avg => DataType::Double,
            _ => DataType::Int,
        },
        ScalarExpr::ScalarSubquery { subquery_col, .. } => registry.dtype(*subquery_col),
        _ => DataType::Bool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use orca_catalog::{ColumnMeta, Distribution, MemoryProvider};
    use orca_expr::pretty::explain_logical;

    fn provider() -> MemoryProvider {
        let p = MemoryProvider::new();
        p.register(
            "orders",
            vec![
                ColumnMeta::new("id", DataType::Int).not_null(),
                ColumnMeta::new("cust_id", DataType::Int).not_null(),
                ColumnMeta::new("amount", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        p.register(
            "customers",
            vec![
                ColumnMeta::new("id", DataType::Int).not_null(),
                ColumnMeta::new("name", DataType::Str),
            ],
            Distribution::Hashed(vec![0]),
        );
        p
    }

    fn bind_sql(sql: &str) -> Result<BoundQuery> {
        let p = provider();
        let registry = Arc::new(ColumnRegistry::new());
        let q = parse_query(sql)?;
        bind(&q, &p, &registry)
    }

    #[test]
    fn resolves_qualified_and_unqualified_columns() {
        let b = bind_sql("SELECT o.id, name FROM orders o JOIN customers c ON o.cust_id = c.id")
            .unwrap();
        assert_eq!(b.output_names, vec!["id", "name"]);
        assert_eq!(b.output_cols.len(), 2);
        let text = explain_logical(&b.expr);
        assert!(text.contains("InnerJoin"), "{text}");
        // Ambiguity is rejected.
        let err =
            bind_sql("SELECT id FROM orders o JOIN customers c ON o.cust_id = c.id").unwrap_err();
        assert!(err.message().contains("ambiguous"), "{err}");
        // Unknown names are rejected.
        assert_eq!(
            bind_sql("SELECT nope FROM orders").unwrap_err().kind(),
            "bind"
        );
        assert_eq!(bind_sql("SELECT x FROM nope").unwrap_err().kind(), "bind");
    }

    #[test]
    fn aggregation_with_having_builds_gbagg_select_project() {
        let b = bind_sql(
            "SELECT cust_id, sum(amount) AS total, count(*) \
             FROM orders GROUP BY cust_id HAVING sum(amount) > 100",
        )
        .unwrap();
        let text = explain_logical(&b.expr);
        assert!(text.contains("GbAgg"), "{text}");
        assert!(text.contains("Select"), "{text}");
        assert!(text.contains("Project"), "{text}");
        assert_eq!(b.output_names, vec!["cust_id", "total", "count"]);
        // sum(amount) appears once even though used in HAVING too.
        let LogicalOp::Project { .. } = &b.expr.op else {
            panic!("projection on top")
        };
    }

    #[test]
    fn distinct_becomes_group_by_all() {
        let b = bind_sql("SELECT DISTINCT cust_id FROM orders").unwrap();
        let LogicalOp::GbAgg {
            group_cols, aggs, ..
        } = &b.expr.op
        else {
            panic!("distinct should aggregate")
        };
        assert_eq!(group_cols.len(), 1);
        assert!(aggs.is_empty());
    }

    #[test]
    fn correlated_subquery_captures_outer_col() {
        let b = bind_sql(
            "SELECT id FROM orders o WHERE EXISTS \
             (SELECT 1 FROM customers c WHERE c.id = o.cust_id)",
        )
        .unwrap();
        assert!(b.expr.has_subquery());
        // The subquery references o.cust_id from the outer scope.
        let mut found = false;
        b.expr.op.for_each_scalar(&mut |_| {});
        fn find_exists(e: &LogicalExpr, found: &mut bool) {
            e.op.for_each_scalar(&mut |s| {
                if let ScalarExpr::Exists { subquery, .. } = s {
                    *found |= !subquery.outer_refs().is_empty();
                }
            });
            for c in &e.children {
                find_exists(c, found);
            }
        }
        find_exists(&b.expr, &mut found);
        assert!(found, "EXISTS should be correlated");
    }

    #[test]
    fn cte_produces_sequence_and_consumers() {
        let b = bind_sql(
            "WITH big AS (SELECT cust_id, amount FROM orders WHERE amount > 10) \
             SELECT a.cust_id FROM big a, big b WHERE a.cust_id = b.cust_id",
        )
        .unwrap();
        let text = explain_logical(&b.expr);
        assert!(text.contains("Sequence"), "{text}");
        assert!(text.matches("CTEConsumer").count() == 2, "{text}");
        // Unused CTEs still bind (the Sequence wraps regardless; the
        // optimizer's preprocessing drops it).
        let b2 = bind_sql("WITH unused AS (SELECT id FROM orders) SELECT id FROM orders").unwrap();
        assert!(explain_logical(&b2.expr).contains("Sequence"));
    }

    #[test]
    fn order_by_alias_ordinal_and_limit() {
        let b = bind_sql(
            "SELECT cust_id, sum(amount) AS total FROM orders \
             GROUP BY cust_id ORDER BY total DESC, 1 LIMIT 10",
        )
        .unwrap();
        assert_eq!(b.order.0.len(), 2);
        assert!(b.order.0[0].desc);
        assert_eq!(b.order.0[1].col, b.output_cols[0]);
        let LogicalOp::Limit { count, .. } = &b.expr.op else {
            panic!("LIMIT wraps the tree")
        };
        assert_eq!(*count, Some(10));
    }

    #[test]
    fn set_op_binds_with_fresh_outputs() {
        let b = bind_sql("SELECT id FROM orders UNION SELECT id FROM customers").unwrap();
        let LogicalOp::SetOp {
            kind,
            output,
            input_cols,
        } = &b.expr.op
        else {
            panic!("set op root")
        };
        assert_eq!(*kind, SetOpKind::Union);
        assert_eq!(output.len(), 1);
        assert_eq!(input_cols.len(), 2);
        // Arity mismatch rejected.
        assert!(bind_sql("SELECT id, cust_id FROM orders UNION SELECT id FROM customers").is_err());
    }

    #[test]
    fn between_and_case_and_wildcards() {
        let b = bind_sql(
            "SELECT *, CASE WHEN amount BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END AS bucket \
             FROM orders",
        )
        .unwrap();
        assert_eq!(b.output_names, vec!["id", "cust_id", "amount", "bucket"]);
    }
}
