//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};
use orca_common::{Datum, OrcaError, Result};
use orca_expr::scalar::{AggFunc, ArithOp, CmpOp};

/// Parse one SQL query (optionally `;`-terminated).
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_symbol(Sym::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> OrcaError {
        OrcaError::Parse(format!(
            "{msg} near token {:?} (#{})",
            self.tokens.get(self.pos),
            self.pos
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn peek_symbol(&self, s: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(x)) if *x == s)
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Word(w)) if !is_reserved(w) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // -----------------------------------------------------------------
    // Query / set operations
    // -----------------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                self.expect_kw("as")?;
                self.expect_symbol(Sym::LParen)?;
                let q = self.query()?;
                self.expect_symbol(Sym::RParen)?;
                ctes.push((name, q));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("limit") {
            limit = Some(self.unsigned()?);
        }
        if self.eat_kw("offset") {
            offset = Some(self.unsigned()?);
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned(&mut self) -> Result<u64> {
        match self.peek() {
            Some(Token::Int(i)) if *i >= 0 => {
                let v = *i as u64;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err("expected non-negative integer")),
        }
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_term()?;
        loop {
            let op = if self.peek_kw("union") {
                SetOp::Union
            } else if self.peek_kw("intersect") {
                SetOp::Intersect
            } else if self.peek_kw("except") {
                SetOp::Except
            } else {
                return Ok(left);
            };
            self.pos += 1;
            let all = self.eat_kw("all");
            let right = self.set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn set_term(&mut self) -> Result<SetExpr> {
        if self.eat_symbol(Sym::LParen) {
            let e = self.set_expr()?;
            self.expect_symbol(Sym::RParen)?;
            Ok(e)
        } else {
            Ok(SetExpr::Select(Box::new(self.select()?)))
        }
    }

    // -----------------------------------------------------------------
    // SELECT
    // -----------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* pattern
        if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w)
                && matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol(Sym::Dot)))
                && matches!(
                    self.tokens.get(self.pos + 2),
                    Some(Token::Symbol(Sym::Star))
                )
            {
                let q = w.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w) {
                let a = w.clone();
                self.pos += 1;
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRefAst> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.peek_kw("join") || self.peek_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinType::Inner
            } else if self.peek_kw("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinType::LeftOuter
            } else {
                return Ok(left);
            };
            let right = self.table_factor()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = TableRefAst::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
    }

    fn table_factor(&mut self) -> Result<TableRefAst> {
        if self.eat_symbol(Sym::LParen) {
            let q = self.query()?;
            self.expect_symbol(Sym::RParen)?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableRefAst::Subquery {
                query: Box::new(q),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w) {
                let a = w.clone();
                self.pos += 1;
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRefAst::Named { name, alias })
    }

    // -----------------------------------------------------------------
    // Expressions (precedence climbing)
    // -----------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_symbol(Sym::LParen)?;
            if self.peek_kw("select") || self.peek_kw("with") {
                let q = self.query()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => CmpOp::Eq,
            Some(Token::Symbol(Sym::Ne)) => CmpOp::Ne,
            Some(Token::Symbol(Sym::Lt)) => CmpOp::Lt,
            Some(Token::Symbol(Sym::Le)) => CmpOp::Le,
            Some(Token::Symbol(Sym::Gt)) => CmpOp::Gt,
            Some(Token::Symbol(Sym::Ge)) => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol(Sym::Plus) {
                ArithOp::Add
            } else if self.eat_symbol(Sym::Minus) {
                ArithOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol(Sym::Star) {
                ArithOp::Mul
            } else if self.eat_symbol(Sym::Slash) {
                ArithOp::Div
            } else {
                return Ok(left);
            };
            let right = self.unary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Datum::Int(i)) => Expr::Literal(Datum::Int(-i)),
                Expr::Literal(Datum::Double(d)) => Expr::Literal(Datum::Double(-d)),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(Expr::Literal(Datum::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Double(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Datum::Str(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_kw("select") || self.peek_kw("with") {
                    let q = self.query()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) => {
                match w.as_str() {
                    "true" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Datum::Bool(true)));
                    }
                    "false" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Datum::Bool(false)));
                    }
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Datum::Null));
                    }
                    "date" => {
                        // date <int>: our workload's date literal.
                        if let Some(Token::Int(_)) = self.tokens.get(self.pos + 1) {
                            self.pos += 1;
                            let v = self.unsigned()? as i32;
                            return Ok(Expr::Literal(Datum::Date(v)));
                        }
                    }
                    "case" => return self.case_expr(),
                    "exists" => {
                        self.pos += 1;
                        self.expect_symbol(Sym::LParen)?;
                        let q = self.query()?;
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Exists {
                            query: Box::new(q),
                            negated: false,
                        });
                    }
                    "count" | "sum" | "min" | "max" | "avg" => {
                        if matches!(
                            self.tokens.get(self.pos + 1),
                            Some(Token::Symbol(Sym::LParen))
                        ) {
                            return self.agg_call(&w);
                        }
                    }
                    _ => {}
                }
                if is_reserved(&w) {
                    return Err(self.err("unexpected keyword in expression"));
                }
                self.pos += 1;
                if self.eat_symbol(Sym::Dot) {
                    let name = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(w),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: w,
                    })
                }
            }
            _ => Err(self.err("expected expression")),
        }
    }

    fn agg_call(&mut self, name: &str) -> Result<Expr> {
        let func = match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => unreachable!("checked by caller"),
        };
        self.pos += 1; // function name
        self.expect_symbol(Sym::LParen)?;
        if self.eat_symbol(Sym::Star) {
            self.expect_symbol(Sym::RParen)?;
            if func != AggFunc::Count {
                return Err(self.err("only count(*) takes '*'"));
            }
            return Ok(Expr::Agg {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_kw("distinct");
        let arg = self.expr()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(Expr::Agg {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_value = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            branches,
            else_value,
        })
    }
}

fn is_reserved(w: &str) -> bool {
    matches!(
        w,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "limit"
            | "offset"
            | "join"
            | "inner"
            | "left"
            | "outer"
            | "on"
            | "and"
            | "or"
            | "not"
            | "in"
            | "is"
            | "null"
            | "between"
            | "exists"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "union"
            | "intersect"
            | "except"
            | "all"
            | "distinct"
            | "with"
            | "as"
            | "asc"
            | "desc"
            | "true"
            | "false"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_shape() {
        let q = parse_query(
            "WITH top AS (SELECT a FROM t LIMIT 5) \
             SELECT x.a, count(*) AS n FROM top x, s \
             WHERE x.a = s.b AND s.c BETWEEN 1 AND 10 \
             GROUP BY x.a HAVING count(*) > 2 ORDER BY n DESC LIMIT 3 OFFSET 1;",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 1);
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.offset, Some(1));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
    }

    #[test]
    fn joins_and_subqueries() {
        let q = parse_query(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y \
             WHERE EXISTS (SELECT 1 FROM d WHERE d.k = a.x) \
               AND a.v NOT IN (SELECT v FROM e) \
               AND a.w > (SELECT max(w) FROM f WHERE f.k = a.x)",
        )
        .unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert!(matches!(&sel.from[0], TableRefAst::Join { .. }));
        let w = sel.selection.as_ref().unwrap();
        // AND tree with Exists / InSubquery / Cmp(ScalarSubquery).
        let text = format!("{w:?}");
        assert!(text.contains("Exists"));
        assert!(text.contains("InSubquery"));
        assert!(text.contains("ScalarSubquery"));
    }

    #[test]
    fn set_ops_and_case() {
        let q = parse_query(
            "SELECT a FROM t UNION ALL SELECT b FROM s \
             INTERSECT SELECT CASE WHEN c > 0 THEN 1 ELSE 0 END FROM u",
        )
        .unwrap();
        let SetExpr::SetOp { op, all, .. } = &q.body else {
            panic!()
        };
        assert_eq!(*op, SetOp::Intersect);
        assert!(!all);
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT a + b * 2 - c FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        // a + (b*2) - c
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        let text = format!("{expr:?}");
        assert!(text.starts_with("Arith { op: Sub"));
        // OR(x=1, AND(y=2, z=3))
        let w = format!("{:?}", sel.selection.as_ref().unwrap());
        assert!(w.starts_with("Or("));
    }

    #[test]
    fn errors_are_parse_kind() {
        for bad in [
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT sum(*) FROM t",
            "SELECT a FROM t GROUP",
            "SELECT a a a FROM t",
        ] {
            let e = parse_query(bad).unwrap_err();
            assert_eq!(e.kind(), "parse", "{bad}");
        }
    }

    #[test]
    fn derived_table_and_qualified_wildcard() {
        let q = parse_query("SELECT x.*, y.a FROM (SELECT a FROM t) AS x, s AS y").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert!(matches!(&sel.items[0], SelectItem::QualifiedWildcard(q) if q == "x"));
        assert!(matches!(&sel.from[0], TableRefAst::Subquery { alias, .. } if alias == "x"));
    }
}
