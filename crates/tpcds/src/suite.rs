//! The 111-instance query suite (§7.2.2: "We generated 111 queries out of
//! the 99 templates of TPC-DS").

use crate::queries::templates;
use orca_planner::QueryFeature;

/// One benchmark query instance.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// `q1`..`q111`, plus the originating template name.
    pub id: String,
    pub template: &'static str,
    pub sql: String,
    pub features: Vec<QueryFeature>,
}

/// Expand every template into its parameterized instances.
pub fn suite() -> Vec<SuiteQuery> {
    let mut out = Vec::with_capacity(111);
    let mut n = 0usize;
    for t in templates() {
        for i in 0..t.count {
            n += 1;
            out.push(SuiteQuery {
                id: format!("q{n}"),
                template: t.name,
                sql: (t.sql)(i),
                features: t.features.to_vec(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_planner::EngineProfile;

    #[test]
    fn suite_has_111_instances() {
        let s = suite();
        assert_eq!(s.len(), 111);
        assert_eq!(s[0].id, "q1");
        assert_eq!(s[110].id, "q111");
    }

    /// The Figure 15 support counts: HAWQ 111, Impala 31, Stinger 19,
    /// Presto 12.
    #[test]
    fn support_counts_match_figure15() {
        let s = suite();
        let count = |p: &EngineProfile| s.iter().filter(|q| p.supports_all(&q.features)).count();
        assert_eq!(count(&EngineProfile::hawq()), 111);
        assert_eq!(count(&EngineProfile::impala()), 31);
        assert_eq!(count(&EngineProfile::stinger()), 19);
        assert_eq!(count(&EngineProfile::presto()), 12);
    }

    /// Every query binds against the generated catalog.
    #[test]
    fn all_queries_bind() {
        let (provider, _db) =
            crate::build_catalog(0.02, orca_common::SegmentConfig::default().with_segments(2));
        let registry = std::sync::Arc::new(orca_expr::ColumnRegistry::new());
        for q in suite() {
            let bound = orca_sql::compile(&q.sql, provider.as_ref(), &registry);
            assert!(
                bound.is_ok(),
                "{} failed to bind: {:?}\n{}",
                q.id,
                bound.err(),
                q.sql
            );
        }
    }
}
