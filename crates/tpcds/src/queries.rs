//! The query templates behind the 111-instance suite.
//!
//! Hand-written TPC-DS-style analytics over the 25-table schema, with the
//! same *feature mix* the paper's evaluation turns on (DESIGN.md §2):
//! star joins, multi-fact joins, correlated `EXISTS`/`IN`/scalar
//! subqueries, WITH clauses, set operations, CASE reporting, outer joins
//! and date-range scans benefitting from partition elimination. Each
//! template is tagged with the SQL features it requires, which drives the
//! Figure 15 support matrix against the engine profiles of
//! `orca_planner::rivals`.

use orca_planner::QueryFeature;

/// One template: generates `count` parameterized instances.
pub struct Template {
    pub name: &'static str,
    pub count: usize,
    pub features: &'static [QueryFeature],
    pub sql: fn(usize) -> String,
}

use QueryFeature::*;

/// Rotate helpers for parameterization.
fn date_lo(i: usize) -> i64 {
    ((i * 53) % 20) as i64 * 30
}

fn category(i: usize) -> &'static str {
    ["Books", "Music", "Sports", "Home", "Shoes", "Electronics"][i % 6]
}

fn state(i: usize) -> &'static str {
    ["CA", "TX", "NY", "WA", "OR", "FL"][i % 6]
}

pub fn templates() -> Vec<Template> {
    vec![
        // =========================================================
        // Group A (12): explicit joins, LIMIT — supported everywhere.
        // =========================================================
        Template {
            name: "star_explicit",
            count: 6,
            features: &[],
            sql: |i| {
                let lo = date_lo(i);
                format!(
                    "SELECT i.i_brand_id, sum(ss.ss_sales_price) AS total \
                     FROM store_sales ss \
                     JOIN item i ON ss.ss_item_sk = i.i_item_sk \
                     JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk \
                     WHERE d.d_date_sk >= {lo} AND d.d_date_sk < {} \
                     GROUP BY i.i_brand_id ORDER BY total DESC LIMIT 20",
                    lo + 60
                )
            },
        },
        Template {
            name: "web_by_site",
            count: 3,
            features: &[],
            sql: |i| {
                format!(
                    "SELECT w.web_site_sk, count(*) AS cnt, sum(ws.ws_net_profit) AS profit \
                     FROM web_sales ws \
                     JOIN web_site w ON ws.ws_web_site_sk = w.web_site_sk \
                     WHERE ws.ws_quantity > {} \
                     GROUP BY w.web_site_sk ORDER BY profit LIMIT 10",
                    10 + (i % 5) * 10
                )
            },
        },
        Template {
            name: "catalog_promo",
            count: 3,
            features: &[],
            sql: |i| {
                format!(
                    "SELECT p.p_promo_sk, count(*) AS orders \
                     FROM catalog_sales cs \
                     JOIN promotion p ON cs.cs_promo_sk = p.p_promo_sk \
                     WHERE cs.cs_sales_price BETWEEN {} AND {} \
                     GROUP BY p.p_promo_sk ORDER BY orders DESC LIMIT 15",
                    (i % 4) * 20,
                    (i % 4) * 20 + 100
                )
            },
        },
        // =========================================================
        // Group B (7): implicit (comma) joins, LIMIT.
        // =========================================================
        Template {
            name: "star_comma",
            count: 4,
            features: &[ImplicitCrossJoin],
            sql: |i| {
                let lo = date_lo(i);
                format!(
                    "SELECT d.d_moy, s.s_state, sum(ss.ss_net_profit) AS profit \
                     FROM store_sales ss, date_dim d, store s \
                     WHERE ss.ss_sold_date_sk = d.d_date_sk \
                       AND ss.ss_store_sk = s.s_store_sk \
                       AND d.d_date_sk BETWEEN {lo} AND {} \
                     GROUP BY d.d_moy, s.s_state ORDER BY profit DESC LIMIT 25",
                    lo + 90
                )
            },
        },
        Template {
            name: "returns_comma",
            count: 3,
            features: &[ImplicitCrossJoin, OrderByWithoutLimit],
            sql: |i| {
                format!(
                    "SELECT i.i_category, count(*) AS n \
                     FROM store_returns sr, item i \
                     WHERE sr.sr_item_sk = i.i_item_sk AND sr.sr_return_amt > {} \
                     GROUP BY i.i_category ORDER BY n DESC",
                    20 + (i % 3) * 30
                )
            },
        },
        // =========================================================
        // Group C (5): CASE + comma joins, LIMIT.
        // =========================================================
        Template {
            name: "case_buckets",
            count: 3,
            features: &[ImplicitCrossJoin, CaseStatement],
            sql: |i| {
                format!(
                    "SELECT i.i_category, \
                            sum(CASE WHEN ss.ss_quantity < {q} THEN 1 ELSE 0 END) AS small_orders, \
                            sum(CASE WHEN ss.ss_quantity >= {q} THEN 1 ELSE 0 END) AS big_orders \
                     FROM store_sales ss, item i \
                     WHERE ss.ss_item_sk = i.i_item_sk \
                     GROUP BY i.i_category ORDER BY i_category LIMIT 10",
                    q = 20 + (i % 5) * 10
                )
            },
        },
        Template {
            name: "case_buckets_ord",
            count: 2,
            features: &[ImplicitCrossJoin, CaseStatement, OrderByWithoutLimit],
            sql: |i| {
                format!(
                    "SELECT s.s_state, \
                            sum(CASE WHEN ss.ss_net_profit > {p} THEN ss.ss_net_profit ELSE 0 END) AS hi_profit \
                     FROM store_sales ss, store s \
                     WHERE ss.ss_store_sk = s.s_store_sk \
                     GROUP BY s.s_state ORDER BY hi_profit DESC",
                    p = 40 + (i % 2) * 40
                )
            },
        },
        // =========================================================
        // Group D (4): outer join + ORDER BY without LIMIT.
        // =========================================================
        Template {
            name: "sales_returns_outer",
            count: 4,
            features: &[OuterJoin, OrderByWithoutLimit],
            sql: |i| {
                format!(
                    "SELECT ss.ss_ticket_number, sr.sr_return_amt \
                     FROM store_sales ss \
                     LEFT JOIN store_returns sr \
                       ON ss.ss_item_sk = sr.sr_item_sk \
                      AND ss.ss_ticket_number = sr.sr_ticket_number \
                     WHERE ss.ss_sold_date_sk < {} \
                     ORDER BY ss_ticket_number",
                    60 + (i % 4) * 15
                )
            },
        },
        // =========================================================
        // Group E (4): WITH (shared CTE), comma joins, LIMIT.
        // =========================================================
        Template {
            name: "cte_shared",
            count: 4,
            features: &[WithClause, ImplicitCrossJoin],
            sql: |i| {
                format!(
                    "WITH item_sales AS ( \
                        SELECT ss_item_sk AS item_sk, sum(ss_sales_price) AS revenue \
                        FROM store_sales WHERE ss_sold_date_sk >= {lo} \
                        GROUP BY ss_item_sk) \
                     SELECT a.item_sk, a.revenue, b.revenue AS rev2 \
                     FROM item_sales a, item_sales b \
                     WHERE a.item_sk = b.item_sk AND a.revenue > {thr} \
                     ORDER BY revenue DESC LIMIT 10",
                    lo = date_lo(i),
                    thr = 50 + (i % 4) * 25
                )
            },
        },
        // =========================================================
        // Group H1 (3): uncorrelated subquery, explicit join, LIMIT.
        // =========================================================
        Template {
            name: "above_avg_price",
            count: 3,
            features: &[UncorrelatedSubquery],
            sql: |i| {
                format!(
                    "SELECT ss.ss_item_sk, count(*) AS n \
                     FROM store_sales ss \
                     WHERE ss.ss_sales_price > (SELECT avg(ss_sales_price) + {} FROM store_sales) \
                     GROUP BY ss.ss_item_sk ORDER BY n DESC LIMIT 10",
                    i % 10
                )
            },
        },
        // =========================================================
        // Group F (56): correlated subqueries — Orca's headline feature.
        // =========================================================
        Template {
            name: "exists_returns",
            count: 10,
            features: &[CorrelatedSubquery, ImplicitCrossJoin],
            sql: |i| {
                let lo = date_lo(i);
                format!(
                    "SELECT ss.ss_item_sk, ss.ss_ticket_number \
                     FROM store_sales ss \
                     WHERE ss.ss_sold_date_sk BETWEEN {lo} AND {} \
                       AND EXISTS (SELECT 1 FROM store_returns sr \
                                   WHERE sr.sr_item_sk = ss.ss_item_sk \
                                     AND sr.sr_ticket_number = ss.ss_ticket_number) \
                     LIMIT 50",
                    lo + 45
                )
            },
        },
        Template {
            name: "not_exists_promo",
            count: 10,
            features: &[CorrelatedSubquery],
            sql: |i| {
                format!(
                    "SELECT cs.cs_order_number, cs.cs_net_profit \
                     FROM catalog_sales cs \
                     WHERE cs.cs_sales_price > {} \
                       AND NOT EXISTS (SELECT 1 FROM catalog_returns cr \
                                       WHERE cr.cr_order_number = cs.cs_order_number \
                                         AND cr.cr_item_sk = cs.cs_item_sk) \
                     LIMIT 50",
                    100 + (i % 10) * 5
                )
            },
        },
        Template {
            name: "corr_scalar_max",
            count: 11,
            features: &[CorrelatedSubquery],
            sql: |i| {
                format!(
                    "SELECT ws.ws_item_sk, ws.ws_sales_price \
                     FROM web_sales ws \
                     WHERE ws.ws_sales_price >= \
                           (SELECT max(ws2.ws_sales_price) - {} FROM web_sales ws2 \
                            WHERE ws2.ws_item_sk = ws.ws_item_sk) \
                     LIMIT 40",
                    i % 8
                )
            },
        },
        Template {
            name: "in_corr_returns",
            count: 11,
            features: &[CorrelatedSubquery],
            sql: |i| {
                format!(
                    "SELECT sr.sr_ticket_number, sr.sr_return_amt \
                     FROM store_returns sr \
                     WHERE sr.sr_item_sk IN \
                           (SELECT ss.ss_item_sk FROM store_sales ss \
                            WHERE ss.ss_ticket_number = sr.sr_ticket_number \
                              AND ss.ss_quantity > {}) \
                     LIMIT 40",
                    (i % 6) * 10
                )
            },
        },
        Template {
            name: "corr_avg_inventory",
            count: 9,
            features: &[CorrelatedSubquery, ImplicitCrossJoin],
            sql: |i| {
                format!(
                    "SELECT inv.inv_item_sk, inv.inv_quantity_on_hand \
                     FROM inventory inv, warehouse w \
                     WHERE inv.inv_warehouse_sk = w.w_warehouse_sk \
                       AND inv.inv_quantity_on_hand > \
                           (SELECT avg(i2.inv_quantity_on_hand) * {} / 10 FROM inventory i2 \
                            WHERE i2.inv_item_sk = inv.inv_item_sk) \
                     LIMIT 30",
                    11 + (i % 5)
                )
            },
        },
        // =========================================================
        // Group G (8): INTERSECT / EXCEPT.
        // =========================================================
        Template {
            name: "channel_intersect",
            count: 4,
            features: &[IntersectExcept],
            sql: |i| {
                format!(
                    "SELECT ss_customer_sk FROM store_sales WHERE ss_sales_price > {p} \
                     INTERSECT \
                     SELECT ws_bill_customer_sk FROM web_sales WHERE ws_sales_price > {p}",
                    p = 50 + (i % 4) * 10
                )
            },
        },
        Template {
            name: "channel_except",
            count: 4,
            features: &[IntersectExcept],
            sql: |i| {
                format!(
                    "SELECT ss_customer_sk FROM store_sales WHERE ss_sold_date_sk < {d} \
                     EXCEPT \
                     SELECT cs_bill_customer_sk FROM catalog_sales WHERE cs_sold_date_sk < {d}",
                    d = 100 + (i % 4) * 50
                )
            },
        },
        // =========================================================
        // Group M (12): mixed heavy features — unsupported by all rivals.
        // =========================================================
        Template {
            name: "multi_channel_report",
            count: 6,
            features: &[
                WithClause,
                CaseStatement,
                OrderByWithoutLimit,
                ImplicitCrossJoin,
            ],
            sql: |i| {
                format!(
                    "WITH sales AS ( \
                        SELECT ss_item_sk AS item_sk, ss_sales_price AS price, ss_quantity AS qty \
                        FROM store_sales WHERE ss_sold_date_sk >= {lo}) \
                     SELECT i.i_category, \
                            sum(CASE WHEN s.qty > 50 THEN s.price ELSE 0 END) AS bulk_rev, \
                            count(*) AS n \
                     FROM sales s, item i \
                     WHERE s.item_sk = i.i_item_sk AND i.i_category = '{cat}' \
                     GROUP BY i.i_category ORDER BY n",
                    lo = date_lo(i),
                    cat = category(i)
                )
            },
        },
        Template {
            name: "customer_profile",
            count: 6,
            features: &[CorrelatedSubquery, OuterJoin, OrderByWithoutLimit],
            sql: |i| {
                format!(
                    "SELECT c.c_customer_sk, ca.ca_state \
                     FROM customer c \
                     LEFT JOIN customer_address ca ON c.c_current_addr_sk = ca.ca_address_sk \
                     WHERE EXISTS (SELECT 1 FROM store_sales ss \
                                   WHERE ss.ss_customer_sk = c.c_customer_sk \
                                     AND ss.ss_sales_price > {}) \
                       AND ca.ca_state = '{}' \
                     ORDER BY c_customer_sk",
                    120 + (i % 6) * 10,
                    state(i)
                )
            },
        },
        // =========================================================
        // Partition-elimination showcases (counted in group B totals? No:
        // separate — these use comma joins + LIMIT; Impala-compatible).
        // =========================================================
        Template {
            name: "narrow_date_window",
            count: 5,
            features: &[ImplicitCrossJoin],
            sql: |i| {
                let lo = (i as i64 * 61) % 700;
                format!(
                    "SELECT ss.ss_store_sk, count(*) AS n, sum(ss.ss_net_profit) AS profit \
                     FROM store_sales ss, date_dim d \
                     WHERE ss.ss_sold_date_sk = d.d_date_sk \
                       AND ss.ss_sold_date_sk >= {lo} AND ss.ss_sold_date_sk < {} \
                     GROUP BY ss.ss_store_sk ORDER BY profit DESC LIMIT 10",
                    lo + 15
                )
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_counts_sum_to_111() {
        let total: usize = templates().iter().map(|t| t.count).sum();
        assert_eq!(total, 111, "the paper's 111 query instances");
    }

    #[test]
    fn sql_is_parameterized_per_instance() {
        for t in templates() {
            if t.count > 1 {
                assert_ne!((t.sql)(0), (t.sql)(1), "{} instances differ", t.name);
            }
            for i in 0..t.count {
                let sql = (t.sql)(i);
                assert!(sql.to_lowercase().contains("select"), "{}", t.name);
            }
        }
    }
}
