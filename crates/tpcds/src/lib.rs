//! `orca-tpcds` — the TPC-DS-style workload of §7.1.
//!
//! "TPC-DS with its 25 tables, 429 columns and 99 query templates can well
//! represent a modern decision-supporting system and is an excellent
//! benchmark for testing query optimizers."
//!
//! This crate is the simulated stand-in for the official benchmark
//! (DESIGN.md §2): the same 25 table names with simplified but
//! realistically-shaped columns, a deterministic scale-factor data
//! generator with skewed distributions, statistics derived from the
//! generated data, and a suite of **111 query instances** expanded from
//! hand-written templates whose SQL-feature mix (correlated subqueries,
//! WITH, set operations, CASE, outer joins, multi-fact joins) drives the
//! Figure 12–15 reproductions.

pub mod datagen;
pub mod queries;
pub mod schema;
pub mod suite;

pub use datagen::build_catalog;
pub use suite::{suite, SuiteQuery};
