//! Deterministic scale-factor data generation + statistics.
//!
//! Value distributions follow the TPC-DS spirit: surrogate keys uniform
//! over the referenced dimension, sale amounts skewed (a few hot items
//! dominate — exercising Orca's skew-aware costing), dates uniform over a
//! two-year calendar.

use crate::schema::{TableDef, DATE_KEYS, TABLES};
use orca_catalog::provider::MdProvider as _;
use orca_catalog::stats::ColumnStats;
use orca_catalog::{MemoryProvider, TableStats};
use orca_common::{DataType, Datum, SegmentConfig};
use orca_executor::{Database, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const STATES: &[&str] = &["CA", "TX", "NY", "WA", "OR", "FL", "GA", "IL"];
const CATEGORIES: &[&str] = &["Books", "Music", "Sports", "Home", "Shoes", "Electronics"];
const FLAGS: &[&str] = &["Y", "N"];

/// Generate one table's rows at the given scale factor.
pub fn generate_rows(def: &TableDef, scale: f64, seed: u64) -> Vec<Row> {
    let eff = if def.scales { scale } else { 1.0 };
    let n = ((def.base_rows as f64) * eff).ceil().max(1.0) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ orca_common::hash::fnv_hash(def.name));
    // Dimension key spaces scale only if the dimension itself scales.
    let dim_rows = |name: &str| -> i64 {
        let d = TABLES.iter().find(|t| t.name == name).expect("known dim");
        let eff = if d.scales { scale } else { 1.0 };
        (((d.base_rows as f64) * eff).ceil() as i64).max(1)
    };
    let items = dim_rows("item");
    let customers = dim_rows("customer");
    let stores = dim_rows("store");
    let promos = dim_rows("promotion");
    let warehouses = dim_rows("warehouse");
    let ccs = dim_rows("call_center");
    let webs = dim_rows("web_site");
    let addrs = dim_rows("customer_address");
    let hdemos = dim_rows("household_demographics");

    (0..n)
        .map(|i| {
            let i = i as i64;
            def.columns
                .iter()
                .map(|(col, ty, nullable)| {
                    // 3% NULLs on nullable columns.
                    if *nullable && rng.gen_ratio(3, 100) {
                        return Datum::Null;
                    }
                    value_for(
                        col,
                        *ty,
                        i,
                        &mut rng,
                        ValueCtx {
                            items,
                            customers,
                            stores,
                            promos,
                            warehouses,
                            ccs,
                            webs,
                            addrs,
                            hdemos,
                        },
                    )
                })
                .collect()
        })
        .collect()
}

struct ValueCtx {
    items: i64,
    customers: i64,
    stores: i64,
    promos: i64,
    warehouses: i64,
    ccs: i64,
    webs: i64,
    addrs: i64,
    hdemos: i64,
}

/// Zipf-ish skewed key in `[0, n)`: square the uniform draw so small keys
/// are hot.
fn skewed(rng: &mut StdRng, n: i64) -> i64 {
    let u: f64 = rng.gen();
    ((u * u) * n as f64) as i64
}

fn value_for(col: &str, ty: DataType, i: i64, rng: &mut StdRng, ctx: ValueCtx) -> Datum {
    // Surrogate keys of dimension tables are sequential.
    match col {
        "d_date_sk" => return Datum::Date(i as i32),
        "d_year" => return Datum::Int(2000 + i / 365),
        "d_moy" => return Datum::Int((i / 30) % 12 + 1),
        "d_dow" => return Datum::Int(i % 7),
        "d_qoy" => return Datum::Int((i / 91) % 4 + 1),
        "t_time_sk" | "i_item_sk" | "c_customer_sk" | "ca_address_sk" | "cd_demo_sk"
        | "hd_demo_sk" | "ib_income_band_sk" | "p_promo_sk" | "r_reason_sk" | "sm_ship_mode_sk"
        | "s_store_sk" | "w_warehouse_sk" | "wp_web_page_sk" | "web_site_sk"
        | "cc_call_center_sk" | "cp_catalog_page_sk" => return Datum::Int(i),
        "ss_ticket_number" | "cs_order_number" | "ws_order_number" | "sr_ticket_number"
        | "cr_order_number" | "wr_order_number" => return Datum::Int(i),
        _ => {}
    }
    // Fact foreign keys & measures by suffix.
    if col.ends_with("date_sk") {
        return Datum::Date(rng.gen_range(0..DATE_KEYS) as i32);
    }
    if col.ends_with("item_sk") {
        return Datum::Int(skewed(rng, ctx.items));
    }
    if col.ends_with("customer_sk") {
        return Datum::Int(skewed(rng, ctx.customers));
    }
    if col.ends_with("store_sk") {
        return Datum::Int(rng.gen_range(0..ctx.stores));
    }
    if col.ends_with("promo_sk") {
        return Datum::Int(rng.gen_range(0..ctx.promos));
    }
    if col.ends_with("warehouse_sk") {
        return Datum::Int(rng.gen_range(0..ctx.warehouses));
    }
    if col.ends_with("call_center_sk") {
        return Datum::Int(rng.gen_range(0..ctx.ccs));
    }
    if col.ends_with("web_site_sk") {
        return Datum::Int(rng.gen_range(0..ctx.webs));
    }
    if col.ends_with("addr_sk") {
        return Datum::Int(rng.gen_range(0..ctx.addrs));
    }
    if col.ends_with("hdemo_sk") || col.ends_with("income_band_sk") {
        return Datum::Int(rng.gen_range(0..ctx.hdemos.max(2)));
    }
    match (col, ty) {
        (_, DataType::Str) => {
            let pool: &[&str] = if col.contains("state") {
                STATES
            } else if col.contains("category") {
                CATEGORIES
            } else if col.contains("flag") || col.contains("channel") {
                FLAGS
            } else {
                &["AAA", "BBB", "CCC", "DDD"]
            };
            Datum::Str(pool[rng.gen_range(0..pool.len())].to_string())
        }
        (c, _)
            if c.contains("price")
                || c.contains("amt")
                || c.contains("amount")
                || c.contains("cost") =>
        {
            Datum::Int(rng.gen_range(1..200))
        }
        (c, _) if c.contains("profit") => Datum::Int(rng.gen_range(-50..150)),
        (c, _) if c.contains("quantity") => Datum::Int(rng.gen_range(1..100)),
        (_, DataType::Date) => Datum::Date(rng.gen_range(0..DATE_KEYS) as i32),
        _ => Datum::Int(rng.gen_range(0..1000)),
    }
}

/// Build the full catalog + loaded database at a scale factor.
///
/// Returns the provider (tables + statistics harvested from the generated
/// data, as ANALYZE would) and the executable database.
pub fn build_catalog(scale: f64, cluster: SegmentConfig) -> (Arc<MemoryProvider>, Database) {
    let provider = Arc::new(MemoryProvider::new());
    let mut db = Database::new(cluster);
    for def in TABLES {
        let id = provider.register(def.name, def.column_metas(), def.distribution());
        if let Some(p) = def.partitioning() {
            let t = (*provider.table(id).expect("just registered")).clone();
            provider.install_table(Arc::new(t.with_partitioning(p)));
        }
        let rows = generate_rows(def, scale, 0xDA7A);
        // Statistics (the reversed-statistics data generator of §6 works
        // the other way around; here data comes first, stats second).
        let mut stats = TableStats::new(rows.len() as f64, def.columns.len());
        for c in 0..def.columns.len() {
            let values: Vec<Datum> = rows.iter().map(|r| r[c].clone()).collect();
            stats.columns[c] = Some(ColumnStats::from_column(&values, 32));
        }
        provider.set_stats(id, stats);
        let table = provider.table(id).expect("registered");
        db.load_table(table, rows).expect("rows match schema");
    }
    (provider, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let ss = TABLES.iter().find(|t| t.name == "store_sales").unwrap();
        let a = generate_rows(ss, 0.1, 42);
        let b = generate_rows(ss, 0.1, 42);
        assert_eq!(a, b, "same seed, same data");
        assert_eq!(a.len(), 2400);
        let big = generate_rows(ss, 0.2, 42);
        assert_eq!(big.len(), 4800);
    }

    #[test]
    fn item_keys_are_skewed() {
        let ss = TABLES.iter().find(|t| t.name == "store_sales").unwrap();
        let rows = generate_rows(ss, 0.5, 7);
        let idx = ss.col_index("ss_item_sk");
        let items = TABLES.iter().find(|t| t.name == "item").unwrap().base_rows as f64 * 0.5;
        let low_half = rows
            .iter()
            .filter(|r| (r[idx].as_i64().unwrap() as f64) < items / 2.0)
            .count();
        // Squared-uniform puts ~70% of the mass in the lower half.
        assert!(
            low_half as f64 > rows.len() as f64 * 0.6,
            "{low_half}/{} not skewed",
            rows.len()
        );
    }

    #[test]
    fn build_catalog_loads_everything_with_stats() {
        let (provider, db) = build_catalog(0.05, SegmentConfig::default().with_segments(2));
        for def in TABLES {
            let id = provider.table_by_name(def.name).expect(def.name);
            let stats = provider.stats(id).unwrap();
            assert!(stats.rows >= 1.0, "{} has rows", def.name);
            assert!(db.table(id).unwrap().total_rows() >= 1);
        }
        // Partitioned fact: every partition key within bounds.
        let ss = provider
            .table(provider.table_by_name("store_sales").unwrap())
            .unwrap();
        assert_eq!(ss.num_partitions(), crate::schema::DATE_PARTS);
    }
}
