//! The 25-table TPC-DS schema (simplified columns, real table names).
//!
//! Fact tables are hash-distributed on their item key and range-partitioned
//! by sold-date key (the classic GPDB layout that partition elimination
//! exploits). Small dimensions are replicated; the rest are hashed on
//! their surrogate key.

use orca_catalog::{ColumnMeta, Distribution, Partitioning};
use orca_common::DataType;

/// Days in the generated calendar (two years).
pub const DATE_KEYS: i64 = 730;
/// Date partitions on fact tables (monthly-ish).
pub const DATE_PARTS: usize = 24;

/// Declarative table description used by the generator.
pub struct TableDef {
    pub name: &'static str,
    /// `(column, type, nullable)`
    pub columns: &'static [(&'static str, DataType, bool)],
    pub distribution: Dist,
    /// Range-partitioned on this column over `[0, DATE_KEYS)`.
    pub partition_col: Option<&'static str>,
    /// Base row count at scale factor 1.0.
    pub base_rows: usize,
    /// Whether the table grows with the scale factor. Calendar and
    /// organizational dimensions (dates, stores, call centers, ...) have a
    /// fixed size in TPC-DS regardless of scale.
    pub scales: bool,
}

pub enum Dist {
    Hashed(&'static str),
    Replicated,
    Singleton,
}

use DataType::{Date, Int, Str};

/// All 25 tables (24 content tables + dbgen_version, as in TPC-DS).
pub const TABLES: &[TableDef] = &[
    // ------------------------- fact tables -------------------------
    TableDef {
        name: "store_sales",
        columns: &[
            ("ss_sold_date_sk", Date, false),
            ("ss_item_sk", Int, false),
            ("ss_customer_sk", Int, true),
            ("ss_store_sk", Int, true),
            ("ss_promo_sk", Int, true),
            ("ss_ticket_number", Int, false),
            ("ss_quantity", Int, true),
            ("ss_sales_price", Int, true),
            ("ss_net_profit", Int, true),
        ],
        distribution: Dist::Hashed("ss_item_sk"),
        partition_col: Some("ss_sold_date_sk"),
        base_rows: 24_000,
        scales: true,
    },
    TableDef {
        name: "store_returns",
        columns: &[
            ("sr_returned_date_sk", Date, false),
            ("sr_item_sk", Int, false),
            ("sr_customer_sk", Int, true),
            ("sr_ticket_number", Int, false),
            ("sr_return_quantity", Int, true),
            ("sr_return_amt", Int, true),
        ],
        distribution: Dist::Hashed("sr_item_sk"),
        partition_col: Some("sr_returned_date_sk"),
        base_rows: 2_400,
        scales: true,
    },
    TableDef {
        name: "catalog_sales",
        columns: &[
            ("cs_sold_date_sk", Date, false),
            ("cs_item_sk", Int, false),
            ("cs_bill_customer_sk", Int, true),
            ("cs_call_center_sk", Int, true),
            ("cs_promo_sk", Int, true),
            ("cs_order_number", Int, false),
            ("cs_quantity", Int, true),
            ("cs_sales_price", Int, true),
            ("cs_net_profit", Int, true),
        ],
        distribution: Dist::Hashed("cs_item_sk"),
        partition_col: Some("cs_sold_date_sk"),
        base_rows: 14_000,
        scales: true,
    },
    TableDef {
        name: "catalog_returns",
        columns: &[
            ("cr_returned_date_sk", Date, false),
            ("cr_item_sk", Int, false),
            ("cr_customer_sk", Int, true),
            ("cr_order_number", Int, false),
            ("cr_return_amount", Int, true),
        ],
        distribution: Dist::Hashed("cr_item_sk"),
        partition_col: Some("cr_returned_date_sk"),
        base_rows: 1_400,
        scales: true,
    },
    TableDef {
        name: "web_sales",
        columns: &[
            ("ws_sold_date_sk", Date, false),
            ("ws_item_sk", Int, false),
            ("ws_bill_customer_sk", Int, true),
            ("ws_web_site_sk", Int, true),
            ("ws_promo_sk", Int, true),
            ("ws_order_number", Int, false),
            ("ws_quantity", Int, true),
            ("ws_sales_price", Int, true),
            ("ws_net_profit", Int, true),
        ],
        distribution: Dist::Hashed("ws_item_sk"),
        partition_col: Some("ws_sold_date_sk"),
        base_rows: 7_000,
        scales: true,
    },
    TableDef {
        name: "web_returns",
        columns: &[
            ("wr_returned_date_sk", Date, false),
            ("wr_item_sk", Int, false),
            ("wr_refunded_customer_sk", Int, true),
            ("wr_order_number", Int, false),
            ("wr_return_amt", Int, true),
        ],
        distribution: Dist::Hashed("wr_item_sk"),
        partition_col: Some("wr_returned_date_sk"),
        base_rows: 700,
        scales: true,
    },
    TableDef {
        name: "inventory",
        columns: &[
            ("inv_date_sk", Date, false),
            ("inv_item_sk", Int, false),
            ("inv_warehouse_sk", Int, false),
            ("inv_quantity_on_hand", Int, true),
        ],
        distribution: Dist::Hashed("inv_item_sk"),
        partition_col: Some("inv_date_sk"),
        base_rows: 8_000,
        scales: true,
    },
    // ------------------------ dimensions ---------------------------
    TableDef {
        name: "date_dim",
        columns: &[
            ("d_date_sk", Date, false),
            ("d_year", Int, false),
            ("d_moy", Int, false),
            ("d_dow", Int, false),
            ("d_qoy", Int, false),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: DATE_KEYS as usize,
        scales: false,
    },
    TableDef {
        name: "time_dim",
        columns: &[
            ("t_time_sk", Int, false),
            ("t_hour", Int, false),
            ("t_minute", Int, false),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 240,
        scales: false,
    },
    TableDef {
        name: "item",
        columns: &[
            ("i_item_sk", Int, false),
            ("i_brand_id", Int, true),
            ("i_class_id", Int, true),
            ("i_category_id", Int, true),
            ("i_category", Str, true),
            ("i_current_price", Int, true),
        ],
        distribution: Dist::Hashed("i_item_sk"),
        partition_col: None,
        base_rows: 1_000,
        scales: true,
    },
    TableDef {
        name: "customer",
        columns: &[
            ("c_customer_sk", Int, false),
            ("c_current_addr_sk", Int, true),
            ("c_current_hdemo_sk", Int, true),
            ("c_birth_year", Int, true),
            ("c_preferred_cust_flag", Str, true),
        ],
        distribution: Dist::Hashed("c_customer_sk"),
        partition_col: None,
        base_rows: 2_000,
        scales: true,
    },
    TableDef {
        name: "customer_address",
        columns: &[
            ("ca_address_sk", Int, false),
            ("ca_state", Str, true),
            ("ca_zip", Int, true),
            ("ca_gmt_offset", Int, true),
        ],
        distribution: Dist::Hashed("ca_address_sk"),
        partition_col: None,
        base_rows: 1_000,
        scales: true,
    },
    TableDef {
        name: "customer_demographics",
        columns: &[
            ("cd_demo_sk", Int, false),
            ("cd_gender", Str, true),
            ("cd_marital_status", Str, true),
            ("cd_education_status", Str, true),
        ],
        distribution: Dist::Hashed("cd_demo_sk"),
        partition_col: None,
        base_rows: 800,
        scales: true,
    },
    TableDef {
        name: "household_demographics",
        columns: &[
            ("hd_demo_sk", Int, false),
            ("hd_income_band_sk", Int, true),
            ("hd_dep_count", Int, true),
            ("hd_vehicle_count", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 144,
        scales: false,
    },
    TableDef {
        name: "income_band",
        columns: &[
            ("ib_income_band_sk", Int, false),
            ("ib_lower_bound", Int, true),
            ("ib_upper_bound", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 20,
        scales: false,
    },
    TableDef {
        name: "promotion",
        columns: &[
            ("p_promo_sk", Int, false),
            ("p_channel_email", Str, true),
            ("p_channel_tv", Str, true),
            ("p_cost", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 60,
        scales: false,
    },
    TableDef {
        name: "reason",
        columns: &[("r_reason_sk", Int, false), ("r_reason_desc", Str, true)],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 35,
        scales: false,
    },
    TableDef {
        name: "ship_mode",
        columns: &[("sm_ship_mode_sk", Int, false), ("sm_type", Str, true)],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 20,
        scales: false,
    },
    TableDef {
        name: "store",
        columns: &[
            ("s_store_sk", Int, false),
            ("s_state", Str, true),
            ("s_market_id", Int, true),
            ("s_number_employees", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 12,
        scales: false,
    },
    TableDef {
        name: "warehouse",
        columns: &[
            ("w_warehouse_sk", Int, false),
            ("w_warehouse_sq_ft", Int, true),
            ("w_state", Str, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 5,
        scales: false,
    },
    TableDef {
        name: "web_page",
        columns: &[
            ("wp_web_page_sk", Int, false),
            ("wp_char_count", Int, true),
            ("wp_link_count", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 60,
        scales: false,
    },
    TableDef {
        name: "web_site",
        columns: &[
            ("web_site_sk", Int, false),
            ("web_market_class", Str, true),
            ("web_tax_percentage", Int, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 30,
        scales: false,
    },
    TableDef {
        name: "call_center",
        columns: &[
            ("cc_call_center_sk", Int, false),
            ("cc_employees", Int, true),
            ("cc_state", Str, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 6,
        scales: false,
    },
    TableDef {
        name: "catalog_page",
        columns: &[
            ("cp_catalog_page_sk", Int, false),
            ("cp_catalog_number", Int, true),
            ("cp_type", Str, true),
        ],
        distribution: Dist::Replicated,
        partition_col: None,
        base_rows: 100,
        scales: false,
    },
    TableDef {
        name: "dbgen_version",
        columns: &[
            ("dv_version", Str, false),
            ("dv_create_date_sk", Date, true),
        ],
        distribution: Dist::Singleton,
        partition_col: None,
        base_rows: 1,
        scales: false,
    },
];

impl TableDef {
    pub fn column_metas(&self) -> Vec<ColumnMeta> {
        self.columns
            .iter()
            .map(|(n, t, nullable)| {
                let m = ColumnMeta::new(n, *t);
                if *nullable {
                    m
                } else {
                    m.not_null()
                }
            })
            .collect()
    }

    pub fn col_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("no column {name} in {}", self.name))
    }

    pub fn distribution(&self) -> Distribution {
        match &self.distribution {
            Dist::Hashed(col) => Distribution::Hashed(vec![self.col_index(col)]),
            Dist::Replicated => Distribution::Replicated,
            Dist::Singleton => Distribution::Singleton,
        }
    }

    pub fn partitioning(&self) -> Option<Partitioning> {
        self.partition_col
            .map(|c| Partitioning::range(self.col_index(c), 0, DATE_KEYS, DATE_PARTS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_tables_with_unique_names() {
        assert_eq!(TABLES.len(), 25);
        let mut names: Vec<&str> = TABLES.iter().map(|t| t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn fact_tables_partitioned_on_date() {
        let ss = TABLES.iter().find(|t| t.name == "store_sales").unwrap();
        let p = ss.partitioning().unwrap();
        assert_eq!(p.num_parts(), DATE_PARTS);
        assert_eq!(p.column, ss.col_index("ss_sold_date_sk"));
        assert!(matches!(ss.distribution(), Distribution::Hashed(_)));
        let dd = TABLES.iter().find(|t| t.name == "date_dim").unwrap();
        assert!(dd.partitioning().is_none());
        assert!(matches!(dd.distribution(), Distribution::Replicated));
    }
}
