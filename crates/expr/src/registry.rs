//! The column factory: query-wide unique column ids.
//!
//! Orca's `CColumnFactory` mints a `CColRef` per produced column; here the
//! binder mints [`ColId`]s for base-table columns, projections, aggregates
//! and CTE consumers, and optimizer rules mint more (e.g. the local-stage
//! columns of a split aggregate). The registry is therefore shared and
//! thread-safe: exploration jobs on different cores may mint concurrently.

use orca_common::{ColId, DataType};
use parking_lot::RwLock;

/// Metadata for one column id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnInfo {
    pub name: String,
    pub dtype: DataType,
}

/// Shared, append-only registry of column ids.
#[derive(Debug, Default)]
pub struct ColumnRegistry {
    cols: RwLock<Vec<ColumnInfo>>,
    /// Memoized rule-derived columns, keyed by the column they derive from
    /// (e.g. the partial-aggregate column for a split aggregate's output).
    /// Keying makes derived-column minting idempotent: concurrent or
    /// repeated rule firings on the same logical site converge on one id
    /// instead of minting a fresh id per firing, which would make memo
    /// content depend on scheduling order.
    derived: RwLock<std::collections::HashMap<ColId, ColId>>,
}

impl ColumnRegistry {
    pub fn new() -> ColumnRegistry {
        ColumnRegistry::default()
    }

    /// Mint a fresh column id.
    pub fn fresh(&self, name: &str, dtype: DataType) -> ColId {
        let mut g = self.cols.write();
        let id = ColId(g.len() as u32);
        g.push(ColumnInfo {
            name: name.to_string(),
            dtype,
        });
        id
    }

    /// Mint (or look up) the column derived from `source`. The first call
    /// for a given `source` allocates a fresh id; every later call — from
    /// any thread — returns that same id, ignoring `name`/`dtype`.
    pub fn derived(&self, source: ColId, name: &str, dtype: DataType) -> ColId {
        if let Some(&id) = self.derived.read().get(&source) {
            return id;
        }
        let mut g = self.derived.write();
        if let Some(&id) = g.get(&source) {
            return id;
        }
        let id = self.fresh(name, dtype);
        g.insert(source, id);
        id
    }

    pub fn info(&self, col: ColId) -> ColumnInfo {
        self.cols.read()[col.index()].clone()
    }

    pub fn dtype(&self, col: ColId) -> DataType {
        self.cols.read()[col.index()].dtype
    }

    pub fn name(&self, col: ColId) -> String {
        self.cols.read()[col.index()].name.clone()
    }

    /// Byte width of one column (cost model / motion volume input).
    pub fn width(&self, col: ColId) -> u64 {
        self.dtype(col).width()
    }

    /// Total width of a row of `cols`.
    pub fn row_width(&self, cols: &[ColId]) -> u64 {
        cols.iter().map(|c| self.width(*c)).sum()
    }

    /// Every `(name, dtype)` pair in mint order — the shape a `DxlQuery`'s
    /// `columns` preamble carries, so a bound query can be re-serialized or
    /// submitted to the serving layer.
    pub fn snapshot(&self) -> Vec<(String, DataType)> {
        self.cols
            .read()
            .iter()
            .map(|c| (c.name.clone(), c.dtype))
            .collect()
    }

    pub fn len(&self) -> usize {
        self.cols.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_lookup() {
        let r = ColumnRegistry::new();
        let a = r.fresh("a", DataType::Int);
        let b = r.fresh("b", DataType::Str);
        assert_ne!(a, b);
        assert_eq!(r.info(a).name, "a");
        assert_eq!(r.dtype(b), DataType::Str);
        assert_eq!(r.row_width(&[a, b]), 8 + 24);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn concurrent_minting_yields_unique_ids() {
        let r = std::sync::Arc::new(ColumnRegistry::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| r.fresh(&format!("t{t}_{i}"), DataType::Int))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<ColId> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panic"))
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
