//! Hash-consing for scalar expressions (and other optimizer values).
//!
//! The optimize phase compares and hashes the same predicate trees and
//! property requests millions of times. Interning turns those deep
//! recursive walks into `u32` compares: structurally equal values map to
//! the same compact id, and the id resolves back to a shared `Arc` of the
//! canonical value without taking any lock.
//!
//! Layout mirrors the Memo's group directory: a sharded dedup index
//! (mutexed only on insert/probe of the *shard*, never globally) in front
//! of a chunked append-only arena of `OnceLock` slots. Ids are handed out
//! only after the slot is published, and every path that can observe an id
//! (the shard map, the return value of `intern`) synchronizes with the
//! slot write, so `resolve` is a plain indexed load.
//!
//! Id *values* depend on arrival order and therefore differ between runs
//! and worker counts. They are safe for equality-keyed maps (goal tables,
//! context indices, caches) but must never feed ordering decisions or
//! content fingerprints — see DESIGN.md "Hot-path caches".

use crate::scalar::ScalarExpr;
use orca_common::hash::{fnv_hash, FnvHashMap};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Compact id of an interned value. Equal ids ⟺ structurally equal values
/// (within one interner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl std::fmt::Display for ExprId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

const SHARD_COUNT: usize = 16;
/// 4096 slots per chunk; 1024 chunks → 4M interned values max, far above
/// anything a single optimization produces.
const CHUNK_BITS: u32 = 12;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
const MAX_CHUNKS: usize = 1024;

type Chunk<T> = Box<[OnceLock<Arc<T>>]>;

/// Concurrent append-only interner: structural dedup in front of a chunked
/// arena. Generic so the optimizer core can reuse it for property requests.
pub struct Interner<T> {
    shards: Vec<Mutex<FnvHashMap<Arc<T>, u32>>>,
    chunks: Vec<OnceLock<Chunk<T>>>,
    len: AtomicU64,
    hits: AtomicU64,
}

impl<T: std::hash::Hash + Eq> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T: std::hash::Hash + Eq> Interner<T> {
    pub fn new() -> Interner<T> {
        Interner {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(FnvHashMap::default()))
                .collect(),
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Intern `value`, returning its id. The deep hash of `value` is
    /// computed exactly once (to pick the shard and probe its map); every
    /// later probe of an equal value is a map hit, and all downstream
    /// equality/hashing on the id is O(1).
    pub fn intern(&self, value: &T) -> ExprId
    where
        T: Clone,
    {
        let shard = (fnv_hash(value) as usize) & (SHARD_COUNT - 1);
        let mut map = self.shards[shard].lock();
        if let Some(&id) = map.get(value) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ExprId(id);
        }
        let id = self.len.fetch_add(1, Ordering::Relaxed) as usize;
        assert!(id < MAX_CHUNKS * CHUNK_SIZE, "interner arena exhausted");
        let arc = Arc::new(value.clone());
        let chunk = self.chunks[id >> CHUNK_BITS].get_or_init(|| {
            (0..CHUNK_SIZE)
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        chunk[id & (CHUNK_SIZE - 1)]
            .set(Arc::clone(&arc))
            .unwrap_or_else(|_| unreachable!("arena slot assigned twice"));
        map.insert(arc, id as u32);
        ExprId(id as u32)
    }

    /// Resolve an id back to the canonical shared value. Lock-free: the id
    /// can only have been observed after its slot was published.
    pub fn resolve(&self, id: ExprId) -> Arc<T> {
        let idx = id.0 as usize;
        let chunk = self.chunks[idx >> CHUNK_BITS]
            .get()
            .expect("interned id from a foreign or empty interner");
        Arc::clone(
            chunk[idx & (CHUNK_SIZE - 1)]
                .get()
                .expect("unpublished intern slot"),
        )
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `intern` calls that deduplicated against an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// The scalar-expression interner: hash-consing for `ScalarExpr` trees.
pub type ExprInterner = Interner<ScalarExpr>;

/// Content fingerprint of a scan *fragment*: the table-independent part
/// of an executor fragment-cache key — projection columns, partition
/// pruning, batch granularity, and (optionally) the interned filter
/// predicate.
///
/// The predicate contributes through its hash-consed id, so the deep
/// structural hash is paid once per distinct predicate and every repeat
/// probe is an O(1) map hit. Ids are arrival-order dependent, which is
/// fine here: the fingerprint keys an *in-process* cache scoped to the
/// same interner's lifetime and is never persisted or compared across
/// runs (see the module-level caveat on id stability).
pub fn fragment_fingerprint(
    interner: &ExprInterner,
    cols: &[orca_common::ColId],
    parts: &Option<Vec<usize>>,
    batch_size: usize,
    pred: Option<&ScalarExpr>,
) -> u64 {
    let pred_id = pred.map(|p| interner.intern(p).0);
    fnv_hash(&(cols, parts, batch_size, pred_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{CmpOp, ScalarExpr};
    use orca_common::{ColId, Datum};
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn structural_dedup_and_roundtrip() {
        let interner = ExprInterner::new();
        let a = ScalarExpr::col_eq_col(ColId(1), ColId(2));
        let b = ScalarExpr::col_eq_col(ColId(1), ColId(2));
        let c = ScalarExpr::col_eq_col(ColId(1), ColId(3));
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        let ic = interner.intern(&c);
        assert_eq!(ia, ib, "structurally equal exprs share an id");
        assert_ne!(ia, ic, "distinct exprs get distinct ids");
        assert_eq!(*interner.resolve(ia), a);
        assert_eq!(*interner.resolve(ic), c);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.hits(), 1);
    }

    #[test]
    fn resolve_returns_shared_arc() {
        let interner = ExprInterner::new();
        let e = ScalarExpr::int(7);
        let id = interner.intern(&e);
        let r1 = interner.resolve(id);
        let r2 = interner.resolve(id);
        assert!(Arc::ptr_eq(&r1, &r2), "resolve must not clone the value");
    }

    /// Satellite: same exprs interned from 8 threads yield the same ids.
    #[test]
    fn concurrent_interning_converges_to_same_ids() {
        let interner = Arc::new(ExprInterner::new());
        let exprs: Vec<ScalarExpr> = (0..64)
            .map(|i| {
                ScalarExpr::and(vec![
                    ScalarExpr::col_eq_col(ColId(i % 7), ColId(i % 5)),
                    ScalarExpr::cmp(
                        CmpOp::Gt,
                        ScalarExpr::col(ColId(i % 3)),
                        ScalarExpr::int(i as i64 % 11),
                    ),
                ])
            })
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let interner = Arc::clone(&interner);
                let exprs = exprs.clone();
                std::thread::spawn(move || {
                    // Each thread walks the exprs at a different offset so
                    // first-toucher varies per value.
                    (0..exprs.len())
                        .map(|i| interner.intern(&exprs[(i + t * 9) % exprs.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let ids: Vec<Vec<ExprId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let n = exprs.len();
        for t in 0..8 {
            for i in 0..n {
                // Thread t interned exprs[(i + t*9) % n] at position i.
                let expr = &exprs[(i + t * 9) % n];
                assert_eq!(*interner.resolve(ids[t][i]), *expr, "id must round-trip");
                assert_eq!(
                    interner.intern(expr),
                    ids[t][i],
                    "every thread must observe the same id per value"
                );
            }
        }
        assert_eq!(interner.len() as usize, dedup_count(&exprs));
    }

    fn dedup_count(exprs: &[ScalarExpr]) -> usize {
        let mut set = std::collections::HashSet::new();
        for e in exprs {
            set.insert(e.clone());
        }
        set.len()
    }

    fn arb_scalar() -> impl Strategy<Value = ScalarExpr> {
        let leaf = prop_oneof![
            (0u32..8).prop_map(|c| ScalarExpr::col(ColId(c))),
            (0i64..16).prop_map(ScalarExpr::int),
            Just(ScalarExpr::Const(Datum::Bool(true))),
            Just(ScalarExpr::Const(Datum::Null)),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(l, r)| ScalarExpr::eq(l, r)),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| ScalarExpr::cmp(CmpOp::Lt, l, r)),
                prop::collection::vec(inner.clone(), 2..4).prop_map(ScalarExpr::And),
                prop::collection::vec(inner.clone(), 2..4).prop_map(ScalarExpr::Or),
                inner.clone().prop_map(|e| ScalarExpr::Not(Box::new(e))),
                inner.prop_map(|e| ScalarExpr::IsNull(Box::new(e))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite: interned-id equality ⟺ structural equality, and the
        /// id round-trips to the original expression.
        #[test]
        fn intern_id_equality_matches_structural_equality(
            a in arb_scalar(),
            b in arb_scalar(),
        ) {
            let interner = ExprInterner::new();
            let ia = interner.intern(&a);
            let ib = interner.intern(&b);
            prop_assert_eq!(ia == ib, a == b);
            prop_assert_eq!(&*interner.resolve(ia), &a);
            prop_assert_eq!(&*interner.resolve(ib), &b);
            // Re-interning is stable.
            prop_assert_eq!(interner.intern(&a), ia);
            prop_assert_eq!(interner.intern(&b), ib);
        }
    }
}
