//! Scalar expressions.
//!
//! The binder produces scalar trees that may still contain *subquery
//! markers* (`Exists`, `InSubquery`, `ScalarSubquery`); the normalization
//! pass in `orca::preprocess` unnests those into joins before anything is
//! copied into the Memo (see DESIGN.md §2). Everything else survives into
//! physical plans and is evaluated by the execution engine.

use crate::logical::LogicalExpr;
use orca_common::{ColId, Datum};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The operator with sides swapped: `a < b` ⇔ `b > a`.
    pub fn commute(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn evaluate(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Binary arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Whether the two-stage (local/global) split rule applies (§7.2.2
    /// multi-stage aggregation). `avg` is handled by the binder rewriting it
    /// into `sum/count`, so it never reaches the splitter.
    pub fn splittable(&self) -> bool {
        !matches!(self, AggFunc::Avg)
    }

    /// The global-stage function combining partial results of `self`:
    /// `count → sum`, others combine with themselves.
    pub fn combiner(&self) -> AggFunc {
        match self {
            AggFunc::Count => AggFunc::Sum,
            f => *f,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// Reference to a column produced below.
    ColRef(ColId),
    /// Literal.
    Const(Datum),
    /// Binary comparison.
    Cmp {
        op: CmpOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// N-ary conjunction.
    And(Vec<ScalarExpr>),
    /// N-ary disjunction.
    Or(Vec<ScalarExpr>),
    Not(Box<ScalarExpr>),
    IsNull(Box<ScalarExpr>),
    /// Binary arithmetic.
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// Searched CASE: WHEN cond THEN value ... [ELSE value].
    Case {
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_value: Option<Box<ScalarExpr>>,
    },
    /// `expr IN (v1, v2, ...)` value list.
    InList {
        expr: Box<ScalarExpr>,
        list: Vec<ScalarExpr>,
        negated: bool,
    },
    /// Aggregate call — legal only in `GbAgg` projections.
    Agg {
        func: AggFunc,
        /// `None` encodes `count(*)`.
        arg: Option<Box<ScalarExpr>>,
        distinct: bool,
    },
    /// `[NOT] EXISTS (subquery)` — pre-normalization only.
    Exists {
        negated: bool,
        subquery: Box<LogicalExpr>,
    },
    /// `expr [NOT] IN (subquery)` — pre-normalization only.
    InSubquery {
        expr: Box<ScalarExpr>,
        subquery: Box<LogicalExpr>,
        /// Output column of the subquery compared against `expr`.
        subquery_col: ColId,
        negated: bool,
    },
    /// Scalar subquery producing a single value — pre-normalization only.
    ScalarSubquery {
        subquery: Box<LogicalExpr>,
        subquery_col: ColId,
    },
}

impl ScalarExpr {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    pub fn col(id: ColId) -> ScalarExpr {
        ScalarExpr::ColRef(id)
    }

    pub fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Const(Datum::Int(v))
    }

    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, left, right)
    }

    pub fn col_eq_col(a: ColId, b: ColId) -> ScalarExpr {
        ScalarExpr::eq(ScalarExpr::col(a), ScalarExpr::col(b))
    }

    /// Conjunction, flattening nested `And`s and dropping `true`.
    pub fn and(conjuncts: Vec<ScalarExpr>) -> ScalarExpr {
        let mut flat = Vec::new();
        for c in conjuncts {
            match c {
                ScalarExpr::And(inner) => flat.extend(inner),
                ScalarExpr::Const(Datum::Bool(true)) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ScalarExpr::Const(Datum::Bool(true)),
            1 => flat.pop().expect("len checked"),
            _ => ScalarExpr::And(flat),
        }
    }

    // ------------------------------------------------------------------
    // Analysis
    // ------------------------------------------------------------------

    /// All columns referenced (not descending into subqueries — their
    /// internal columns are a different scope; correlated outer references
    /// *are* collected because they belong to this scope).
    pub fn used_cols(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        self.collect_cols(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_cols(&self, out: &mut Vec<ColId>) {
        match self {
            ScalarExpr::ColRef(c) => out.push(*c),
            ScalarExpr::Const(_) => {}
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
            ScalarExpr::And(v) | ScalarExpr::Or(v) => {
                for e in v {
                    e.collect_cols(out);
                }
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.collect_cols(out),
            ScalarExpr::Case {
                branches,
                else_value,
            } => {
                for (c, v) in branches {
                    c.collect_cols(out);
                    v.collect_cols(out);
                }
                if let Some(e) = else_value {
                    e.collect_cols(out);
                }
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.collect_cols(out);
                for e in list {
                    e.collect_cols(out);
                }
            }
            ScalarExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_cols(out);
                }
            }
            ScalarExpr::Exists { subquery, .. } => {
                // Correlated references: columns used inside the subquery
                // that the subquery itself does not produce.
                for c in subquery.outer_refs() {
                    out.push(c);
                }
            }
            ScalarExpr::InSubquery { expr, subquery, .. } => {
                expr.collect_cols(out);
                for c in subquery.outer_refs() {
                    out.push(c);
                }
            }
            ScalarExpr::ScalarSubquery { subquery, .. } => {
                for c in subquery.outer_refs() {
                    out.push(c);
                }
            }
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&ScalarExpr> {
        match self {
            ScalarExpr::And(v) => v.iter().flat_map(|e| e.conjuncts()).collect(),
            e => vec![e],
        }
    }

    pub fn into_conjuncts(self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::And(v) => v.into_iter().flat_map(|e| e.into_conjuncts()).collect(),
            e => vec![e],
        }
    }

    /// Whether this expression contains any subquery marker (must be false
    /// by the time expressions enter the Memo).
    pub fn has_subquery(&self) -> bool {
        match self {
            ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::ScalarSubquery { .. } => true,
            ScalarExpr::ColRef(_) | ScalarExpr::Const(_) => false,
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.has_subquery() || right.has_subquery()
            }
            ScalarExpr::And(v) | ScalarExpr::Or(v) => v.iter().any(|e| e.has_subquery()),
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.has_subquery(),
            ScalarExpr::Case {
                branches,
                else_value,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.has_subquery() || v.has_subquery())
                    || else_value.as_ref().is_some_and(|e| e.has_subquery())
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.has_subquery() || list.iter().any(|e| e.has_subquery())
            }
            ScalarExpr::Agg { arg, .. } => arg.as_ref().is_some_and(|a| a.has_subquery()),
        }
    }

    /// Whether this expression contains an aggregate call.
    pub fn has_agg(&self) -> bool {
        match self {
            ScalarExpr::Agg { .. } => true,
            ScalarExpr::ColRef(_) | ScalarExpr::Const(_) => false,
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.has_agg() || right.has_agg()
            }
            ScalarExpr::And(v) | ScalarExpr::Or(v) => v.iter().any(|e| e.has_agg()),
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.has_agg(),
            ScalarExpr::Case {
                branches,
                else_value,
            } => {
                branches.iter().any(|(c, v)| c.has_agg() || v.has_agg())
                    || else_value.as_ref().is_some_and(|e| e.has_agg())
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.has_agg() || list.iter().any(|e| e.has_agg())
            }
            ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::ScalarSubquery { .. } => false,
        }
    }

    /// If this is `col = col` between the two given sides, return the pair
    /// `(left_side_col, right_side_col)`. Used to extract hash-join keys.
    pub fn as_equi_pair(
        &self,
        left_cols: &[ColId],
        right_cols: &[ColId],
    ) -> Option<(ColId, ColId)> {
        if let ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = self
        {
            if let (ScalarExpr::ColRef(a), ScalarExpr::ColRef(b)) = (left.as_ref(), right.as_ref())
            {
                if left_cols.contains(a) && right_cols.contains(b) {
                    return Some((*a, *b));
                }
                if left_cols.contains(b) && right_cols.contains(a) {
                    return Some((*b, *a));
                }
            }
        }
        None
    }

    /// Rewrite column references through `map` (old → new). References not
    /// in the map are left untouched.
    pub fn remap_cols(&self, map: &dyn Fn(ColId) -> ColId) -> ScalarExpr {
        match self {
            ScalarExpr::ColRef(c) => ScalarExpr::ColRef(map(*c)),
            ScalarExpr::Const(d) => ScalarExpr::Const(d.clone()),
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(left.remap_cols(map)),
                right: Box::new(right.remap_cols(map)),
            },
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Box::new(left.remap_cols(map)),
                right: Box::new(right.remap_cols(map)),
            },
            ScalarExpr::And(v) => ScalarExpr::And(v.iter().map(|e| e.remap_cols(map)).collect()),
            ScalarExpr::Or(v) => ScalarExpr::Or(v.iter().map(|e| e.remap_cols(map)).collect()),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_cols(map))),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.remap_cols(map))),
            ScalarExpr::Case {
                branches,
                else_value,
            } => ScalarExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_cols(map), v.remap_cols(map)))
                    .collect(),
                else_value: else_value.as_ref().map(|e| Box::new(e.remap_cols(map))),
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.remap_cols(map)),
                list: list.iter().map(|e| e.remap_cols(map)).collect(),
                negated: *negated,
            },
            ScalarExpr::Agg {
                func,
                arg,
                distinct,
            } => ScalarExpr::Agg {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.remap_cols(map))),
                distinct: *distinct,
            },
            ScalarExpr::Exists { negated, subquery } => ScalarExpr::Exists {
                negated: *negated,
                subquery: Box::new(subquery.remap_outer_cols(map)),
            },
            ScalarExpr::InSubquery {
                expr,
                subquery,
                subquery_col,
                negated,
            } => ScalarExpr::InSubquery {
                expr: Box::new(expr.remap_cols(map)),
                subquery: Box::new(subquery.remap_outer_cols(map)),
                subquery_col: *subquery_col,
                negated: *negated,
            },
            ScalarExpr::ScalarSubquery {
                subquery,
                subquery_col,
            } => ScalarExpr::ScalarSubquery {
                subquery: Box::new(subquery.remap_outer_cols(map)),
                subquery_col: *subquery_col,
            },
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::ColRef(c) => write!(f, "{c}"),
            ScalarExpr::Const(d) => write!(f, "{d}"),
            ScalarExpr::Cmp { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::And(v) => {
                let parts: Vec<String> = v.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            ScalarExpr::Or(v) => {
                let parts: Vec<String> = v.iter().map(|e| e.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
            ScalarExpr::IsNull(e) => write!(f, "{e} IS NULL"),
            ScalarExpr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            ScalarExpr::Case {
                branches,
                else_value,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_value {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "{expr} {}IN ({})",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            ScalarExpr::Agg {
                func,
                arg,
                distinct,
            } => match arg {
                Some(a) => write!(
                    f,
                    "{}({}{a})",
                    func.name(),
                    if *distinct { "DISTINCT " } else { "" }
                ),
                None => write!(f, "count(*)"),
            },
            ScalarExpr::Exists { negated, .. } => {
                write!(
                    f,
                    "{}EXISTS(<subquery>)",
                    if *negated { "NOT " } else { "" }
                )
            }
            ScalarExpr::InSubquery { expr, negated, .. } => {
                write!(
                    f,
                    "{expr} {}IN (<subquery>)",
                    if *negated { "NOT " } else { "" }
                )
            }
            ScalarExpr::ScalarSubquery { .. } => write!(f, "(<scalar subquery>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_and_simplifies() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::Const(Datum::Bool(true)),
            ScalarExpr::and(vec![
                ScalarExpr::col_eq_col(ColId(1), ColId(2)),
                ScalarExpr::col_eq_col(ColId(3), ColId(4)),
            ]),
        ]);
        assert_eq!(e.conjuncts().len(), 2);
        let single = ScalarExpr::and(vec![ScalarExpr::col_eq_col(ColId(1), ColId(2))]);
        assert!(matches!(single, ScalarExpr::Cmp { .. }));
        let empty = ScalarExpr::and(vec![]);
        assert_eq!(empty, ScalarExpr::Const(Datum::Bool(true)));
    }

    #[test]
    fn used_cols_dedups_and_sorts() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::col_eq_col(ColId(5), ColId(2)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(2)), ScalarExpr::int(10)),
        ]);
        assert_eq!(e.used_cols(), vec![ColId(2), ColId(5)]);
    }

    #[test]
    fn equi_pair_extraction_normalizes_sides() {
        let l = [ColId(1), ColId(2)];
        let r = [ColId(10), ColId(11)];
        let e1 = ScalarExpr::col_eq_col(ColId(1), ColId(10));
        let e2 = ScalarExpr::col_eq_col(ColId(10), ColId(1));
        assert_eq!(e1.as_equi_pair(&l, &r), Some((ColId(1), ColId(10))));
        assert_eq!(e2.as_equi_pair(&l, &r), Some((ColId(1), ColId(10))));
        // Both columns from the same side: not an equi-join pair.
        let e3 = ScalarExpr::col_eq_col(ColId(1), ColId(2));
        assert_eq!(e3.as_equi_pair(&l, &r), None);
        // Non-equality: not a pair.
        let e4 = ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(ColId(1)),
            ScalarExpr::col(ColId(10)),
        );
        assert_eq!(e4.as_equi_pair(&l, &r), None);
    }

    #[test]
    fn remap_rewrites_refs() {
        let e = ScalarExpr::col_eq_col(ColId(1), ColId(2));
        let m = e.remap_cols(&|c| if c == ColId(1) { ColId(100) } else { c });
        assert_eq!(m.used_cols(), vec![ColId(2), ColId(100)]);
    }

    #[test]
    fn cmp_commute_and_eval() {
        use std::cmp::Ordering::*;
        assert_eq!(CmpOp::Lt.commute(), CmpOp::Gt);
        assert!(CmpOp::Le.evaluate(Equal));
        assert!(!CmpOp::Ne.evaluate(Equal));
        assert!(CmpOp::Ne.evaluate(Less));
    }

    #[test]
    fn agg_split_metadata() {
        assert!(AggFunc::Sum.splittable());
        assert!(!AggFunc::Avg.splittable());
        assert_eq!(AggFunc::Count.combiner(), AggFunc::Sum);
        assert_eq!(AggFunc::Max.combiner(), AggFunc::Max);
    }

    #[test]
    fn display_readable() {
        let e = ScalarExpr::and(vec![
            ScalarExpr::col_eq_col(ColId(0), ColId(3)),
            ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(ColId(1)), ScalarExpr::int(7)),
        ]);
        assert_eq!(e.to_string(), "((c0 = c3) AND (c1 >= 7))");
    }
}
