//! `orca-expr` — the operator and expression model (§3 "Operators").
//!
//! "Orca represents all elements of a query and its optimization as
//! first-class citizens of equal footing": logical operators, physical
//! operators and scalar expressions. This crate defines those algebras,
//! independent of the Memo (which lives in `orca`), so that the SQL binder,
//! the DXL layer, the baseline planners and the execution engine can all
//! share one vocabulary.
//!
//! * [`scalar`] — scalar expressions (column refs, constants, predicates,
//!   arithmetic, CASE, aggregates, and pre-normalization subquery markers).
//! * [`logical`] — logical operators; [`logical::LogicalExpr`] is the tree
//!   form produced by the binder and copied into the Memo.
//! * [`physical`] — physical operators (scans, joins, aggs, motions,
//!   enforcers); [`physical::PhysicalPlan`] is the tree form extracted from
//!   the Memo and handed to an executor.
//! * [`props`] — logical property derivation (output columns, cardinality
//!   caps) and the [`props::OrderSpec`] sort-order vocabulary.
//! * [`registry`] — the column factory: query-wide `ColId` → name/type.
//! * [`pretty`] — EXPLAIN-style plan rendering.
//! * [`intern`] — hash-consing: structural dedup of scalar expressions
//!   (and, generically, any optimizer value) into compact u32 ids so
//!   hot-path equality and hashing become id compares.

pub mod intern;
pub mod logical;
pub mod physical;
pub mod pretty;
pub mod props;
pub mod registry;
pub mod scalar;

pub use intern::{ExprId, ExprInterner, Interner};
pub use logical::{JoinKind, LogicalExpr, LogicalOp, SetOpKind};
pub use physical::{MotionKind, PhysicalOp, PhysicalPlan};
pub use props::{DistSpec, OrderSpec, SortKey};
pub use registry::ColumnRegistry;
pub use scalar::{AggFunc, ArithOp, CmpOp, ScalarExpr};
