//! Logical operators.
//!
//! [`LogicalOp`] is *child-free*: children live either in a [`LogicalExpr`]
//! tree (binder output) or as Memo group references (inside `orca`). This is
//! what lets the Memo encode a huge plan space compactly — the same operator
//! value can sit in a tree or in a group expression.

use crate::props::OrderSpec;
use crate::scalar::ScalarExpr;
use orca_catalog::TableDesc;
use orca_common::{ColId, CteId, Datum, Result};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Shared table descriptor that hashes/compares by MdId (descriptors are
/// immutable per version, so the id is the identity).
#[derive(Debug, Clone)]
pub struct TableRef(pub Arc<TableDesc>);

impl PartialEq for TableRef {
    fn eq(&self, other: &Self) -> bool {
        self.0.mdid == other.0.mdid
    }
}
impl Eq for TableRef {}
impl Hash for TableRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.mdid.hash(state);
    }
}

impl std::ops::Deref for TableRef {
    type Target = TableDesc;
    fn deref(&self) -> &TableDesc {
        &self.0
    }
}

/// Join flavors. Left-variants suffice: the binder normalizes RIGHT joins by
/// swapping inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    /// `EXISTS` / `IN` unnesting.
    LeftSemi,
    /// `NOT EXISTS` / `NOT IN` unnesting.
    LeftAntiSemi,
}

impl JoinKind {
    pub fn name(&self) -> &'static str {
        match self {
            JoinKind::Inner => "Inner",
            JoinKind::LeftOuter => "LeftOuter",
            JoinKind::LeftSemi => "LeftSemi",
            JoinKind::LeftAntiSemi => "LeftAntiSemi",
        }
    }

    /// Commutativity only holds for inner joins (in our rule set).
    pub fn is_commutable(&self) -> bool {
        matches!(self, JoinKind::Inner)
    }

    /// Whether the join outputs right-side columns.
    pub fn outputs_right(&self) -> bool {
        matches!(self, JoinKind::Inner | JoinKind::LeftOuter)
    }
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    UnionAll,
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn name(&self) -> &'static str {
        match self {
            SetOpKind::UnionAll => "UnionAll",
            SetOpKind::Union => "Union",
            SetOpKind::Intersect => "Intersect",
            SetOpKind::Except => "Except",
        }
    }
}

/// Stage marker for split (two-stage) aggregation (§7.2.2 "multi-stage
/// aggregation"): a `Local` agg computes partial results wherever its input
/// lives; the `Global` agg combines partials after redistribution. `Single`
/// is an unsplit aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggStage {
    Single,
    Local,
    Global,
}

impl AggStage {
    pub fn name(&self) -> &'static str {
        match self {
            AggStage::Single => "Single",
            AggStage::Local => "Local",
            AggStage::Global => "Global",
        }
    }

    pub fn from_name(s: &str) -> Option<AggStage> {
        Some(match s {
            "Single" => AggStage::Single,
            "Local" => AggStage::Local,
            "Global" => AggStage::Global,
            _ => return None,
        })
    }
}

/// A logical operator (child-free; arity listed per variant).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Leaf: read a base table. `cols[i]` is the query-wide id bound to the
    /// table's i-th column. `parts` restricts scanned partitions (`None` =
    /// all) — produced by the static partition-elimination rule.
    Get {
        table: TableRef,
        cols: Vec<ColId>,
        parts: Option<Vec<usize>>,
    },
    /// Unary: filter by a predicate.
    Select { pred: ScalarExpr },
    /// Unary: compute projections; output columns are exactly the listed
    /// ids (pass-through entries are plain `ColRef`s).
    Project { exprs: Vec<(ColId, ScalarExpr)> },
    /// Binary: join children under a predicate.
    Join { kind: JoinKind, pred: ScalarExpr },
    /// Unary: grouped aggregation; output is `group_cols ++ agg ids`.
    GbAgg {
        group_cols: Vec<ColId>,
        aggs: Vec<(ColId, ScalarExpr)>,
        stage: AggStage,
    },
    /// Unary: ORDER BY + OFFSET/LIMIT. The order is a *logical* requirement
    /// here; physical plans satisfy it via Sort enforcers.
    Limit {
        order: OrderSpec,
        offset: u64,
        count: Option<u64>,
    },
    /// N-ary: set operation. `output` are fresh ids; `input_cols[i]` aligns
    /// child i's columns with the output positions.
    SetOp {
        kind: SetOpKind,
        output: Vec<ColId>,
        input_cols: Vec<Vec<ColId>>,
    },
    /// Binary: evaluate child 0 (the CTE producer side) once, then child 1
    /// (the consuming tree). The paper's producer-consumer WITH model.
    Sequence { id: CteId },
    /// Unary: marks the shared subtree; output columns are `cols`.
    CteProducer { id: CteId, cols: Vec<ColId> },
    /// Leaf: reads the producer's materialized output. `cols` are fresh ids
    /// aligned positionally with the producer's `cols`.
    CteConsumer {
        id: CteId,
        cols: Vec<ColId>,
        producer_cols: Vec<ColId>,
    },
    /// Leaf: literal rows.
    ConstTable {
        cols: Vec<ColId>,
        rows: Vec<Vec<Datum>>,
    },
    /// Unary: runtime assertion that the child yields at most one row
    /// (scalar-subquery semantics).
    MaxOneRow,
}

impl LogicalOp {
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Get { .. } => "Get",
            LogicalOp::Select { .. } => "Select",
            LogicalOp::Project { .. } => "Project",
            LogicalOp::Join { kind, .. } => match kind {
                JoinKind::Inner => "InnerJoin",
                JoinKind::LeftOuter => "LeftOuterJoin",
                JoinKind::LeftSemi => "LeftSemiJoin",
                JoinKind::LeftAntiSemi => "LeftAntiSemiJoin",
            },
            LogicalOp::GbAgg { .. } => "GbAgg",
            LogicalOp::Limit { .. } => "Limit",
            LogicalOp::SetOp { kind, .. } => kind.name(),
            LogicalOp::Sequence { .. } => "Sequence",
            LogicalOp::CteProducer { .. } => "CTEProducer",
            LogicalOp::CteConsumer { .. } => "CTEConsumer",
            LogicalOp::ConstTable { .. } => "ConstTable",
            LogicalOp::MaxOneRow => "MaxOneRow",
        }
    }

    pub fn arity(&self) -> usize {
        match self {
            LogicalOp::Get { .. }
            | LogicalOp::CteConsumer { .. }
            | LogicalOp::ConstTable { .. } => 0,
            LogicalOp::Select { .. }
            | LogicalOp::Project { .. }
            | LogicalOp::GbAgg { .. }
            | LogicalOp::Limit { .. }
            | LogicalOp::CteProducer { .. }
            | LogicalOp::MaxOneRow => 1,
            LogicalOp::Join { .. } | LogicalOp::Sequence { .. } => 2,
            LogicalOp::SetOp { input_cols, .. } => input_cols.len(),
        }
    }

    /// Output columns given each child's output columns.
    pub fn output_cols(&self, child_outputs: &[Vec<ColId>]) -> Vec<ColId> {
        match self {
            LogicalOp::Get { cols, .. } => cols.clone(),
            LogicalOp::Select { .. } | LogicalOp::Limit { .. } | LogicalOp::MaxOneRow => {
                child_outputs[0].clone()
            }
            LogicalOp::Project { exprs } => exprs.iter().map(|(c, _)| *c).collect(),
            LogicalOp::Join { kind, .. } => {
                let mut out = child_outputs[0].clone();
                if kind.outputs_right() {
                    out.extend_from_slice(&child_outputs[1]);
                }
                out
            }
            LogicalOp::GbAgg {
                group_cols, aggs, ..
            } => {
                let mut out = group_cols.clone();
                out.extend(aggs.iter().map(|(c, _)| *c));
                out
            }
            LogicalOp::SetOp { output, .. } => output.clone(),
            LogicalOp::Sequence { .. } => child_outputs.last().cloned().unwrap_or_default(),
            LogicalOp::CteProducer { cols, .. } => cols.clone(),
            LogicalOp::CteConsumer { cols, .. } => cols.clone(),
            LogicalOp::ConstTable { cols, .. } => cols.clone(),
        }
    }

    /// Columns this operator's own scalars reference (children not
    /// included).
    pub fn local_used_cols(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        self.for_each_scalar(&mut |e| out.extend(e.used_cols()));
        match self {
            LogicalOp::GbAgg { group_cols, .. } => out.extend_from_slice(group_cols),
            LogicalOp::Limit { order, .. } => out.extend(order.cols()),
            LogicalOp::SetOp { input_cols, .. } => {
                for ic in input_cols {
                    out.extend_from_slice(ic);
                }
            }
            LogicalOp::CteConsumer { producer_cols, .. } => {
                out.extend_from_slice(producer_cols);
            }
            _ => {}
        }
        out.sort();
        out.dedup();
        out
    }

    /// Visit every scalar expression owned by this operator.
    pub fn for_each_scalar(&self, f: &mut dyn FnMut(&ScalarExpr)) {
        match self {
            LogicalOp::Select { pred } | LogicalOp::Join { pred, .. } => f(pred),
            LogicalOp::Project { exprs } => {
                for (_, e) in exprs {
                    f(e);
                }
            }
            LogicalOp::GbAgg { aggs, .. } => {
                for (_, e) in aggs {
                    f(e);
                }
            }
            _ => {}
        }
    }

    /// Rebuild the operator with every scalar mapped through `f`.
    pub fn map_scalars(&self, f: &dyn Fn(&ScalarExpr) -> ScalarExpr) -> LogicalOp {
        match self {
            LogicalOp::Select { pred } => LogicalOp::Select { pred: f(pred) },
            LogicalOp::Join { kind, pred } => LogicalOp::Join {
                kind: *kind,
                pred: f(pred),
            },
            LogicalOp::Project { exprs } => LogicalOp::Project {
                exprs: exprs.iter().map(|(c, e)| (*c, f(e))).collect(),
            },
            LogicalOp::GbAgg {
                group_cols,
                aggs,
                stage,
            } => LogicalOp::GbAgg {
                group_cols: group_cols.clone(),
                aggs: aggs.iter().map(|(c, e)| (*c, f(e))).collect(),
                stage: *stage,
            },
            other => other.clone(),
        }
    }

    /// Whether any owned scalar still contains a subquery marker.
    pub fn has_subquery(&self) -> bool {
        let mut found = false;
        self.for_each_scalar(&mut |e| found |= e.has_subquery());
        found
    }
}

/// A logical expression tree — the binder's output and the optimizer's
/// input ("the DXL query message is parsed and transformed to an in-memory
/// logical expression tree that is copied-in to the Memo", §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicalExpr {
    pub op: LogicalOp,
    pub children: Vec<LogicalExpr>,
}

impl LogicalExpr {
    pub fn new(op: LogicalOp, children: Vec<LogicalExpr>) -> LogicalExpr {
        debug_assert_eq!(
            op.arity(),
            children.len(),
            "arity mismatch for {}",
            op.name()
        );
        LogicalExpr { op, children }
    }

    pub fn leaf(op: LogicalOp) -> LogicalExpr {
        LogicalExpr::new(op, Vec::new())
    }

    /// Columns this tree outputs.
    pub fn output_cols(&self) -> Vec<ColId> {
        let child_outputs: Vec<Vec<ColId>> =
            self.children.iter().map(|c| c.output_cols()).collect();
        self.op.output_cols(&child_outputs)
    }

    /// Columns produced *anywhere* inside this tree (not just at the root).
    pub fn produced_cols(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        self.collect_produced(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_produced(&self, out: &mut Vec<ColId>) {
        out.extend(self.output_cols());
        for c in &self.children {
            c.collect_produced(out);
        }
    }

    /// Columns referenced inside the tree but produced outside it — the
    /// correlation witnesses that drive subquery unnesting (§7.2.2
    /// "Correlated Subqueries").
    pub fn outer_refs(&self) -> Vec<ColId> {
        let produced = self.produced_cols();
        let mut used = Vec::new();
        self.collect_used(&mut used);
        used.sort();
        used.dedup();
        used.retain(|c| !produced.contains(c));
        used
    }

    fn collect_used(&self, out: &mut Vec<ColId>) {
        out.extend(self.op.local_used_cols());
        // Descend into subquery markers' trees too.
        self.op
            .for_each_scalar(&mut |e| collect_subquery_used(e, out));
        for c in &self.children {
            c.collect_used(out);
        }
    }

    /// Remap references to *outer* columns (those not produced inside this
    /// tree) through `map`. Inner columns are untouched.
    pub fn remap_outer_cols(&self, map: &dyn Fn(ColId) -> ColId) -> LogicalExpr {
        let produced = self.produced_cols();
        let wrapper = |c: ColId| if produced.contains(&c) { c } else { map(c) };
        self.remap_all(&wrapper)
    }

    /// Remap *every* column reference in the tree (outer and inner alike).
    /// Used when duplicating a subtree (e.g. CTE inlining) so the copy gets
    /// fresh column identities.
    pub fn remap_all(&self, map: &dyn Fn(ColId) -> ColId) -> LogicalExpr {
        let op = self.op.map_scalars(&|e| e.remap_cols(map));
        let op = remap_op_cols(&op, map);
        LogicalExpr {
            op,
            children: self.children.iter().map(|c| c.remap_all(map)).collect(),
        }
    }

    /// Total number of operators in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(LogicalExpr::size).sum::<usize>()
    }

    /// Whether any operator in the tree still holds a subquery marker.
    pub fn has_subquery(&self) -> bool {
        self.op.has_subquery() || self.children.iter().any(LogicalExpr::has_subquery)
    }

    /// Visit every base-table reference in the tree, descending into
    /// subquery markers that have not been unnested yet.
    pub fn visit_tables(&self, f: &mut dyn FnMut(&TableRef)) {
        if let LogicalOp::Get { table, .. } = &self.op {
            f(table);
        }
        self.op.for_each_scalar(&mut |e| visit_scalar_tables(e, f));
        for c in &self.children {
            c.visit_tables(f);
        }
    }

    /// Rebuild the tree with every base-table reference mapped through `f`
    /// — e.g. rebinding a cached query shape to the *current* catalog
    /// version of each table. Column ids are untouched, so the mapped
    /// descriptor must be positionally compatible with the original.
    pub fn try_map_tables(
        &self,
        f: &mut dyn FnMut(&TableRef) -> Result<TableRef>,
    ) -> Result<LogicalExpr> {
        let op = match &self.op {
            LogicalOp::Get { table, cols, parts } => LogicalOp::Get {
                table: f(table)?,
                cols: cols.clone(),
                parts: parts.clone(),
            },
            LogicalOp::Select { pred } => LogicalOp::Select {
                pred: try_map_scalar_tables(pred, f)?,
            },
            LogicalOp::Join { kind, pred } => LogicalOp::Join {
                kind: *kind,
                pred: try_map_scalar_tables(pred, f)?,
            },
            LogicalOp::Project { exprs } => LogicalOp::Project {
                exprs: exprs
                    .iter()
                    .map(|(c, e)| Ok((*c, try_map_scalar_tables(e, f)?)))
                    .collect::<Result<Vec<_>>>()?,
            },
            LogicalOp::GbAgg {
                group_cols,
                aggs,
                stage,
            } => LogicalOp::GbAgg {
                group_cols: group_cols.clone(),
                aggs: aggs
                    .iter()
                    .map(|(c, e)| Ok((*c, try_map_scalar_tables(e, f)?)))
                    .collect::<Result<Vec<_>>>()?,
                stage: *stage,
            },
            other => other.clone(),
        };
        let children = self
            .children
            .iter()
            .map(|c| c.try_map_tables(f))
            .collect::<Result<Vec<_>>>()?;
        Ok(LogicalExpr { op, children })
    }
}

fn visit_scalar_tables(e: &ScalarExpr, f: &mut dyn FnMut(&TableRef)) {
    match e {
        ScalarExpr::Exists { subquery, .. } | ScalarExpr::ScalarSubquery { subquery, .. } => {
            subquery.visit_tables(f);
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            visit_scalar_tables(expr, f);
            subquery.visit_tables(f);
        }
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            visit_scalar_tables(left, f);
            visit_scalar_tables(right, f);
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => {
            for x in v {
                visit_scalar_tables(x, f);
            }
        }
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => visit_scalar_tables(x, f),
        ScalarExpr::Case {
            branches,
            else_value,
        } => {
            for (c, v) in branches {
                visit_scalar_tables(c, f);
                visit_scalar_tables(v, f);
            }
            if let Some(ev) = else_value {
                visit_scalar_tables(ev, f);
            }
        }
        ScalarExpr::InList { expr, list, .. } => {
            visit_scalar_tables(expr, f);
            for x in list {
                visit_scalar_tables(x, f);
            }
        }
        ScalarExpr::Agg { arg: Some(a), .. } => visit_scalar_tables(a, f),
        _ => {}
    }
}

fn try_map_scalar_tables(
    e: &ScalarExpr,
    f: &mut dyn FnMut(&TableRef) -> Result<TableRef>,
) -> Result<ScalarExpr> {
    Ok(match e {
        ScalarExpr::Exists { negated, subquery } => ScalarExpr::Exists {
            negated: *negated,
            subquery: Box::new(subquery.try_map_tables(f)?),
        },
        ScalarExpr::InSubquery {
            expr,
            subquery,
            subquery_col,
            negated,
        } => ScalarExpr::InSubquery {
            expr: Box::new(try_map_scalar_tables(expr, f)?),
            subquery: Box::new(subquery.try_map_tables(f)?),
            subquery_col: *subquery_col,
            negated: *negated,
        },
        ScalarExpr::ScalarSubquery {
            subquery,
            subquery_col,
        } => ScalarExpr::ScalarSubquery {
            subquery: Box::new(subquery.try_map_tables(f)?),
            subquery_col: *subquery_col,
        },
        ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op: *op,
            left: Box::new(try_map_scalar_tables(left, f)?),
            right: Box::new(try_map_scalar_tables(right, f)?),
        },
        ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
            op: *op,
            left: Box::new(try_map_scalar_tables(left, f)?),
            right: Box::new(try_map_scalar_tables(right, f)?),
        },
        ScalarExpr::And(v) => ScalarExpr::And(
            v.iter()
                .map(|x| try_map_scalar_tables(x, f))
                .collect::<Result<Vec<_>>>()?,
        ),
        ScalarExpr::Or(v) => ScalarExpr::Or(
            v.iter()
                .map(|x| try_map_scalar_tables(x, f))
                .collect::<Result<Vec<_>>>()?,
        ),
        ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(try_map_scalar_tables(x, f)?)),
        ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(try_map_scalar_tables(x, f)?)),
        ScalarExpr::Case {
            branches,
            else_value,
        } => ScalarExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((try_map_scalar_tables(c, f)?, try_map_scalar_tables(v, f)?)))
                .collect::<Result<Vec<_>>>()?,
            else_value: match else_value {
                Some(ev) => Some(Box::new(try_map_scalar_tables(ev, f)?)),
                None => None,
            },
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(try_map_scalar_tables(expr, f)?),
            list: list
                .iter()
                .map(|x| try_map_scalar_tables(x, f))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } => ScalarExpr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(try_map_scalar_tables(a, f)?)),
                None => None,
            },
            distinct: *distinct,
        },
        other @ (ScalarExpr::ColRef(_) | ScalarExpr::Const(_)) => other.clone(),
    })
}

/// Remap the column ids an operator *defines or lists* (scalars are
/// handled separately by `map_scalars`).
fn remap_op_cols(op: &LogicalOp, map: &dyn Fn(ColId) -> ColId) -> LogicalOp {
    let mv = |cols: &[ColId]| cols.iter().map(|c| map(*c)).collect::<Vec<_>>();
    match op {
        LogicalOp::Get { table, cols, parts } => LogicalOp::Get {
            table: table.clone(),
            cols: mv(cols),
            parts: parts.clone(),
        },
        LogicalOp::Project { exprs } => LogicalOp::Project {
            exprs: exprs.iter().map(|(c, e)| (map(*c), e.clone())).collect(),
        },
        LogicalOp::GbAgg {
            group_cols,
            aggs,
            stage,
        } => LogicalOp::GbAgg {
            group_cols: mv(group_cols),
            aggs: aggs.iter().map(|(c, e)| (map(*c), e.clone())).collect(),
            stage: *stage,
        },
        LogicalOp::Limit {
            order,
            offset,
            count,
        } => LogicalOp::Limit {
            order: crate::props::OrderSpec(
                order
                    .0
                    .iter()
                    .map(|k| crate::props::SortKey {
                        col: map(k.col),
                        desc: k.desc,
                    })
                    .collect(),
            ),
            offset: *offset,
            count: *count,
        },
        LogicalOp::SetOp {
            kind,
            output,
            input_cols,
        } => LogicalOp::SetOp {
            kind: *kind,
            output: mv(output),
            input_cols: input_cols.iter().map(|ic| mv(ic)).collect(),
        },
        LogicalOp::CteProducer { id, cols } => LogicalOp::CteProducer {
            id: *id,
            cols: mv(cols),
        },
        LogicalOp::CteConsumer {
            id,
            cols,
            producer_cols,
        } => LogicalOp::CteConsumer {
            id: *id,
            cols: mv(cols),
            producer_cols: producer_cols.clone(),
        },
        LogicalOp::ConstTable { cols, rows } => LogicalOp::ConstTable {
            cols: mv(cols),
            rows: rows.clone(),
        },
        other => other.clone(),
    }
}

fn collect_subquery_used(e: &ScalarExpr, out: &mut Vec<ColId>) {
    match e {
        ScalarExpr::Exists { subquery, .. } => {
            out.extend(subquery.outer_refs());
        }
        ScalarExpr::InSubquery { expr, subquery, .. } => {
            collect_subquery_used(expr, out);
            out.extend(subquery.outer_refs());
        }
        ScalarExpr::ScalarSubquery { subquery, .. } => {
            out.extend(subquery.outer_refs());
        }
        ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
            collect_subquery_used(left, out);
            collect_subquery_used(right, out);
        }
        ScalarExpr::And(v) | ScalarExpr::Or(v) => {
            for x in v {
                collect_subquery_used(x, out);
            }
        }
        ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => collect_subquery_used(x, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Distribution};
    use orca_common::{DataType, MdId, SysId};

    fn table(name: &str, oid: u64, ncols: usize) -> TableRef {
        TableRef(Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, oid, 1),
            name,
            (0..ncols)
                .map(|i| ColumnMeta::new(&format!("c{i}"), DataType::Int))
                .collect(),
            Distribution::Hashed(vec![0]),
        )))
    }

    fn get(name: &str, oid: u64, first_col: u32, ncols: usize) -> LogicalExpr {
        LogicalExpr::leaf(LogicalOp::Get {
            table: table(name, oid, ncols),
            cols: (0..ncols as u32).map(|i| ColId(first_col + i)).collect(),
            parts: None,
        })
    }

    #[test]
    fn join_output_cols_by_kind() {
        let t1 = get("t1", 1, 0, 2);
        let t2 = get("t2", 2, 10, 2);
        let inner = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(10)),
            },
            vec![t1.clone(), t2.clone()],
        );
        assert_eq!(
            inner.output_cols(),
            vec![ColId(0), ColId(1), ColId(10), ColId(11)]
        );
        let semi = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::LeftSemi,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(10)),
            },
            vec![t1, t2],
        );
        assert_eq!(semi.output_cols(), vec![ColId(0), ColId(1)]);
    }

    #[test]
    fn outer_refs_detect_correlation() {
        // Subquery: SELECT ... FROM t2 WHERE t2.c10 = outer.c0
        let sub = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::col_eq_col(ColId(10), ColId(0)),
            },
            vec![get("t2", 2, 10, 2)],
        );
        assert_eq!(sub.outer_refs(), vec![ColId(0)]);
        // Uncorrelated subquery has none.
        let sub2 = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::cmp(
                    crate::scalar::CmpOp::Gt,
                    ScalarExpr::col(ColId(10)),
                    ScalarExpr::int(5),
                ),
            },
            vec![get("t2", 2, 10, 2)],
        );
        assert!(sub2.outer_refs().is_empty());
    }

    #[test]
    fn gbagg_outputs_groups_then_aggs() {
        let agg = LogicalExpr::new(
            LogicalOp::GbAgg {
                stage: AggStage::Single,
                group_cols: vec![ColId(1)],
                aggs: vec![(
                    ColId(50),
                    ScalarExpr::Agg {
                        func: crate::scalar::AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col(ColId(0)))),
                        distinct: false,
                    },
                )],
            },
            vec![get("t1", 1, 0, 2)],
        );
        assert_eq!(agg.output_cols(), vec![ColId(1), ColId(50)]);
        assert!(!agg.has_subquery());
    }

    #[test]
    fn remap_outer_only() {
        let sub = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::col_eq_col(ColId(10), ColId(0)),
            },
            vec![get("t2", 2, 10, 2)],
        );
        let remapped = sub.remap_outer_cols(&|c| ColId(c.0 + 100));
        // Outer ref c0 → c100; inner c10 untouched.
        assert_eq!(remapped.outer_refs(), vec![ColId(100)]);
        assert_eq!(remapped.output_cols(), vec![ColId(10), ColId(11)]);
    }

    #[test]
    fn size_counts_operators() {
        let t1 = get("t1", 1, 0, 2);
        let sel = LogicalExpr::new(
            LogicalOp::Select {
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(1)),
            },
            vec![t1],
        );
        assert_eq!(sel.size(), 2);
    }

    #[test]
    #[cfg(debug_assertions)] // debug_assert compiles out in release
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_in_debug() {
        let _ = LogicalExpr::new(LogicalOp::MaxOneRow, vec![]);
    }
}
