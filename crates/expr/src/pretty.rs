//! EXPLAIN-style rendering of logical and physical trees.

use crate::logical::{LogicalExpr, LogicalOp};
use crate::physical::{PhysicalOp, PhysicalPlan};

/// Render a logical tree as an indented outline.
pub fn explain_logical(expr: &LogicalExpr) -> String {
    let mut out = String::new();
    fmt_logical(expr, 0, &mut out);
    out
}

fn fmt_logical(e: &LogicalExpr, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(e.op.name());
    match &e.op {
        LogicalOp::Get { table, parts, .. } => {
            out.push_str(&format!("({})", table.name));
            if let Some(p) = parts {
                out.push_str(&format!(" parts={}/{}", p.len(), table.num_partitions()));
            }
        }
        LogicalOp::Select { pred } => out.push_str(&format!(" {pred}")),
        LogicalOp::Join { pred, .. } => out.push_str(&format!(" on {pred}")),
        LogicalOp::GbAgg { group_cols, .. } => {
            out.push_str(&format!(
                " by [{}]",
                group_cols
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        LogicalOp::Limit {
            order,
            offset,
            count,
        } => {
            out.push_str(&format!(" order={order} offset={offset} count={count:?}"));
        }
        _ => {}
    }
    out.push('\n');
    for c in &e.children {
        fmt_logical(c, depth + 1, out);
    }
}

/// Render a physical plan as an indented outline (the shape shown in
/// Figure 6's "extracted final plan").
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    fmt_physical(plan, 0, &mut out);
    out
}

fn fmt_physical(p: &PhysicalPlan, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&p.op.name());
    match &p.op {
        PhysicalOp::Filter { pred } => out.push_str(&format!(" {pred}")),
        PhysicalOp::HashJoin {
            left_keys,
            right_keys,
            ..
        } => {
            let pairs: Vec<String> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l}={r}"))
                .collect();
            out.push_str(&format!(" on [{}]", pairs.join(", ")));
        }
        PhysicalOp::NLJoin { pred, .. } => out.push_str(&format!(" on {pred}")),
        PhysicalOp::TableScan {
            parts: Some(p),
            table,
            ..
        } => {
            out.push_str(&format!(" parts={}/{}", p.len(), table.num_partitions()));
        }
        PhysicalOp::HashAgg { group_cols, .. } | PhysicalOp::StreamAgg { group_cols, .. }
            if !group_cols.is_empty() =>
        {
            out.push_str(&format!(
                " by [{}]",
                group_cols
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        PhysicalOp::Limit { offset, count, .. } => {
            out.push_str(&format!(" offset={offset} count={count:?}"));
        }
        _ => {}
    }
    out.push('\n');
    for c in &p.children {
        fmt_physical(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinKind, TableRef};
    use crate::physical::MotionKind;
    use crate::scalar::ScalarExpr;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{ColId, DataType, MdId, SysId};
    use std::sync::Arc;

    fn tref(oid: u64) -> TableRef {
        TableRef(Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, oid, 1),
            &format!("t{oid}"),
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Random,
        )))
    }

    #[test]
    fn logical_tree_renders_nested() {
        let e = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(1)),
            },
            vec![
                LogicalExpr::leaf(LogicalOp::Get {
                    table: tref(1),
                    cols: vec![ColId(0)],
                    parts: None,
                }),
                LogicalExpr::leaf(LogicalOp::Get {
                    table: tref(2),
                    cols: vec![ColId(1)],
                    parts: None,
                }),
            ],
        );
        let s = explain_logical(&e);
        assert!(s.contains("InnerJoin on (c0 = c1)"));
        assert!(s.contains("  Get(t1)"));
        assert!(s.contains("  Get(t2)"));
    }

    #[test]
    fn physical_plan_renders_motions() {
        let p = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![PhysicalPlan::leaf(PhysicalOp::TableScan {
                table: tref(1),
                cols: vec![ColId(0)],
                parts: None,
            })],
        );
        let s = explain_physical(&p);
        assert!(s.starts_with("Gather\n"));
        assert!(s.contains("  TableScan(t1)"));
    }
}
