//! Physical operators and executable plan trees.
//!
//! Like [`crate::logical::LogicalOp`], [`PhysicalOp`] is child-free so it
//! can live both in Memo group expressions and in extracted
//! [`PhysicalPlan`] trees. Motions and Sort are the *enforcer* operators of
//! §4.1 — they change only physical properties, never logical content.

use crate::logical::{AggStage, JoinKind, SetOpKind, TableRef};
use crate::props::{DistSpec, OrderSpec};
use crate::scalar::ScalarExpr;
use orca_common::{ColId, CteId, Datum};

/// Data-movement operators (§4.1): "Gather operator gathers tuples from all
/// segments to the master. GatherMerge gathers sorted data from all
/// segments to the master, while keeping the sort order. Redistribute
/// distributes tuples across segments based on the hash value of given
/// argument." Broadcast replicates its input to all segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MotionKind {
    Gather,
    GatherMerge(OrderSpec),
    Redistribute(Vec<ColId>),
    Broadcast,
}

impl MotionKind {
    pub fn name(&self) -> &'static str {
        match self {
            MotionKind::Gather => "Gather",
            MotionKind::GatherMerge(_) => "GatherMerge",
            MotionKind::Redistribute(_) => "Redistribute",
            MotionKind::Broadcast => "Broadcast",
        }
    }

    /// The distribution this motion delivers.
    pub fn delivered_dist(&self) -> DistSpec {
        match self {
            MotionKind::Gather | MotionKind::GatherMerge(_) => DistSpec::Singleton,
            MotionKind::Redistribute(cols) => DistSpec::Hashed(cols.clone()),
            MotionKind::Broadcast => DistSpec::Replicated,
        }
    }

    /// The order this motion preserves from its input.
    pub fn delivered_order(&self, input: &OrderSpec) -> OrderSpec {
        match self {
            // GatherMerge preserves exactly the merge order.
            MotionKind::GatherMerge(o) => o.clone(),
            // Streams interleave arbitrarily across senders.
            _ => {
                let _ = input;
                OrderSpec::any()
            }
        }
    }
}

/// A physical operator (child-free; see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhysicalOp {
    /// Leaf: sequential scan. `parts` = surviving partitions after static
    /// elimination (`None` = unpartitioned or all).
    TableScan {
        table: TableRef,
        cols: Vec<ColId>,
        parts: Option<Vec<usize>>,
    },
    /// Leaf: ordered scan through a covering index — delivers sort order on
    /// the index key columns without a Sort.
    IndexScan {
        table: TableRef,
        index_name: String,
        cols: Vec<ColId>,
        /// ColIds of the key columns, in key order.
        key_cols: Vec<ColId>,
        parts: Option<Vec<usize>>,
    },
    /// Unary: predicate filter.
    Filter { pred: ScalarExpr },
    /// Unary: projection/computation.
    Project { exprs: Vec<(ColId, ScalarExpr)> },
    /// Binary: hash join; build side is the right child.
    HashJoin {
        kind: JoinKind,
        left_keys: Vec<ColId>,
        right_keys: Vec<ColId>,
        residual: Option<ScalarExpr>,
    },
    /// Binary: nested-loops join; inner (right) side is re-scanned per
    /// outer row, so executors materialize it.
    NLJoin { kind: JoinKind, pred: ScalarExpr },
    /// Unary: hash aggregation. Empty `group_cols` = scalar aggregate.
    /// A `Local`-stage agg may aggregate in place over any distribution
    /// (its Global partner combines the partials); other stages need
    /// grouping keys co-located.
    HashAgg {
        group_cols: Vec<ColId>,
        aggs: Vec<(ColId, ScalarExpr)>,
        stage: AggStage,
    },
    /// Unary: sorted-input aggregation (requires order on `group_cols`).
    StreamAgg {
        group_cols: Vec<ColId>,
        aggs: Vec<(ColId, ScalarExpr)>,
        stage: AggStage,
    },
    /// Unary **enforcer**: sort.
    Sort { order: OrderSpec },
    /// Unary: OFFSET/LIMIT (executed where the data is singleton). The
    /// order spec is what the *logical* Limit demanded — the physical op
    /// requests it from its child; by execution time it is already
    /// enforced.
    Limit {
        order: OrderSpec,
        offset: u64,
        count: Option<u64>,
    },
    /// Unary **enforcer**: data movement.
    Motion { kind: MotionKind },
    /// Leaf: the receiving end of a sliced Motion. Never produced by the
    /// optimizer — the parallel executor's slicer replaces each Motion
    /// child with this placeholder when it cuts a plan into slices, and
    /// the interpreter resolves it against the interconnect's delivered
    /// stream for `motion`.
    ExchangeRecv { motion: usize },
    /// Unary: materialize child output (rewindability for NLJoin inners).
    Spool,
    /// Binary: run child 0 (CTE producer), then child 1 (consumer tree).
    Sequence { id: CteId },
    /// Unary: materialize the shared CTE result under `id`.
    CteProducer { id: CteId, cols: Vec<ColId> },
    /// Leaf: scan the materialized CTE.
    CteScan {
        id: CteId,
        cols: Vec<ColId>,
        producer_cols: Vec<ColId>,
    },
    /// Leaf: literal rows.
    ConstTable {
        cols: Vec<ColId>,
        rows: Vec<Vec<Datum>>,
    },
    /// Unary: runtime check that at most one row flows through.
    AssertOneRow,
    /// N-ary: bag union.
    UnionAll {
        output: Vec<ColId>,
        input_cols: Vec<Vec<ColId>>,
    },
    /// N-ary: hash-based INTERSECT / EXCEPT / UNION-distinct.
    HashSetOp {
        kind: SetOpKind,
        output: Vec<ColId>,
        input_cols: Vec<Vec<ColId>>,
    },
}

impl PhysicalOp {
    pub fn name(&self) -> String {
        match self {
            PhysicalOp::TableScan { table, .. } => format!("TableScan({})", table.name),
            PhysicalOp::IndexScan { index_name, .. } => format!("IndexScan({index_name})"),
            PhysicalOp::Filter { .. } => "Filter".into(),
            PhysicalOp::Project { .. } => "Project".into(),
            PhysicalOp::HashJoin { kind, .. } => format!("{}HashJoin", kind.name()),
            PhysicalOp::NLJoin { kind, .. } => format!("{}NLJoin", kind.name()),
            PhysicalOp::HashAgg { group_cols, .. } if group_cols.is_empty() => "ScalarAgg".into(),
            PhysicalOp::HashAgg {
                stage: AggStage::Local,
                ..
            } => "LocalHashAgg".into(),
            PhysicalOp::HashAgg { .. } => "HashAgg".into(),
            PhysicalOp::StreamAgg { .. } => "StreamAgg".into(),
            PhysicalOp::Sort { order } => format!("Sort{order}"),
            PhysicalOp::Limit { .. } => "Limit".into(),
            PhysicalOp::Motion { kind } => match kind {
                MotionKind::Redistribute(cols) => {
                    format!(
                        "Redistribute({:?})",
                        cols.iter().map(|c| c.0).collect::<Vec<_>>()
                    )
                }
                MotionKind::GatherMerge(o) => format!("GatherMerge{o}"),
                k => k.name().into(),
            },
            PhysicalOp::ExchangeRecv { motion } => format!("ExchangeRecv(m{motion})"),
            PhysicalOp::Spool => "Spool".into(),
            PhysicalOp::Sequence { id } => format!("Sequence({id})"),
            PhysicalOp::CteProducer { id, .. } => format!("CTEProducer({id})"),
            PhysicalOp::CteScan { id, .. } => format!("CTEScan({id})"),
            PhysicalOp::ConstTable { .. } => "ConstTable".into(),
            PhysicalOp::AssertOneRow => "AssertOneRow".into(),
            PhysicalOp::UnionAll { .. } => "UnionAll".into(),
            PhysicalOp::HashSetOp { kind, .. } => format!("Hash{}", kind.name()),
        }
    }

    pub fn arity(&self) -> usize {
        match self {
            PhysicalOp::TableScan { .. }
            | PhysicalOp::IndexScan { .. }
            | PhysicalOp::CteScan { .. }
            | PhysicalOp::ConstTable { .. }
            | PhysicalOp::ExchangeRecv { .. } => 0,
            PhysicalOp::Filter { .. }
            | PhysicalOp::Project { .. }
            | PhysicalOp::HashAgg { .. }
            | PhysicalOp::StreamAgg { .. }
            | PhysicalOp::Sort { .. }
            | PhysicalOp::Limit { .. }
            | PhysicalOp::Motion { .. }
            | PhysicalOp::Spool
            | PhysicalOp::CteProducer { .. }
            | PhysicalOp::AssertOneRow => 1,
            PhysicalOp::HashJoin { .. }
            | PhysicalOp::NLJoin { .. }
            | PhysicalOp::Sequence { .. } => 2,
            PhysicalOp::UnionAll { input_cols, .. } | PhysicalOp::HashSetOp { input_cols, .. } => {
                input_cols.len()
            }
        }
    }

    /// Output columns given child outputs (mirrors the logical derivation).
    pub fn output_cols(&self, child_outputs: &[Vec<ColId>]) -> Vec<ColId> {
        match self {
            PhysicalOp::TableScan { cols, .. }
            | PhysicalOp::IndexScan { cols, .. }
            | PhysicalOp::CteScan { cols, .. }
            | PhysicalOp::ConstTable { cols, .. }
            | PhysicalOp::CteProducer { cols, .. } => cols.clone(),
            PhysicalOp::Filter { .. }
            | PhysicalOp::Sort { .. }
            | PhysicalOp::Limit { .. }
            | PhysicalOp::Motion { .. }
            | PhysicalOp::Spool
            | PhysicalOp::AssertOneRow => child_outputs[0].clone(),
            PhysicalOp::Project { exprs } => exprs.iter().map(|(c, _)| *c).collect(),
            // The layout travels in-band with the delivered stream; it is
            // not statically known at the placeholder.
            PhysicalOp::ExchangeRecv { .. } => Vec::new(),
            PhysicalOp::HashJoin { kind, .. } | PhysicalOp::NLJoin { kind, .. } => {
                let mut out = child_outputs[0].clone();
                if kind.outputs_right() {
                    out.extend_from_slice(&child_outputs[1]);
                }
                out
            }
            PhysicalOp::HashAgg {
                group_cols, aggs, ..
            }
            | PhysicalOp::StreamAgg {
                group_cols, aggs, ..
            } => {
                let mut out = group_cols.clone();
                out.extend(aggs.iter().map(|(c, _)| *c));
                out
            }
            PhysicalOp::Sequence { .. } => child_outputs.last().cloned().unwrap_or_default(),
            PhysicalOp::UnionAll { output, .. } | PhysicalOp::HashSetOp { output, .. } => {
                output.clone()
            }
        }
    }

    /// Is this an enforcer (adds physical properties only)?
    pub fn is_enforcer(&self) -> bool {
        matches!(
            self,
            PhysicalOp::Sort { .. } | PhysicalOp::Motion { .. } | PhysicalOp::Spool
        )
    }

    /// Is this a motion (crosses the interconnect)?
    pub fn is_motion(&self) -> bool {
        matches!(self, PhysicalOp::Motion { .. })
    }
}

/// An executable plan tree — what plan extraction produces and the executor
/// consumes (the DXL plan of Figure 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhysicalPlan {
    pub op: PhysicalOp,
    pub children: Vec<PhysicalPlan>,
}

impl PhysicalPlan {
    pub fn new(op: PhysicalOp, children: Vec<PhysicalPlan>) -> PhysicalPlan {
        debug_assert_eq!(
            op.arity(),
            children.len(),
            "arity mismatch for {}",
            op.name()
        );
        PhysicalPlan { op, children }
    }

    pub fn leaf(op: PhysicalOp) -> PhysicalPlan {
        PhysicalPlan::new(op, Vec::new())
    }

    pub fn output_cols(&self) -> Vec<ColId> {
        let child_outputs: Vec<Vec<ColId>> =
            self.children.iter().map(|c| c.output_cols()).collect();
        self.op.output_cols(&child_outputs)
    }

    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PhysicalPlan::size).sum::<usize>()
    }

    /// Count of motion operators — a quick plan-shape fingerprint used in
    /// tests and the experiment reports.
    pub fn motion_count(&self) -> usize {
        let own = usize::from(self.op.is_motion());
        own + self
            .children
            .iter()
            .map(PhysicalPlan::motion_count)
            .sum::<usize>()
    }

    /// Depth-first preorder visit.
    pub fn visit(&self, f: &mut dyn FnMut(&PhysicalPlan)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Find all operators matching a predicate.
    pub fn find_ops(&self, pred: &dyn Fn(&PhysicalOp) -> bool) -> Vec<&PhysicalOp> {
        let mut out = Vec::new();
        self.visit_collect(pred, &mut out);
        out
    }

    fn visit_collect<'a>(
        &'a self,
        pred: &dyn Fn(&PhysicalOp) -> bool,
        out: &mut Vec<&'a PhysicalOp>,
    ) {
        if pred(&self.op) {
            out.push(&self.op);
        }
        for c in &self.children {
            c.visit_collect(pred, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, MdId, SysId};
    use std::sync::Arc;

    fn scan(oid: u64, first: u32, n: usize) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: TableRef(Arc::new(TableDesc::new(
                MdId::new(SysId::Gpdb, oid, 1),
                &format!("t{oid}"),
                (0..n)
                    .map(|i| ColumnMeta::new(&format!("c{i}"), DataType::Int))
                    .collect(),
                Distribution::Hashed(vec![0]),
            ))),
            cols: (0..n as u32).map(|i| ColId(first + i)).collect(),
            parts: None,
        })
    }

    #[test]
    fn motion_properties() {
        let g = MotionKind::Gather;
        assert_eq!(g.delivered_dist(), DistSpec::Singleton);
        assert!(g.delivered_order(&OrderSpec::by(&[ColId(1)])).is_any());
        let gm = MotionKind::GatherMerge(OrderSpec::by(&[ColId(1)]));
        assert_eq!(
            gm.delivered_order(&OrderSpec::any()),
            OrderSpec::by(&[ColId(1)])
        );
        let r = MotionKind::Redistribute(vec![ColId(3)]);
        assert_eq!(r.delivered_dist(), DistSpec::Hashed(vec![ColId(3)]));
        assert_eq!(MotionKind::Broadcast.delivered_dist(), DistSpec::Replicated);
    }

    #[test]
    fn plan_shape_helpers() {
        // Gather(HashJoin(Scan(t1), Redistribute(Scan(t2)))) — Figure 6's
        // right-hand extracted plan minus the sort.
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(1, 0, 2),
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Redistribute(vec![ColId(3)]),
                    },
                    vec![scan(2, 2, 2)],
                ),
            ],
        );
        let plan = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![join],
        );
        assert_eq!(plan.size(), 5);
        assert_eq!(plan.motion_count(), 2);
        assert_eq!(
            plan.output_cols(),
            vec![ColId(0), ColId(1), ColId(2), ColId(3)]
        );
        assert_eq!(
            plan.find_ops(&|op| matches!(op, PhysicalOp::HashJoin { .. }))
                .len(),
            1
        );
    }

    #[test]
    fn agg_and_setop_outputs() {
        let agg = PhysicalOp::HashAgg {
            stage: AggStage::Single,
            group_cols: vec![ColId(1)],
            aggs: vec![(
                ColId(9),
                ScalarExpr::Agg {
                    func: crate::scalar::AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
            )],
        };
        assert_eq!(
            agg.output_cols(&[vec![ColId(0), ColId(1)]]),
            vec![ColId(1), ColId(9)]
        );
        assert_eq!(agg.name(), "HashAgg");
        let scalar = PhysicalOp::HashAgg {
            group_cols: vec![],
            aggs: vec![],
            stage: AggStage::Single,
        };
        assert_eq!(scalar.name(), "ScalarAgg");
        let u = PhysicalOp::UnionAll {
            output: vec![ColId(5)],
            input_cols: vec![vec![ColId(0)], vec![ColId(1)]],
        };
        assert_eq!(u.arity(), 2);
        assert_eq!(
            u.output_cols(&[vec![ColId(0)], vec![ColId(1)]]),
            vec![ColId(5)]
        );
    }
}
