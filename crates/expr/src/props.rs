//! Property vocabulary: sort orders and data distributions.
//!
//! These are the *physical properties* of §4.1's enforcement framework.
//! The request/derivation machinery lives in `orca::props`; the baseline
//! planner and the executor share the same vocabulary, so it is defined
//! here.

use orca_common::ColId;
use std::fmt;

/// One sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SortKey {
    pub col: ColId,
    pub desc: bool,
}

impl SortKey {
    pub fn asc(col: ColId) -> SortKey {
        SortKey { col, desc: false }
    }

    pub fn descending(col: ColId) -> SortKey {
        SortKey { col, desc: true }
    }
}

/// A sort order: empty means "no particular order" (`Any`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OrderSpec(pub Vec<SortKey>);

impl OrderSpec {
    pub fn any() -> OrderSpec {
        OrderSpec(Vec::new())
    }

    pub fn by(cols: &[ColId]) -> OrderSpec {
        OrderSpec(cols.iter().copied().map(SortKey::asc).collect())
    }

    pub fn is_any(&self) -> bool {
        self.0.is_empty()
    }

    pub fn cols(&self) -> Vec<ColId> {
        self.0.iter().map(|k| k.col).collect()
    }

    /// `self` (delivered) satisfies `req` iff `req` is a prefix of `self`.
    /// Sorting by `(a, b)` delivers order by `(a)` too.
    pub fn satisfies(&self, req: &OrderSpec) -> bool {
        req.0.len() <= self.0.len() && self.0[..req.0.len()] == req.0[..]
    }

    /// Restrict to keys over `cols` only (order properties don't survive
    /// projections that drop their columns).
    pub fn project(&self, cols: &[ColId]) -> OrderSpec {
        // Order is meaningful only up to the first dropped key.
        let kept: Vec<SortKey> = self
            .0
            .iter()
            .take_while(|k| cols.contains(&k.col))
            .copied()
            .collect();
        OrderSpec(kept)
    }
}

impl fmt::Display for OrderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, "Any");
        }
        write!(f, "<")?;
        for (i, k) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}{}", k.col, if k.desc { " DESC" } else { "" })?;
        }
        write!(f, ">")
    }
}

/// Data distribution across segments (§2.1 / §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DistSpec {
    /// As a *requirement*: anything goes. Never derived.
    Any,
    /// All rows on a single host (the master after a Gather).
    Singleton,
    /// Rows placed by hash of these columns; equal keys co-located.
    Hashed(Vec<ColId>),
    /// Every segment holds a full copy.
    Replicated,
    /// Scattered with no co-location guarantee (e.g. randomly-distributed
    /// tables). Only ever *derived*.
    Random,
}

impl DistSpec {
    /// Does a plan *delivering* `self` satisfy a request for `req`?
    ///
    /// Replication deliberately does **not** satisfy `Hashed` — a
    /// replicated child would duplicate join results; the broadcast-join
    /// alternative is generated explicitly by the operator instead (§4.1
    /// footnote 2).
    pub fn satisfies(&self, req: &DistSpec) -> bool {
        match (self, req) {
            (_, DistSpec::Any) => true,
            (DistSpec::Singleton, DistSpec::Singleton) => true,
            (DistSpec::Replicated, DistSpec::Replicated) => true,
            (DistSpec::Hashed(a), DistSpec::Hashed(b)) => a == b,
            // A singleton trivially co-locates every key... but a Hashed
            // request also implies parallelism placement; Orca treats
            // Singleton as not satisfying Hashed, and so do we.
            _ => false,
        }
    }

    /// Is this a valid *requirement* (vs. derived-only variants)?
    pub fn is_requestable(&self) -> bool {
        !matches!(self, DistSpec::Random)
    }

    /// Rewrite hashed columns through a projection map; hashed distribution
    /// survives only if every key column survives.
    pub fn project(&self, cols: &[ColId]) -> DistSpec {
        match self {
            DistSpec::Hashed(keys) if !keys.iter().all(|k| cols.contains(k)) => DistSpec::Random,
            other => other.clone(),
        }
    }
}

impl fmt::Display for DistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistSpec::Any => write!(f, "Any"),
            DistSpec::Singleton => write!(f, "Singleton"),
            DistSpec::Hashed(cols) => {
                write!(f, "Hashed(")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            DistSpec::Replicated => write!(f, "Replicated"),
            DistSpec::Random => write!(f, "Random"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_prefix_satisfaction() {
        let ab = OrderSpec::by(&[ColId(1), ColId(2)]);
        let a = OrderSpec::by(&[ColId(1)]);
        let b = OrderSpec::by(&[ColId(2)]);
        assert!(ab.satisfies(&a));
        assert!(!a.satisfies(&ab));
        assert!(!ab.satisfies(&b));
        assert!(ab.satisfies(&OrderSpec::any()));
        assert!(OrderSpec::any().satisfies(&OrderSpec::any()));
        // Direction matters.
        let a_desc = OrderSpec(vec![SortKey::descending(ColId(1))]);
        assert!(!a_desc.satisfies(&a));
    }

    #[test]
    fn order_projection_stops_at_dropped_key() {
        let abc = OrderSpec::by(&[ColId(1), ColId(2), ColId(3)]);
        let proj = abc.project(&[ColId(1), ColId(3)]);
        // c2 dropped → order only meaningful on the c1 prefix.
        assert_eq!(proj, OrderSpec::by(&[ColId(1)]));
    }

    #[test]
    fn dist_satisfaction_lattice() {
        let h1 = DistSpec::Hashed(vec![ColId(1)]);
        let h2 = DistSpec::Hashed(vec![ColId(2)]);
        assert!(h1.satisfies(&DistSpec::Any));
        assert!(h1.satisfies(&h1));
        assert!(!h1.satisfies(&h2));
        assert!(!DistSpec::Replicated.satisfies(&h1));
        assert!(!DistSpec::Singleton.satisfies(&h1));
        assert!(!DistSpec::Random.satisfies(&DistSpec::Singleton));
        assert!(DistSpec::Singleton.satisfies(&DistSpec::Singleton));
        assert!(!DistSpec::Random.is_requestable());
        assert!(h1.is_requestable());
    }

    #[test]
    fn dist_projection_loses_hash_on_dropped_key() {
        let h = DistSpec::Hashed(vec![ColId(1), ColId(2)]);
        assert_eq!(h.project(&[ColId(1), ColId(2), ColId(9)]), h);
        assert_eq!(h.project(&[ColId(1)]), DistSpec::Random);
        assert_eq!(DistSpec::Singleton.project(&[]), DistSpec::Singleton);
    }
}
