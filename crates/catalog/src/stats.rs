//! Column histograms and table statistics.
//!
//! "A statistics object in Orca is mainly a collection of column histograms
//! used to derive estimates for cardinality and data skew" (§4.1). This
//! module implements the histogram algebra that statistics derivation
//! (in `orca::stats`) builds on: restriction by predicates, equi-join
//! alignment, scaling, union, and skew measurement.
//!
//! Histograms are numeric (ints, doubles and dates map onto `f64` bucket
//! boundaries). String columns carry NDV/null-fraction statistics only —
//! enough for equality selectivity, which is all the workload needs.

use orca_common::hash::FnvHashMap;
use orca_common::Datum;

/// One histogram bucket: values in `[lo, hi]` (closed; buckets may share
/// boundary points), containing `rows` rows with `ndv` distinct values,
/// assumed uniformly spread.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub lo: f64,
    pub hi: f64,
    pub rows: f64,
    pub ndv: f64,
}

impl Bucket {
    fn width(&self) -> f64 {
        (self.hi - self.lo).max(f64::EPSILON)
    }

    /// Fraction of this bucket's rows falling in `[lo, hi]`.
    fn overlap_fraction(&self, lo: f64, hi: f64) -> f64 {
        if hi < self.lo || lo > self.hi {
            return 0.0;
        }
        if self.lo >= lo && self.hi <= hi {
            return 1.0;
        }
        // Point bucket handled above; interpolate linearly.
        let olo = lo.max(self.lo);
        let ohi = hi.min(self.hi);
        ((ohi - olo) / self.width()).clamp(0.0, 1.0)
    }
}

/// An equi-depth-ish histogram over the non-null values of a column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Sorted, non-overlapping (except shared endpoints) buckets.
    pub buckets: Vec<Bucket>,
}

impl Histogram {
    pub fn empty() -> Histogram {
        Histogram::default()
    }

    /// Build an equi-depth histogram with at most `max_buckets` buckets from
    /// raw values. Used by the data generator's statistics builder.
    pub fn from_values(mut values: Vec<f64>, max_buckets: usize) -> Histogram {
        values.retain(|v| v.is_finite());
        if values.is_empty() || max_buckets == 0 {
            return Histogram::empty();
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = values.len();
        let per = (n as f64 / max_buckets as f64).ceil() as usize;
        let mut buckets = Vec::new();
        let mut i = 0;
        while i < n {
            let j = (i + per).min(n);
            let slice = &values[i..j];
            let lo = slice[0];
            // Extend hi to include duplicates of the boundary value.
            let mut j2 = j;
            while j2 < n && values[j2] == values[j2 - 1] {
                j2 += 1;
            }
            let slice = &values[i..j2];
            let hi = *slice.last().expect("non-empty");
            let mut ndv = 1.0;
            for w in slice.windows(2) {
                if w[1] != w[0] {
                    ndv += 1.0;
                }
            }
            buckets.push(Bucket {
                lo,
                hi,
                rows: slice.len() as f64,
                ndv,
            });
            i = j2;
        }
        Histogram { buckets }
    }

    pub fn rows(&self) -> f64 {
        self.buckets.iter().map(|b| b.rows).sum()
    }

    pub fn ndv(&self) -> f64 {
        self.buckets.iter().map(|b| b.ndv).sum()
    }

    pub fn min(&self) -> Option<f64> {
        self.buckets.first().map(|b| b.lo)
    }

    pub fn max(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.hi)
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Multiply all row counts by `f` (NDV is capped by rows).
    pub fn scale(&self, f: f64) -> Histogram {
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| Bucket {
                    lo: b.lo,
                    hi: b.hi,
                    rows: b.rows * f,
                    ndv: b.ndv.min(b.rows * f),
                })
                .filter(|b| b.rows > 1e-9)
                .collect(),
        }
    }

    /// Rows with value in `[lo, hi]` (selectivity numerator).
    pub fn rows_in_range(&self, lo: f64, hi: f64) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.rows * b.overlap_fraction(lo, hi))
            .sum()
    }

    /// Estimated rows equal to `v`: rows in the containing bucket divided by
    /// its NDV (uniform-within-bucket assumption).
    pub fn rows_eq(&self, v: f64) -> f64 {
        for b in &self.buckets {
            if v >= b.lo && v <= b.hi {
                return b.rows / b.ndv.max(1.0);
            }
        }
        0.0
    }

    /// Restrict to `[lo, hi]`, producing the output histogram.
    pub fn restrict_range(&self, lo: f64, hi: f64) -> Histogram {
        let mut out = Vec::new();
        for b in &self.buckets {
            let f = b.overlap_fraction(lo, hi);
            if f <= 0.0 {
                continue;
            }
            out.push(Bucket {
                lo: b.lo.max(lo),
                hi: b.hi.min(hi),
                rows: b.rows * f,
                ndv: (b.ndv * f).max(1.0),
            });
        }
        Histogram { buckets: out }
    }

    /// Restrict to exactly `v`.
    pub fn restrict_eq(&self, v: f64) -> Histogram {
        let rows = self.rows_eq(v);
        if rows <= 0.0 {
            return Histogram::empty();
        }
        Histogram {
            buckets: vec![Bucket {
                lo: v,
                hi: v,
                rows,
                ndv: 1.0,
            }],
        }
    }

    /// Equi-join with `other`: returns the estimated join cardinality and
    /// the histogram of the join key in the output.
    ///
    /// Buckets are split at the union of both boundary sets; within each
    /// aligned span the classic containment estimate
    /// `rows_a * rows_b / max(ndv_a, ndv_b)` applies.
    pub fn equi_join(&self, other: &Histogram) -> (f64, Histogram) {
        if self.is_empty() || other.is_empty() {
            return (0.0, Histogram::empty());
        }
        let mut bounds: Vec<f64> = self
            .buckets
            .iter()
            .chain(other.buckets.iter())
            .flat_map(|b| [b.lo, b.hi])
            .collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        bounds.dedup();

        let mut total = 0.0;
        let mut out = Vec::new();
        let spans = bounds.windows(2).map(|w| (w[0], w[1]));
        // Include degenerate point spans for shared boundary points by
        // treating each span as closed; point-bucket mass concentrated at a
        // boundary is captured because overlap_fraction of a point bucket
        // with any range containing it is 1. To avoid double counting, point
        // buckets are handled via their own span when lo==hi.
        let mut point_done: Vec<f64> = Vec::new();
        let handle_span = |lo: f64, hi: f64, out: &mut Vec<Bucket>, total: &mut f64| {
            let ra = self.rows_in_range(lo, hi);
            let rb = other.rows_in_range(lo, hi);
            if ra <= 0.0 || rb <= 0.0 {
                return;
            }
            let nda = self.ndv_in_range(lo, hi).max(1.0);
            let ndb = other.ndv_in_range(lo, hi).max(1.0);
            let rows = ra * rb / nda.max(ndb);
            *total += rows;
            out.push(Bucket {
                lo,
                hi,
                rows,
                ndv: nda.min(ndb),
            });
        };
        for (lo, hi) in spans {
            if lo == hi {
                continue;
            }
            // Shift interior endpoints slightly is overkill; accept small
            // double-count at shared endpoints — estimation, not arithmetic.
            handle_span(lo, hi, &mut out, &mut total);
        }
        // Pure point buckets (lo == hi) that no span covers (single-bucket
        // histograms at one value).
        for b in self.buckets.iter().chain(other.buckets.iter()) {
            if b.lo == b.hi && !point_done.contains(&b.lo) && bounds.len() == 1 {
                point_done.push(b.lo);
                handle_span(b.lo, b.hi, &mut out, &mut total);
            }
        }
        (total, Histogram { buckets: out })
    }

    fn ndv_in_range(&self, lo: f64, hi: f64) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.ndv * b.overlap_fraction(lo, hi))
            .sum()
    }

    /// Merge with `other` as UNION ALL of the underlying columns.
    pub fn union_all(&self, other: &Histogram) -> Histogram {
        let mut buckets: Vec<Bucket> = self
            .buckets
            .iter()
            .chain(other.buckets.iter())
            .cloned()
            .collect();
        buckets.sort_by(|a, b| a.lo.partial_cmp(&b.lo).expect("finite"));
        Histogram { buckets }
    }

    /// Coefficient of variation of bucket row densities — the skew measure
    /// used to penalize hashed distributions on skewed keys.
    pub fn skew(&self) -> f64 {
        if self.buckets.len() < 2 {
            return 0.0;
        }
        let densities: Vec<f64> = self
            .buckets
            .iter()
            .map(|b| b.rows / b.ndv.max(1.0))
            .collect();
        let mean = densities.iter().sum::<f64>() / densities.len() as f64;
        if mean <= 0.0 {
            return 0.0;
        }
        let var =
            densities.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / densities.len() as f64;
        var.sqrt() / mean
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: f64,
    /// Fraction of rows that are NULL in this column.
    pub null_frac: f64,
    /// Average width in bytes.
    pub width: u64,
    /// Numeric histogram, when the column is numeric/date.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    pub fn new(ndv: f64, null_frac: f64, width: u64) -> ColumnStats {
        ColumnStats {
            ndv,
            null_frac,
            width,
            histogram: None,
        }
    }

    pub fn with_histogram(mut self, h: Histogram) -> ColumnStats {
        self.histogram = Some(h);
        self
    }

    /// Build from raw column values (the `tpcds::statsgen` path).
    pub fn from_column(values: &[Datum], max_buckets: usize) -> ColumnStats {
        let n = values.len().max(1) as f64;
        let nulls = values.iter().filter(|v| v.is_null()).count() as f64;
        let mut distinct: FnvHashMap<u64, ()> = FnvHashMap::default();
        for v in values {
            if !v.is_null() {
                distinct.insert(orca_common::hash::fnv_hash(v), ());
            }
        }
        let width =
            (values.iter().map(Datum::width).sum::<u64>() / values.len().max(1) as u64).max(1);
        let numeric: Vec<f64> = values.iter().filter_map(Datum::as_f64).collect();
        let mut cs = ColumnStats::new(distinct.len() as f64, nulls / n, width);
        if !numeric.is_empty() && numeric.len() + nulls as usize == values.len() {
            cs.histogram = Some(Histogram::from_values(numeric, max_buckets));
        }
        cs
    }
}

/// Statistics for one table, aligned with its column list.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub rows: f64,
    /// Per-column stats; `None` when never collected.
    pub columns: Vec<Option<ColumnStats>>,
}

impl TableStats {
    pub fn new(rows: f64, ncols: usize) -> TableStats {
        TableStats {
            rows,
            columns: vec![None; ncols],
        }
    }

    pub fn set_column(mut self, idx: usize, cs: ColumnStats) -> TableStats {
        self.columns[idx] = Some(cs);
        self
    }

    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx).and_then(|c| c.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist(lo: f64, hi: f64, rows: f64, buckets: usize) -> Histogram {
        let w = (hi - lo) / buckets as f64;
        Histogram {
            buckets: (0..buckets)
                .map(|i| Bucket {
                    lo: lo + i as f64 * w,
                    hi: lo + (i + 1) as f64 * w,
                    rows: rows / buckets as f64,
                    ndv: (rows / buckets as f64).min(w.max(1.0)),
                })
                .collect(),
        }
    }

    #[test]
    fn from_values_mass_conservation() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 100) as f64).collect();
        let h = Histogram::from_values(vals, 10);
        assert!((h.rows() - 1000.0).abs() < 1e-6);
        assert!((h.ndv() - 100.0).abs() < 1.0);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(99.0));
    }

    #[test]
    fn range_restriction_halves_uniform() {
        let h = uniform_hist(0.0, 100.0, 10_000.0, 20);
        let half = h.rows_in_range(0.0, 50.0);
        assert!((half - 5000.0).abs() / 5000.0 < 0.02, "got {half}");
        let r = h.restrict_range(0.0, 50.0);
        assert!((r.rows() - half).abs() < 1e-6);
        assert!(r.max().unwrap() <= 50.0);
    }

    #[test]
    fn eq_restriction_uses_bucket_ndv() {
        let h = uniform_hist(0.0, 100.0, 1000.0, 10); // 100 rows, ndv<=10 per bucket
        let rows = h.rows_eq(5.0);
        assert!(rows > 0.0 && rows <= 100.0);
        let r = h.restrict_eq(5.0);
        assert_eq!(r.buckets.len(), 1);
        assert!((r.rows() - rows).abs() < 1e-9);
        assert_eq!(h.rows_eq(500.0), 0.0);
    }

    #[test]
    fn equi_join_pk_fk_shape() {
        // Dimension: 100 distinct values 0..100, one row each.
        let dim = Histogram::from_values((0..100).map(|i| i as f64).collect(), 10);
        // Fact: 10k rows over the same domain.
        let fact = Histogram::from_values((0..10_000).map(|i| (i % 100) as f64).collect(), 10);
        let (card, out) = fact.equi_join(&dim);
        // PK-FK join keeps the fact side cardinality (within estimate slop).
        assert!(card > 5_000.0 && card < 20_000.0, "card = {card}");
        assert!(!out.is_empty());
    }

    #[test]
    fn equi_join_disjoint_is_empty() {
        let a = Histogram::from_values((0..100).map(|i| i as f64).collect(), 4);
        let b = Histogram::from_values((1000..1100).map(|i| i as f64).collect(), 4);
        let (card, out) = a.equi_join(&b);
        assert_eq!(card, 0.0);
        assert!(out.is_empty() || out.rows() < 1e-6);
    }

    #[test]
    fn scale_caps_ndv() {
        let h = Histogram::from_values((0..100).map(|i| i as f64).collect(), 4);
        let s = h.scale(0.01); // 1 row total
        assert!((s.rows() - 1.0).abs() < 1e-6);
        for b in &s.buckets {
            assert!(b.ndv <= b.rows + 1e-9);
        }
        // Scaling to zero removes all buckets.
        assert!(h.scale(0.0).is_empty());
    }

    #[test]
    fn skew_detects_heavy_bucket() {
        let uniform = uniform_hist(0.0, 100.0, 1000.0, 10);
        let mut skewed = uniform.clone();
        skewed.buckets[0].rows = 10_000.0;
        assert!(skewed.skew() > uniform.skew());
        assert!(uniform.skew() < 0.01);
    }

    #[test]
    fn column_stats_from_mixed_values() {
        let vals: Vec<Datum> = (0..50)
            .map(|i| {
                if i % 10 == 0 {
                    Datum::Null
                } else {
                    Datum::Int(i % 7)
                }
            })
            .collect();
        let cs = ColumnStats::from_column(&vals, 8);
        assert!((cs.null_frac - 0.1).abs() < 1e-9);
        assert!(cs.ndv >= 6.0 && cs.ndv <= 7.0);
        assert!(cs.histogram.is_some());
        // 45 non-null rows in the histogram.
        assert!((cs.histogram.unwrap().rows() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn string_column_gets_no_histogram() {
        let vals: Vec<Datum> = (0..10).map(|i| Datum::Str(format!("v{i}"))).collect();
        let cs = ColumnStats::from_column(&vals, 8);
        assert_eq!(cs.ndv, 10.0);
        assert!(cs.histogram.is_none());
    }

    #[test]
    fn union_all_adds_mass() {
        let a = uniform_hist(0.0, 10.0, 100.0, 2);
        let b = uniform_hist(5.0, 15.0, 50.0, 2);
        let u = a.union_all(&b);
        assert!((u.rows() - 150.0).abs() < 1e-6);
    }
}
