//! The per-session `MdAccessor` (§5).
//!
//! "All accesses to metadata objects are accomplished via MD Accessor, which
//! keeps track of objects being accessed in the optimization session, and
//! makes sure they are released when they are no longer needed. MD Accessor
//! is also responsible for transparently fetching metadata from the external
//! MD Provider if the requested object is not already in the cache."
//!
//! Pins are released on `Drop` (RAII, as GPOS does with auto-objects), and
//! the accessed set can be *harvested* into a minimal metadata snapshot for
//! AMPERe dumps (§6.1).

use crate::cache::{CacheKey, MdCache};
use crate::provider::{MdObject, MdProvider, ObjKind};
use crate::stats::TableStats;
use crate::table::{IndexDesc, TableDesc};
use orca_common::hash::FnvHashSet;
use orca_common::{MdId, OrcaError, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// Session-scoped metadata access: cache in front, provider behind.
pub struct MdAccessor {
    cache: Arc<MdCache>,
    provider: Arc<dyn MdProvider>,
    pinned: Mutex<FnvHashSet<CacheKey>>,
}

impl MdAccessor {
    pub fn new(cache: Arc<MdCache>, provider: Arc<dyn MdProvider>) -> MdAccessor {
        MdAccessor {
            cache,
            provider,
            pinned: Mutex::new(FnvHashSet::default()),
        }
    }

    /// Convenience for tests/examples: private cache + the given provider.
    pub fn standalone(provider: Arc<dyn MdProvider>) -> MdAccessor {
        MdAccessor::new(MdCache::new(), provider)
    }

    pub fn provider(&self) -> &Arc<dyn MdProvider> {
        &self.provider
    }

    fn get(&self, key: CacheKey) -> Result<MdObject> {
        // Fast path: already pinned by this session → plain cache read.
        let already_pinned = self.pinned.lock().contains(&key);
        if let Some(obj) = self.cache.lookup_pin(key) {
            if already_pinned {
                // Keep exactly one session pin.
                self.cache.unpin(key);
            } else {
                self.pinned.lock().insert(key);
            }
            return Ok(obj);
        }
        // Miss: fetch through the provider, insert pinned.
        let fetched = match key.1 {
            ObjKind::Table => MdObject::Table(self.provider.table(key.0)?),
            ObjKind::Stats => MdObject::Stats(self.provider.stats(key.0)?),
            ObjKind::Indexes => MdObject::Indexes(self.provider.indexes(key.0)?),
        };
        let obj = self.cache.insert_pinned(key, fetched);
        if already_pinned {
            self.cache.unpin(key);
        } else {
            self.pinned.lock().insert(key);
        }
        Ok(obj)
    }

    pub fn table(&self, mdid: MdId) -> Result<Arc<TableDesc>> {
        match self.get((mdid, ObjKind::Table))? {
            MdObject::Table(t) => Ok(t),
            _ => Err(OrcaError::Internal("cache kind mismatch".into())),
        }
    }

    pub fn stats(&self, table: MdId) -> Result<Arc<TableStats>> {
        match self.get((table, ObjKind::Stats))? {
            MdObject::Stats(s) => Ok(s),
            _ => Err(OrcaError::Internal("cache kind mismatch".into())),
        }
    }

    pub fn indexes(&self, table: MdId) -> Result<Arc<Vec<Arc<IndexDesc>>>> {
        match self.get((table, ObjKind::Indexes))? {
            MdObject::Indexes(ix) => Ok(ix),
            _ => Err(OrcaError::Internal("cache kind mismatch".into())),
        }
    }

    pub fn table_by_name(&self, name: &str) -> Result<Arc<TableDesc>> {
        let mdid = self
            .provider
            .table_by_name(name)
            .ok_or_else(|| OrcaError::Metadata(format!("unknown table '{name}'")))?;
        self.table(mdid)
    }

    /// Snapshot of every object touched this session — "the dump captures
    /// the state of the MD Cache which includes only the metadata acquired
    /// during the course of query optimization" (§6.1).
    pub fn harvest(&self) -> Vec<(CacheKey, MdObject)> {
        let mut keys: Vec<CacheKey> = self.pinned.lock().iter().copied().collect();
        keys.sort();
        keys.into_iter()
            .filter_map(|key| {
                let obj = self.cache.lookup_pin(key)?;
                self.cache.unpin(key); // lookup_pin added an extra pin
                Some((key, obj))
            })
            .collect()
    }

    /// Number of distinct objects pinned by this session.
    pub fn pinned_count(&self) -> usize {
        self.pinned.lock().len()
    }

    /// Distinct metadata ids (versions included) accessed this session,
    /// sorted for determinism. This is the invalidation half of a plan-cache
    /// key: a `bump_table_version` changes the id set a fresh optimization
    /// would record, so entries stored under the old set go stale.
    pub fn accessed_mdids(&self) -> Vec<MdId> {
        let mut ids: Vec<MdId> = self.pinned.lock().iter().map(|k| k.0).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

impl Drop for MdAccessor {
    fn drop(&mut self) {
        // "objects are pinned in an in-memory cache, and are unpinned when
        // optimization completes or an error is thrown" — Drop covers both.
        for key in self.pinned.lock().drain() {
            self.cache.unpin(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::MemoryProvider;
    use crate::table::{ColumnMeta, Distribution};
    use orca_common::DataType;

    fn setup() -> (Arc<MdCache>, Arc<MemoryProvider>, MdId) {
        let p = Arc::new(MemoryProvider::new());
        let id = p.register(
            "t1",
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Hashed(vec![0]),
        );
        (MdCache::new(), p, id)
    }

    #[test]
    fn fetch_pins_once_per_session() {
        let (cache, p, id) = setup();
        let acc = MdAccessor::new(cache.clone(), p);
        acc.table(id).unwrap();
        acc.table(id).unwrap();
        acc.table(id).unwrap();
        assert_eq!(acc.pinned_count(), 1);
        drop(acc);
        // Fully unpinned after drop → evictable.
        assert_eq!(cache.evict_unpinned(), 1);
    }

    #[test]
    fn two_sessions_share_cache() {
        let (cache, p, id) = setup();
        let a1 = MdAccessor::new(cache.clone(), p.clone());
        a1.table(id).unwrap();
        let a2 = MdAccessor::new(cache.clone(), p);
        a2.table(id).unwrap();
        // Second session hit the cache.
        assert_eq!(cache.miss_count(), 1);
        assert!(cache.hit_count() >= 1);
        drop(a1);
        // Still pinned by a2.
        assert_eq!(cache.evict_unpinned(), 0);
        drop(a2);
        assert_eq!(cache.evict_unpinned(), 1);
    }

    #[test]
    fn harvest_returns_touched_objects_only() {
        let (cache, p, id) = setup();
        let id2 = p.register(
            "t2",
            vec![ColumnMeta::new("x", DataType::Int)],
            Distribution::Random,
        );
        let acc = MdAccessor::new(cache, p);
        acc.table(id).unwrap();
        acc.stats(id).unwrap();
        let harvested = acc.harvest();
        assert_eq!(harvested.len(), 2);
        assert!(harvested.iter().all(|(k, _)| k.0 == id));
        let _ = id2;
    }

    #[test]
    fn by_name_and_missing_object() {
        let (cache, p, _) = setup();
        let acc = MdAccessor::new(cache, p);
        assert!(acc.table_by_name("t1").is_ok());
        assert!(matches!(
            acc.table_by_name("nope"),
            Err(OrcaError::Metadata(_))
        ));
        assert!(acc
            .table(MdId::new(orca_common::SysId::Gpdb, 999, 1))
            .is_err());
    }
}
