//! Metadata providers — the system-specific plug-ins of §5.
//!
//! "The access to metadata is facilitated by a collection of Metadata
//! Providers that are system-specific plug-ins to retrieve metadata from the
//! database system." The optimizer only sees [`MdProvider`]; backends
//! implement it. This crate ships [`MemoryProvider`] (a catalog living in
//! process, standing in for a live GPDB/HAWQ backend); `orca-dxl` adds the
//! file-based provider used by AMPERe replay.

use crate::stats::TableStats;
use crate::table::{IndexDesc, TableDesc};
use orca_common::hash::FnvHashMap;
use orca_common::{MdId, OrcaError, Result, SysId};
use parking_lot::RwLock;
use std::sync::Arc;

/// Any metadata object that can live in the cache or a DXL dump.
#[derive(Debug, Clone)]
pub enum MdObject {
    Table(Arc<TableDesc>),
    Stats(Arc<TableStats>),
    /// All indexes defined on one table.
    Indexes(Arc<Vec<Arc<IndexDesc>>>),
}

impl MdObject {
    /// Rough heap footprint for the memory tracker.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            MdObject::Table(t) => 64 + 48 * t.columns.len() as u64,
            MdObject::Stats(s) => {
                64 + s
                    .columns
                    .iter()
                    .map(|c| {
                        48 + c
                            .as_ref()
                            .and_then(|c| c.histogram.as_ref())
                            .map(|h| 32 * h.buckets.len() as u64)
                            .unwrap_or(0)
                    })
                    .sum::<u64>()
            }
            MdObject::Indexes(ix) => 32 + 64 * ix.len() as u64,
        }
    }

    pub fn kind(&self) -> ObjKind {
        match self {
            MdObject::Table(_) => ObjKind::Table,
            MdObject::Stats(_) => ObjKind::Stats,
            MdObject::Indexes(_) => ObjKind::Indexes,
        }
    }
}

/// Discriminant used in cache keys (one table MdId maps to several objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjKind {
    Table,
    Stats,
    Indexes,
}

/// The plug-in interface backends implement.
pub trait MdProvider: Send + Sync {
    /// Which system this provider serves (stamped into MdIds it mints).
    fn system(&self) -> SysId;

    /// Fetch the table descriptor for `mdid`.
    fn table(&self, mdid: MdId) -> Result<Arc<TableDesc>>;

    /// Fetch statistics for table `mdid`.
    fn stats(&self, mdid: MdId) -> Result<Arc<TableStats>>;

    /// Indexes defined on table `mdid` (possibly empty).
    fn indexes(&self, mdid: MdId) -> Result<Arc<Vec<Arc<IndexDesc>>>>;

    /// Name → current MdId resolution (what the binder uses). Returns the
    /// *latest version* of the object.
    fn table_by_name(&self, name: &str) -> Option<MdId>;
}

/// An in-process catalog. Stands in for a live backend in tests, examples
/// and benchmarks.
#[derive(Default)]
pub struct MemoryProvider {
    inner: RwLock<MemoryInner>,
}

#[derive(Default)]
struct MemoryInner {
    tables: FnvHashMap<MdId, Arc<TableDesc>>,
    stats: FnvHashMap<MdId, Arc<TableStats>>,
    indexes: FnvHashMap<MdId, Arc<Vec<Arc<IndexDesc>>>>,
    by_name: FnvHashMap<String, MdId>,
    next_oid: u64,
}

impl MemoryProvider {
    pub fn new() -> MemoryProvider {
        MemoryProvider::default()
    }

    /// Register a table built by the caller (without an MdId yet); mints a
    /// fresh id and installs empty stats.
    pub fn register(
        &self,
        name: &str,
        columns: Vec<crate::table::ColumnMeta>,
        distribution: crate::table::Distribution,
    ) -> MdId {
        let ncols = columns.len();
        let mdid = {
            let mut g = self.inner.write();
            g.next_oid += 1;
            MdId::new(SysId::Gpdb, g.next_oid, 1)
        };
        let t = Arc::new(TableDesc::new(mdid, name, columns, distribution));
        self.install_table(t);
        self.set_stats(mdid, TableStats::new(0.0, ncols));
        mdid
    }

    /// Install a fully-built descriptor (used by the DXL loader and tpcds).
    pub fn install_table(&self, t: Arc<TableDesc>) {
        let mut g = self.inner.write();
        g.next_oid = g.next_oid.max(t.mdid.oid);
        // Newer version replaces the name binding.
        match g.by_name.get(&t.name) {
            Some(old) if old.version > t.mdid.version && old.same_object(&t.mdid) => {}
            _ => {
                g.by_name.insert(t.name.clone(), t.mdid);
            }
        }
        g.tables.insert(t.mdid, t);
    }

    pub fn set_stats(&self, table: MdId, stats: TableStats) {
        self.inner.write().stats.insert(table, Arc::new(stats));
    }

    pub fn add_index(&self, index: IndexDesc) {
        let mut g = self.inner.write();
        let table = index.table;
        let entry = g
            .indexes
            .entry(table)
            .or_insert_with(|| Arc::new(Vec::new()));
        let mut v: Vec<Arc<IndexDesc>> = entry.as_ref().clone();
        v.push(Arc::new(index));
        *entry = Arc::new(v);
    }

    /// Replace a table with a new version (bumped MdId); simulates ALTER /
    /// ANALYZE invalidating cached metadata.
    pub fn bump_table_version(&self, mdid: MdId) -> Result<MdId> {
        let old = self.table(mdid)?;
        let new_id = mdid.bump_version();
        let mut t = (*old).clone();
        t.mdid = new_id;
        self.install_table(Arc::new(t));
        let stats = self.inner.read().stats.get(&mdid).cloned();
        if let Some(s) = stats {
            self.inner.write().stats.insert(new_id, s);
        }
        Ok(new_id)
    }

    pub fn all_tables(&self) -> Vec<Arc<TableDesc>> {
        let g = self.inner.read();
        let mut v: Vec<_> = g
            .by_name
            .values()
            .filter_map(|id| g.tables.get(id).cloned())
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

impl MdProvider for MemoryProvider {
    fn system(&self) -> SysId {
        SysId::Gpdb
    }

    fn table(&self, mdid: MdId) -> Result<Arc<TableDesc>> {
        self.inner
            .read()
            .tables
            .get(&mdid)
            .cloned()
            .ok_or_else(|| OrcaError::Metadata(format!("unknown table {mdid}")))
    }

    fn stats(&self, mdid: MdId) -> Result<Arc<TableStats>> {
        self.inner
            .read()
            .stats
            .get(&mdid)
            .cloned()
            .ok_or_else(|| OrcaError::Metadata(format!("no stats for {mdid}")))
    }

    fn indexes(&self, mdid: MdId) -> Result<Arc<Vec<Arc<IndexDesc>>>> {
        Ok(self
            .inner
            .read()
            .indexes
            .get(&mdid)
            .cloned()
            .unwrap_or_default())
    }

    fn table_by_name(&self, name: &str) -> Option<MdId> {
        self.inner.read().by_name.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnMeta, Distribution};
    use orca_common::DataType;

    fn provider_with_t1() -> (MemoryProvider, MdId) {
        let p = MemoryProvider::new();
        let id = p.register(
            "t1",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        );
        (p, id)
    }

    #[test]
    fn register_and_lookup() {
        let (p, id) = provider_with_t1();
        assert_eq!(p.table_by_name("t1"), Some(id));
        assert_eq!(p.table_by_name("zzz"), None);
        let t = p.table(id).unwrap();
        assert_eq!(t.name, "t1");
        assert!(p.stats(id).is_ok());
        assert!(p.indexes(id).unwrap().is_empty());
        assert!(p.table(id.bump_version()).is_err());
    }

    #[test]
    fn version_bump_keeps_old_and_new() {
        let (p, id) = provider_with_t1();
        let id2 = p.bump_table_version(id).unwrap();
        assert!(id2.same_object(&id));
        // Name now resolves to the newer version.
        assert_eq!(p.table_by_name("t1"), Some(id2));
        // Both versions remain fetchable (old cached plans may hold them).
        assert!(p.table(id).is_ok());
        assert!(p.table(id2).is_ok());
    }

    #[test]
    fn indexes_accumulate() {
        let (p, id) = provider_with_t1();
        p.add_index(IndexDesc {
            mdid: MdId::new(SysId::Gpdb, 900, 1),
            name: "t1_a_idx".into(),
            table: id,
            key_columns: vec![0],
        });
        assert_eq!(p.indexes(id).unwrap().len(), 1);
    }
}
