//! The optimizer-side metadata cache (§3 "Metadata Cache").
//!
//! "Since metadata changes infrequently, shipping it with every query incurs
//! an overhead. Orca caches metadata on the optimizer side and only
//! retrieves pieces of it from the catalog if something is unavailable in
//! the cache, or has changed since the last time it was loaded."
//!
//! Invalidation rides on versioned [`MdId`]s: a modified object gets a new
//! version, so lookups with the current id miss and refetch; stale versions
//! are evicted once unpinned.

use crate::provider::{MdObject, ObjKind};
use orca_common::hash::FnvHashMap;
use orca_common::MdId;
use orca_gpos::MemTracker;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key: which object of which kind.
pub type CacheKey = (MdId, ObjKind);

struct Entry {
    object: MdObject,
    pins: u32,
}

/// Shared, thread-safe metadata cache with pin counting.
#[derive(Default)]
pub struct MdCache {
    entries: Mutex<FnvHashMap<CacheKey, Entry>>,
    mem: MemTracker,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MdCache {
    pub fn new() -> Arc<MdCache> {
        Arc::new(MdCache::default())
    }

    /// Look up and pin. `None` means a miss — the caller (the accessor)
    /// fetches from its provider and calls [`MdCache::insert_pinned`].
    pub fn lookup_pin(&self, key: CacheKey) -> Option<MdObject> {
        let mut g = self.entries.lock();
        match g.get_mut(&key) {
            Some(e) => {
                e.pins += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.object.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly-fetched object, already pinned once for the caller.
    /// Also evicts unpinned *stale versions* of the same object+kind.
    pub fn insert_pinned(&self, key: CacheKey, object: MdObject) -> MdObject {
        debug_assert_eq!(key.1, object.kind());
        let mut g = self.entries.lock();
        // Evict older unpinned versions.
        let stale: Vec<CacheKey> = g
            .keys()
            .filter(|(id, kind)| {
                *kind == key.1 && id.same_object(&key.0) && id.version < key.0.version
            })
            .copied()
            .collect();
        for k in stale {
            if g.get(&k).map(|e| e.pins) == Some(0) {
                if let Some(e) = g.remove(&k) {
                    self.mem.sub(e.object.approx_bytes());
                }
            }
        }
        match g.get_mut(&key) {
            Some(e) => {
                // Raced with another session; keep the existing object.
                e.pins += 1;
                e.object.clone()
            }
            None => {
                self.mem.add(object.approx_bytes());
                g.insert(
                    key,
                    Entry {
                        object: object.clone(),
                        pins: 1,
                    },
                );
                object
            }
        }
    }

    /// Release one pin (optimization session ended or errored).
    pub fn unpin(&self, key: CacheKey) {
        let mut g = self.entries.lock();
        if let Some(e) = g.get_mut(&key) {
            debug_assert!(e.pins > 0, "unpin without pin for {key:?}");
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Drop every unpinned entry (memory-pressure eviction).
    pub fn evict_unpinned(&self) -> usize {
        let mut g = self.entries.lock();
        let before = g.len();
        let keep: FnvHashMap<CacheKey, Entry> = std::mem::take(&mut *g)
            .into_iter()
            .filter(|(_, e)| {
                if e.pins == 0 {
                    self.mem.sub(e.object.approx_bytes());
                    false
                } else {
                    true
                }
            })
            .collect();
        *g = keep;
        before - g.len()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current estimated bytes held (feeds the §7.2.2 footprint stats).
    pub fn bytes(&self) -> u64 {
        self.mem.current()
    }

    pub fn peak_bytes(&self) -> u64 {
        self.mem.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, SysId};

    fn obj(version: u32) -> MdObject {
        MdObject::Table(Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 7, version),
            "t",
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Random,
        )))
    }

    #[test]
    fn miss_insert_hit_cycle() {
        let c = MdCache::new();
        let key = (MdId::new(SysId::Gpdb, 7, 1), ObjKind::Table);
        assert!(c.lookup_pin(key).is_none());
        c.insert_pinned(key, obj(1));
        assert!(c.lookup_pin(key).is_some());
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
        assert!(c.bytes() > 0);
        c.unpin(key);
        c.unpin(key);
        assert_eq!(c.evict_unpinned(), 1);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let c = MdCache::new();
        let key = (MdId::new(SysId::Gpdb, 7, 1), ObjKind::Table);
        c.insert_pinned(key, obj(1));
        assert_eq!(c.evict_unpinned(), 0);
        c.unpin(key);
        assert_eq!(c.evict_unpinned(), 1);
    }

    #[test]
    fn new_version_evicts_stale_unpinned() {
        let c = MdCache::new();
        let k1 = (MdId::new(SysId::Gpdb, 7, 1), ObjKind::Table);
        let k2 = (MdId::new(SysId::Gpdb, 7, 2), ObjKind::Table);
        c.insert_pinned(k1, obj(1));
        c.unpin(k1);
        c.insert_pinned(k2, obj(2));
        assert_eq!(c.len(), 1, "stale version evicted on refresh");
        assert!(c.lookup_pin(k2).is_some());
    }

    #[test]
    fn racing_insert_keeps_first_object() {
        let c = MdCache::new();
        let key = (MdId::new(SysId::Gpdb, 7, 1), ObjKind::Table);
        c.insert_pinned(key, obj(1));
        // Second insert (race) pins the existing entry instead of replacing.
        c.insert_pinned(key, obj(1));
        assert_eq!(c.len(), 1);
    }
}
