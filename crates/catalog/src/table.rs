//! Table, column and index descriptors.
//!
//! These are the metadata objects the optimizer requests from the backend
//! (via DXL in the paper). They describe *shape* only — actual data lives in
//! the execution engine's storage.

use orca_common::{DataType, MdId};

/// Column metadata within a table (an `attno`-indexed entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl ColumnMeta {
    pub fn new(name: &str, dtype: DataType) -> ColumnMeta {
        ColumnMeta {
            name: name.to_string(),
            dtype,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> ColumnMeta {
        self.nullable = false;
        self
    }
}

/// How a table's rows are laid out across segments (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Distribution {
    /// Tuples placed by hash of the named columns (positions into
    /// [`TableDesc::columns`]).
    Hashed(Vec<usize>),
    /// Tuples scattered round-robin; no co-location guarantees.
    Random,
    /// Every segment stores a full copy.
    Replicated,
    /// The whole table lives on one host (catalog tables, tiny dimensions).
    Singleton,
}

/// Range partitioning of a table on one column (simplified from reference \[2\]:
/// single-level range partitioning, which is what the TPC-DS fact tables
/// use — partition by date key).
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// Position of the partitioning column in [`TableDesc::columns`].
    pub column: usize,
    /// Sorted, non-overlapping `[lo, hi)` bounds; one entry per partition.
    pub bounds: Vec<(i64, i64)>,
}

impl Partitioning {
    /// Equi-width partitions covering `[lo, hi)`.
    pub fn range(column: usize, lo: i64, hi: i64, parts: usize) -> Partitioning {
        assert!(parts > 0 && hi > lo);
        let width = ((hi - lo) as f64 / parts as f64).ceil() as i64;
        let mut bounds = Vec::with_capacity(parts);
        let mut cur = lo;
        for _ in 0..parts {
            let next = (cur + width).min(hi);
            bounds.push((cur, next));
            cur = next;
            if cur >= hi {
                break;
            }
        }
        Partitioning { column, bounds }
    }

    pub fn num_parts(&self) -> usize {
        self.bounds.len()
    }

    /// Partitions whose range intersects `[lo, hi]` (inclusive ends; use
    /// `i64::MIN`/`i64::MAX` for open sides). This is the static-elimination
    /// primitive.
    pub fn parts_for_range(&self, lo: i64, hi: i64) -> Vec<usize> {
        self.bounds
            .iter()
            .enumerate()
            .filter(|(_, (plo, phi))| lo < *phi && hi >= *plo)
            .map(|(i, _)| i)
            .collect()
    }

    /// The single partition containing `v`, if any.
    pub fn part_for_value(&self, v: i64) -> Option<usize> {
        self.bounds.iter().position(|(lo, hi)| v >= *lo && v < *hi)
    }
}

/// A table descriptor — what a `LogicalGet` binds to.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDesc {
    pub mdid: MdId,
    pub name: String,
    pub columns: Vec<ColumnMeta>,
    pub distribution: Distribution,
    pub partitioning: Option<Partitioning>,
}

impl TableDesc {
    pub fn new(
        mdid: MdId,
        name: &str,
        columns: Vec<ColumnMeta>,
        distribution: Distribution,
    ) -> TableDesc {
        if let Distribution::Hashed(cols) = &distribution {
            assert!(
                cols.iter().all(|c| *c < columns.len()),
                "distribution column out of range"
            );
        }
        TableDesc {
            mdid,
            name: name.to_string(),
            columns,
            distribution,
            partitioning: None,
        }
    }

    pub fn with_partitioning(mut self, p: Partitioning) -> TableDesc {
        assert!(p.column < self.columns.len());
        self.partitioning = Some(p);
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Row width estimate in bytes (cost model input).
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.dtype.width()).sum()
    }

    pub fn num_partitions(&self) -> usize {
        self.partitioning
            .as_ref()
            .map_or(1, Partitioning::num_parts)
    }
}

/// A (covering, ordered) index: rows reachable in order of `key_columns`.
/// Simplified from GPDB btrees: the index is clustered per segment, so an
/// IndexScan delivers per-segment sort order without a Sort enforcer and can
/// apply range predicates on the leading key column cheaply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDesc {
    pub mdid: MdId,
    pub name: String,
    /// The indexed table.
    pub table: MdId,
    /// Positions into the table's columns, in key order.
    pub key_columns: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::{DataType, SysId};

    fn desc() -> TableDesc {
        TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t",
            vec![
                ColumnMeta::new("a", DataType::Int).not_null(),
                ColumnMeta::new("b", DataType::Str),
            ],
            Distribution::Hashed(vec![0]),
        )
    }

    #[test]
    fn column_lookup_and_width() {
        let t = desc();
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("zzz"), None);
        assert_eq!(t.row_width(), 8 + 24);
        assert_eq!(t.num_partitions(), 1);
    }

    #[test]
    fn range_partitioning_covers_domain() {
        let p = Partitioning::range(0, 0, 100, 4);
        assert_eq!(p.num_parts(), 4);
        assert_eq!(p.bounds.first().unwrap().0, 0);
        assert_eq!(p.bounds.last().unwrap().1, 100);
        // Every value maps to exactly one partition.
        for v in 0..100 {
            assert!(p.part_for_value(v).is_some(), "value {v}");
        }
        assert_eq!(p.part_for_value(100), None);
    }

    #[test]
    fn partition_pruning_by_range() {
        let p = Partitioning::range(0, 0, 100, 4); // [0,25) [25,50) [50,75) [75,100)
        assert_eq!(p.parts_for_range(30, 30), vec![1]);
        assert_eq!(p.parts_for_range(20, 60), vec![0, 1, 2]);
        assert_eq!(p.parts_for_range(i64::MIN, i64::MAX).len(), 4);
        assert!(p.parts_for_range(200, 300).is_empty());
    }

    #[test]
    #[should_panic(expected = "distribution column out of range")]
    fn invalid_distribution_column_rejected() {
        TableDesc::new(
            MdId::new(SysId::Gpdb, 2, 1),
            "bad",
            vec![ColumnMeta::new("a", DataType::Int)],
            Distribution::Hashed(vec![5]),
        );
    }
}
