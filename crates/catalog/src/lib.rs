//! `orca-catalog` — metadata and statistics (§3 "Metadata Cache", §5
//! "Metadata Exchange").
//!
//! Orca is decoupled from its host system; all metadata flows through a
//! narrow provider interface:
//!
//! * [`table`] — table, column and index descriptors, including MPP
//!   distribution policy and range partitioning.
//! * [`stats`] — column histograms and table statistics, the raw material of
//!   cardinality estimation (§4.1 step 2).
//! * [`provider`] — the `MdProvider` plug-in trait with an in-memory
//!   implementation; a DXL file-based provider lives in `orca-dxl` (it needs
//!   the serialization layer).
//! * [`cache`] — the optimizer-side metadata cache with pin counting and
//!   version-based invalidation.
//! * [`accessor`] — the per-optimization-session `MdAccessor` that pins
//!   objects for the session, fetches through the provider on miss, and can
//!   harvest the touched set into a minimal AMPERe dump.

pub mod accessor;
pub mod cache;
pub mod provider;
pub mod stats;
pub mod table;

pub use accessor::MdAccessor;
pub use cache::MdCache;
pub use provider::{MdProvider, MemoryProvider};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{ColumnMeta, Distribution, IndexDesc, Partitioning, TableDesc};
