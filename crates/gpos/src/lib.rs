//! `orca-gpos` — the OS-abstraction substrate from §3 of the paper.
//!
//! GPOS gives Orca "a memory manager, primitives for concurrency control,
//! exception handling, file I/O and synchronized data structures", plus the
//! specialized **job scheduler** of §4.2 that runs fine-grained optimization
//! jobs across cores. This crate reproduces the pieces the optimizer needs:
//!
//! * [`sched`] — a dependency-aware job scheduler: jobs are re-entrant state
//!   machines that can spawn child jobs and suspend until they finish; jobs
//!   with the same *goal* are deduplicated so concurrent requests share one
//!   computation (the per-group job queues of §4.2).
//! * [`task`] — cooperative cancellation: abort flags, deadlines, and error
//!   capture so a failing job can tear down the whole optimization session.
//! * [`mem`] — memory accounting used to report the optimizer footprint
//!   statistics of §7.2.2.

pub mod mem;
pub mod sched;
pub mod task;

pub use mem::MemTracker;
pub use sched::{Job, JobHandle, Scheduler, StepResult};
pub use task::AbortSignal;
