//! The job scheduler of §4.2.
//!
//! Optimization is broken into small work units ("jobs"). Jobs form a
//! dependency graph: a parent spawns children and **suspends** until they
//! finish, freeing its worker thread to pick up other runnable jobs — this
//! is what lets thousands of fine-grained `Exp`/`Imp`/`Opt`/`Xform` jobs
//! saturate multiple cores. The scheduler reproduces the paper's three key
//! mechanisms:
//!
//! 1. **Re-entrant jobs**: a job is a state machine whose [`Job::step`] is
//!    called repeatedly; between calls it may be parked.
//! 2. **Dependency tracking**: children notify suspended parents on
//!    completion ("a parent job cannot finish before its child jobs
//!    finish").
//! 3. **Goal deduplication** (the per-group job queues): jobs are
//!    optionally registered under a *goal* key; a second request for an
//!    in-flight or finished goal never recomputes — it either links as a
//!    waiter or returns immediately ("suspended jobs can pick up the
//!    results of the completed job").
//!
//! Implementation: lock-free work distribution (crossbeam work-stealing
//! deques, one per worker, plus a global injector), atomic job states and
//! dependency counters, and small per-job mutexes only for the waiter
//! lists. Queue items are `Arc<JobEntry>` handles, so there is no global
//! job directory at all; the only global lock is the (low-traffic) goal
//! map.
//!
//! The scheduler is generic over a shared context `C` (the optimizer passes
//! its memo + metadata accessor) and a goal key `K`.

use crate::task::AbortSignal;
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use orca_common::hash::FnvHashMap;
use orca_common::{OrcaError, Result};
use parking_lot::{Mutex, RwLock};
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Outcome of one [`Job::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The job has finished; waiters are notified.
    Done,
    /// The job advanced its state and wants to run again soon.
    Runnable,
    /// The job is waiting for children spawned during this step. If all of
    /// them already finished, it is immediately re-queued.
    Suspended,
}

/// A re-entrant unit of work.
pub trait Job<C: ?Sized, K>: Send {
    /// Execute one step. Use `h` to spawn children; return
    /// [`StepResult::Suspended`] to wait for them.
    fn step(&mut self, h: &JobHandle<'_, C, K>, ctx: &C) -> StepResult;

    /// Human-readable kind, for tracing and stats.
    fn name(&self) -> &'static str {
        "job"
    }
}

const ST_QUEUED: u8 = 0;
const ST_RUNNING: u8 = 1;
const ST_SUSPENDED: u8 = 2;
const ST_DONE: u8 = 3;

struct JobEntry<C: ?Sized, K> {
    /// Present unless running or done.
    body: Mutex<Option<Box<dyn Job<C, K>>>>,
    state: AtomicU8,
    /// Unfinished children this job waits on.
    deps: AtomicUsize,
    /// Parents to notify on completion.
    waiters: Mutex<Vec<Handle<C, K>>>,
    goal: Option<K>,
}

type Handle<C, K> = std::sync::Arc<JobEntry<C, K>>;

enum GoalState<C: ?Sized, K> {
    Active(Handle<C, K>),
    Done,
}

/// Multi-core job scheduler (see module docs).
pub struct Scheduler<C: ?Sized, K> {
    goals: Mutex<FnvHashMap<K, GoalState<C, K>>>,
    injector: Injector<Handle<C, K>>,
    stealers: RwLock<Vec<Stealer<Handle<C, K>>>>,
    unfinished: AtomicUsize,
    abort: AbortSignal,
    steps: AtomicUsize,
    spawned: AtomicUsize,
    goal_hits: AtomicUsize,
}

/// Handle passed to a running job, used to spawn children. Spawned jobs go
/// to the calling worker's local deque when possible.
pub struct JobHandle<'s, C: ?Sized, K> {
    sched: &'s Scheduler<C, K>,
    me: &'s Handle<C, K>,
    local: Option<&'s Deque<Handle<C, K>>>,
}

impl<C: ?Sized + Sync, K: Hash + Eq + Clone + Send + Sync> Scheduler<C, K> {
    pub fn new() -> Self {
        Scheduler {
            goals: Mutex::new(FnvHashMap::default()),
            injector: Injector::new(),
            stealers: RwLock::new(Vec::new()),
            unfinished: AtomicUsize::new(0),
            abort: AbortSignal::new(),
            steps: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            goal_hits: AtomicUsize::new(0),
        }
    }

    /// The session's abort signal; jobs and external callers may trip it.
    pub fn abort_signal(&self) -> &AbortSignal {
        &self.abort
    }

    /// Total `step` invocations so far (diagnostics).
    pub fn steps_executed(&self) -> usize {
        self.steps.load(Ordering::Relaxed)
    }

    /// Total jobs created so far (diagnostics; the paper notes "hundreds or
    /// even thousands of job instances" per query).
    pub fn jobs_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// `spawn_goal` requests answered by an existing (active or finished)
    /// goal job instead of creating a new one — the effectiveness of the
    /// §4.2 goal deduplication.
    pub fn goal_hits(&self) -> usize {
        self.goal_hits.load(Ordering::Relaxed)
    }

    /// Create a job entry (not yet queued).
    fn create(&self, job: Box<dyn Job<C, K>>, goal: Option<K>) -> Handle<C, K> {
        self.unfinished.fetch_add(1, Ordering::SeqCst);
        self.spawned.fetch_add(1, Ordering::Relaxed);
        std::sync::Arc::new(JobEntry {
            body: Mutex::new(Some(job)),
            state: AtomicU8::new(ST_QUEUED),
            deps: AtomicUsize::new(0),
            waiters: Mutex::new(Vec::new()),
            goal,
        })
    }

    fn push_runnable(&self, entry: Handle<C, K>, local: Option<&Deque<Handle<C, K>>>) {
        match local {
            Some(d) => d.push(entry),
            None => self.injector.push(entry),
        }
    }

    /// Run `roots` plus everything they spawn to completion on `workers`
    /// threads (`workers == 1` executes inline on the calling thread).
    pub fn run(&self, ctx: &C, roots: Vec<Box<dyn Job<C, K>>>, workers: usize) -> Result<()> {
        for job in roots {
            let entry = self.create(job, None);
            self.injector.push(entry);
        }
        let workers = workers.max(1);
        let deques: Vec<Deque<Handle<C, K>>> = (0..workers).map(|_| Deque::new_fifo()).collect();
        {
            let mut st = self.stealers.write();
            st.clear();
            st.extend(deques.iter().map(|d| d.stealer()));
        }
        if workers == 1 {
            let d = deques.into_iter().next().expect("one deque");
            self.worker_loop(ctx, d);
        } else {
            std::thread::scope(|s| {
                for d in deques {
                    s.spawn(move || self.worker_loop(ctx, d));
                }
            });
        }
        if self.abort.is_aborted() {
            Err(self.abort.error())
        } else {
            Ok(())
        }
    }

    fn find_work(&self, local: &Deque<Handle<C, K>>) -> Option<Handle<C, K>> {
        if let Some(e) = local.pop() {
            return Some(e);
        }
        loop {
            match self.injector.steal_batch_and_pop(local) {
                crossbeam::deque::Steal::Success(e) => return Some(e),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        let stealers = self.stealers.read();
        for st in stealers.iter() {
            loop {
                match st.steal() {
                    crossbeam::deque::Steal::Success(e) => return Some(e),
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn worker_loop(&self, ctx: &C, local: Deque<Handle<C, K>>) {
        let local = &local;
        let mut backoff = 0u32;
        loop {
            if self.abort.is_aborted() {
                // Mark the session drained so siblings exit too.
                self.unfinished.store(0, Ordering::SeqCst);
                return;
            }
            if self.unfinished.load(Ordering::SeqCst) == 0 {
                return;
            }
            let Some(entry) = self.find_work(local) else {
                // Nothing runnable right now: suspended jobs may wake soon.
                backoff = (backoff + 1).min(10);
                if backoff > 6 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            };
            backoff = 0;
            let mut job = entry
                .body
                .lock()
                .take()
                .expect("runnable job owns its body");
            entry.state.store(ST_RUNNING, Ordering::SeqCst);

            self.steps.fetch_add(1, Ordering::Relaxed);
            let handle = JobHandle {
                sched: self,
                me: &entry,
                local: Some(local),
            };
            let res = catch_unwind(AssertUnwindSafe(|| job.step(&handle, ctx)));

            match res {
                Err(_) => {
                    self.abort.abort_with(OrcaError::Internal(format!(
                        "job '{}' panicked",
                        job.name()
                    )));
                }
                Ok(StepResult::Done) => {
                    self.complete(&entry, local);
                }
                Ok(StepResult::Runnable) => {
                    *entry.body.lock() = Some(job);
                    entry.state.store(ST_QUEUED, Ordering::SeqCst);
                    self.push_runnable(entry.clone(), Some(local));
                }
                Ok(StepResult::Suspended) => {
                    *entry.body.lock() = Some(job);
                    entry.state.store(ST_SUSPENDED, Ordering::SeqCst);
                    // Children may all have finished while we were
                    // stepping: claim the wake-up ourselves if so.
                    if entry.deps.load(Ordering::SeqCst) == 0
                        && entry
                            .state
                            .compare_exchange(
                                ST_SUSPENDED,
                                ST_QUEUED,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_ok()
                    {
                        self.push_runnable(entry.clone(), Some(local));
                    }
                }
            }
        }
    }

    fn complete(&self, entry: &Handle<C, K>, local: &Deque<Handle<C, K>>) {
        entry.state.store(ST_DONE, Ordering::SeqCst);
        if let Some(goal) = &entry.goal {
            self.goals.lock().insert(goal.clone(), GoalState::Done);
        }
        let waiters: Vec<Handle<C, K>> = std::mem::take(&mut *entry.waiters.lock());
        for we in waiters {
            let before = we.deps.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(before > 0, "dependency underflow");
            if before == 1
                && we
                    .state
                    .compare_exchange(ST_SUSPENDED, ST_QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.push_runnable(we, Some(local));
            }
        }
        self.unfinished.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<C: ?Sized + Sync, K: Hash + Eq + Clone + Send + Sync> Default for Scheduler<C, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: ?Sized + Sync, K: Hash + Eq + Clone + Send + Sync> JobHandle<'_, C, K> {
    /// The abort signal, for jobs that hit errors mid-step.
    pub fn abort_signal(&self) -> &AbortSignal {
        self.sched.abort_signal()
    }

    /// Spawn an anonymous child job; the current job will not resume until
    /// it completes (once the current step returns `Suspended`).
    ///
    /// Ordering matters: the parent's dependency count is raised *before*
    /// the child becomes reachable, so a fast child can never decrement a
    /// counter that was not yet incremented.
    pub fn spawn(&self, job: Box<dyn Job<C, K>>) {
        let child = self.sched.create(job, None);
        self.me.deps.fetch_add(1, Ordering::SeqCst);
        child.waiters.lock().push(self.me.clone());
        self.sched.push_runnable(child, self.local);
    }

    /// Spawn — or link to — the job computing `goal`.
    ///
    /// Returns `true` if the current job now depends on an unfinished goal
    /// (it should eventually return `Suspended`), `false` if the goal had
    /// already completed (its results are available in shared state).
    pub fn spawn_goal<F>(&self, goal: K, make: F) -> bool
    where
        F: FnOnce() -> Box<dyn Job<C, K>>,
    {
        // Hold the goal lock across linking so a completing goal job
        // cannot slip between the lookup and the waiter registration (the
        // completion path takes the same lock to mark Done).
        let mut goals = self.sched.goals.lock();
        match goals.get(&goal) {
            Some(GoalState::Done) => {
                self.sched.goal_hits.fetch_add(1, Ordering::Relaxed);
                false
            }
            Some(GoalState::Active(entry)) => {
                self.sched.goal_hits.fetch_add(1, Ordering::Relaxed);
                let entry = entry.clone();
                drop(goals);
                // Raise the dependency first, then register under the
                // waiter lock, re-checking DONE: `complete` stores DONE
                // *before* draining waiters, so seeing !DONE under this
                // lock guarantees the drain has not happened yet and will
                // observe our registration.
                self.me.deps.fetch_add(1, Ordering::SeqCst);
                let mut w = entry.waiters.lock();
                if entry.state.load(Ordering::SeqCst) == ST_DONE {
                    drop(w);
                    self.me.deps.fetch_sub(1, Ordering::SeqCst);
                    return false;
                }
                w.push(self.me.clone());
                true
            }
            None => {
                let child = self.sched.create(make(), Some(goal.clone()));
                goals.insert(goal, GoalState::Active(child.clone()));
                drop(goals);
                self.me.deps.fetch_add(1, Ordering::SeqCst);
                child.waiters.lock().push(self.me.clone());
                self.sched.push_runnable(child, self.local);
                true
            }
        }
    }

    /// Whether a goal has already completed.
    pub fn goal_done(&self, goal: &K) -> bool {
        matches!(self.sched.goals.lock().get(goal), Some(GoalState::Done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Context: a counter jobs bump on completion.
    struct Ctx {
        done: AtomicUsize,
        goal_runs: AtomicUsize,
    }

    /// A job that spawns `fanout` children `depth` deep, then completes.
    struct TreeJob {
        depth: u32,
        fanout: usize,
        spawned: bool,
    }

    impl Job<Ctx, u64> for TreeJob {
        fn step(&mut self, h: &JobHandle<'_, Ctx, u64>, ctx: &Ctx) -> StepResult {
            if self.depth > 0 && !self.spawned {
                self.spawned = true;
                for _ in 0..self.fanout {
                    h.spawn(Box::new(TreeJob {
                        depth: self.depth - 1,
                        fanout: self.fanout,
                        spawned: false,
                    }));
                }
                return StepResult::Suspended;
            }
            ctx.done.fetch_add(1, Ordering::Relaxed);
            StepResult::Done
        }
    }

    fn tree_size(depth: u32, fanout: usize) -> usize {
        if depth == 0 {
            1
        } else {
            1 + fanout * tree_size(depth - 1, fanout)
        }
    }

    #[test]
    fn tree_of_jobs_completes_serial_and_parallel() {
        for workers in [1, 4] {
            let sched: Scheduler<Ctx, u64> = Scheduler::new();
            let ctx = Ctx {
                done: AtomicUsize::new(0),
                goal_runs: AtomicUsize::new(0),
            };
            sched
                .run(
                    &ctx,
                    vec![Box::new(TreeJob {
                        depth: 4,
                        fanout: 3,
                        spawned: false,
                    })],
                    workers,
                )
                .unwrap();
            assert_eq!(ctx.done.load(Ordering::Relaxed), tree_size(4, 3));
            assert_eq!(sched.jobs_spawned(), tree_size(4, 3));
        }
    }

    /// A goal job that records it ran; parents dedup on the same goal.
    struct GoalJob;
    impl Job<Ctx, u64> for GoalJob {
        fn step(&mut self, _h: &JobHandle<'_, Ctx, u64>, ctx: &Ctx) -> StepResult {
            ctx.goal_runs.fetch_add(1, Ordering::Relaxed);
            StepResult::Done
        }
    }

    struct ParentJob {
        goal: u64,
        spawned: bool,
    }
    impl Job<Ctx, u64> for ParentJob {
        fn step(&mut self, h: &JobHandle<'_, Ctx, u64>, ctx: &Ctx) -> StepResult {
            if !self.spawned {
                self.spawned = true;
                if h.spawn_goal(self.goal, || Box::new(GoalJob)) {
                    return StepResult::Suspended;
                }
            }
            assert!(h.goal_done(&self.goal));
            ctx.done.fetch_add(1, Ordering::Relaxed);
            StepResult::Done
        }
    }

    #[test]
    fn goal_dedup_runs_goal_once() {
        for workers in [1, 8] {
            let sched: Scheduler<Ctx, u64> = Scheduler::new();
            let ctx = Ctx {
                done: AtomicUsize::new(0),
                goal_runs: AtomicUsize::new(0),
            };
            let roots: Vec<Box<dyn Job<Ctx, u64>>> = (0..64)
                .map(|_| {
                    Box::new(ParentJob {
                        goal: 42,
                        spawned: false,
                    }) as Box<dyn Job<Ctx, u64>>
                })
                .collect();
            sched.run(&ctx, roots, workers).unwrap();
            assert_eq!(ctx.goal_runs.load(Ordering::Relaxed), 1, "goal ran once");
            assert_eq!(ctx.done.load(Ordering::Relaxed), 64);
        }
    }

    struct AbortingJob;
    impl Job<Ctx, u64> for AbortingJob {
        fn step(&mut self, h: &JobHandle<'_, Ctx, u64>, _ctx: &Ctx) -> StepResult {
            h.abort_signal()
                .abort_with(OrcaError::InjectedFault("boom".into()));
            StepResult::Done
        }
    }

    #[test]
    fn abort_propagates_error_and_stops() {
        let sched: Scheduler<Ctx, u64> = Scheduler::new();
        let ctx = Ctx {
            done: AtomicUsize::new(0),
            goal_runs: AtomicUsize::new(0),
        };
        let mut roots: Vec<Box<dyn Job<Ctx, u64>>> = vec![Box::new(AbortingJob)];
        for _ in 0..16 {
            roots.push(Box::new(TreeJob {
                depth: 2,
                fanout: 2,
                spawned: false,
            }));
        }
        let err = sched.run(&ctx, roots, 4).unwrap_err();
        assert_eq!(err, OrcaError::InjectedFault("boom".into()));
    }

    struct PanickingJob;
    impl Job<Ctx, u64> for PanickingJob {
        fn step(&mut self, _h: &JobHandle<'_, Ctx, u64>, _ctx: &Ctx) -> StepResult {
            panic!("unexpected");
        }
        fn name(&self) -> &'static str {
            "panicker"
        }
    }

    #[test]
    fn panic_becomes_internal_error() {
        let sched: Scheduler<Ctx, u64> = Scheduler::new();
        let ctx = Ctx {
            done: AtomicUsize::new(0),
            goal_runs: AtomicUsize::new(0),
        };
        let err = sched
            .run(&ctx, vec![Box::new(PanickingJob)], 2)
            .unwrap_err();
        assert_eq!(err.kind(), "internal");
        assert!(err.message().contains("panicker"));
    }

    #[test]
    fn deep_tree_many_workers() {
        let sched: Scheduler<Ctx, u64> = Scheduler::new();
        let ctx = Ctx {
            done: AtomicUsize::new(0),
            goal_runs: AtomicUsize::new(0),
        };
        sched
            .run(
                &ctx,
                vec![Box::new(TreeJob {
                    depth: 9,
                    fanout: 2,
                    spawned: false,
                })],
                8,
            )
            .unwrap();
        assert_eq!(ctx.done.load(Ordering::Relaxed), tree_size(9, 2));
        assert!(sched.steps_executed() >= tree_size(9, 2));
    }

    /// Many parents race to register against the same goal while it is
    /// completing — no lost wakeups, no double execution.
    #[test]
    fn goal_linking_race_stress() {
        for _ in 0..20 {
            let sched: Scheduler<Ctx, u64> = Scheduler::new();
            let ctx = Ctx {
                done: AtomicUsize::new(0),
                goal_runs: AtomicUsize::new(0),
            };
            let roots: Vec<Box<dyn Job<Ctx, u64>>> = (0..128)
                .map(|i| {
                    Box::new(ParentJob {
                        goal: (i % 4) as u64,
                        spawned: false,
                    }) as Box<dyn Job<Ctx, u64>>
                })
                .collect();
            sched.run(&ctx, roots, 8).unwrap();
            assert_eq!(ctx.goal_runs.load(Ordering::Relaxed), 4);
            assert_eq!(ctx.done.load(Ordering::Relaxed), 128);
        }
    }
}
