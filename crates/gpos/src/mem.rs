//! Memory accounting.
//!
//! GPOS ships a full memory manager with allocation pools; in safe Rust the
//! global allocator does the allocating, and what the optimizer actually
//! *uses* the memory manager for in the paper's evaluation is footprint
//! reporting ("the average memory footprint is around 200 MB", §7.2.2).
//! [`MemTracker`] is a thread-safe byte counter with peak tracking that the
//! Memo and metadata cache report their estimated sizes to.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe byte accounting with a high-water mark.
#[derive(Debug, Default)]
pub struct MemTracker {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemTracker {
    pub fn new() -> MemTracker {
        MemTracker::default()
    }

    /// Record an allocation of `bytes`.
    pub fn add(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record a release of `bytes`. Saturates at zero rather than panicking:
    /// trackers are diagnostics, not correctness.
    pub fn sub(&self, bytes: u64) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// Rough heap size estimation for footprint reporting. Implementors return
/// their owned bytes (not including `size_of::<Self>()` unless boxed).
pub trait HeapSize {
    fn heap_bytes(&self) -> u64;
}

impl HeapSize for String {
    fn heap_bytes(&self) -> u64 {
        self.capacity() as u64
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> u64 {
        self.capacity() as u64 * std::mem::size_of::<T>() as u64
            + self.iter().map(HeapSize::heap_bytes).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_and_peak() {
        let t = MemTracker::new();
        t.add(100);
        t.add(50);
        assert_eq!(t.current(), 150);
        t.sub(120);
        assert_eq!(t.current(), 30);
        assert_eq!(t.peak(), 150);
        // Saturating subtraction.
        t.sub(1000);
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 150);
        t.reset();
        assert_eq!(t.peak(), 0);
    }

    #[test]
    fn concurrent_accounting_balances() {
        let t = std::sync::Arc::new(MemTracker::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.add(7);
                        t.sub(7);
                    }
                });
            }
        });
        assert_eq!(t.current(), 0);
        assert!(t.peak() >= 7);
    }
}
