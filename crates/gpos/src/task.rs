//! Cooperative cancellation and error capture.
//!
//! Orca's exception handling unwinds an optimization session when a job
//! raises; here a failing job records its error in the shared
//! [`AbortSignal`], every worker observes the flag and stops picking up
//! work, and the session entry point surfaces the first recorded error.
//! Deadlines implement the per-stage timeouts of §4.1 (multi-stage
//! optimization).

use orca_common::{OrcaError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Shared cancellation token for one optimization session (or stage).
///
/// The hot path ([`AbortSignal::is_aborted`]) is lock-free — it is called
/// once per scheduler job step by every worker, so a mutex here would
/// serialize the whole optimizer.
#[derive(Debug)]
pub struct AbortSignal {
    aborted: AtomicBool,
    reason: Mutex<Option<OrcaError>>,
    /// Deadline as nanoseconds after `base`; 0 = no deadline.
    deadline_ns: AtomicU64,
    base: Instant,
}

impl Default for AbortSignal {
    fn default() -> AbortSignal {
        AbortSignal {
            aborted: AtomicBool::new(false),
            reason: Mutex::new(None),
            deadline_ns: AtomicU64::new(0),
            base: Instant::now(),
        }
    }
}

impl AbortSignal {
    pub fn new() -> AbortSignal {
        AbortSignal::default()
    }

    /// Install a deadline; [`AbortSignal::check`] starts failing once it has
    /// passed.
    pub fn set_deadline(&self, deadline: Instant) {
        let ns = deadline
            .saturating_duration_since(self.base)
            .as_nanos()
            .max(1) as u64;
        self.deadline_ns.store(ns, Ordering::SeqCst);
    }

    pub fn clear_deadline(&self) {
        self.deadline_ns.store(0, Ordering::SeqCst);
    }

    /// Record an error and trip the flag. The first error wins; later ones
    /// are dropped (they are almost always consequences of the first).
    pub fn abort_with(&self, err: OrcaError) {
        {
            let mut r = self.reason.lock();
            if r.is_none() {
                *r = Some(err);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
    }

    /// Trip the flag without an error payload (external cancellation).
    pub fn abort(&self) {
        self.abort_with(OrcaError::Aborted("cancelled".into()));
    }

    pub fn is_aborted(&self) -> bool {
        if self.aborted.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.deadline_ns.load(Ordering::Relaxed);
        if deadline != 0 && self.base.elapsed().as_nanos() as u64 >= deadline {
            self.abort_with(OrcaError::Timeout("deadline expired".into()));
            return true;
        }
        false
    }

    /// Whether the abort (if any) was caused by deadline expiry rather than
    /// a hard error. Search drivers use this to truncate gracefully — a
    /// timed-out phase leaves a consistent (if incomplete) memo — while
    /// still surfacing real errors.
    pub fn deadline_expired(&self) -> bool {
        self.is_aborted() && matches!(&*self.reason.lock(), Some(OrcaError::Timeout(_)))
    }

    /// `Err` once aborted; call this at job boundaries and inside long loops.
    pub fn check(&self) -> Result<()> {
        if self.is_aborted() {
            Err(self.error())
        } else {
            Ok(())
        }
    }

    /// The recorded error, or a generic `Aborted` if only the flag was set.
    pub fn error(&self) -> OrcaError {
        self.reason
            .lock()
            .clone()
            .unwrap_or_else(|| OrcaError::Aborted("aborted".into()))
    }

    /// Reset for reuse across optimization stages. Only meaningful between
    /// `Scheduler::run` calls.
    pub fn reset(&self) {
        self.aborted.store(false, Ordering::SeqCst);
        *self.reason.lock() = None;
        self.deadline_ns.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn abort_records_first_error() {
        let s = AbortSignal::new();
        assert!(s.check().is_ok());
        s.abort_with(OrcaError::Internal("first".into()));
        s.abort_with(OrcaError::Internal("second".into()));
        assert!(s.is_aborted());
        assert_eq!(s.error(), OrcaError::Internal("first".into()));
    }

    #[test]
    fn deadline_trips_typed_timeout() {
        let s = AbortSignal::new();
        s.set_deadline(Instant::now() - Duration::from_millis(1));
        assert!(s.check().is_err());
        assert_eq!(s.error().kind(), "timeout");
        assert!(s.deadline_expired());
        // An externally-cancelled signal is NOT a deadline expiry.
        let c = AbortSignal::new();
        c.abort();
        assert!(!c.deadline_expired());
        assert_eq!(c.error().kind(), "aborted");
    }

    #[test]
    fn reset_clears_state() {
        let s = AbortSignal::new();
        s.abort();
        s.reset();
        assert!(s.check().is_ok());
    }
}
