//! Cross-query work sharing: the byte-budgeted shared fragment cache.
//!
//! Concurrently admitted queries that scan the same table fragment —
//! same table *name and version*, same projection/pruning/predicate
//! fingerprint, same segment — should read storage once. The cache keys
//! fragments on [`FragmentKey`]; the predicate contributes through its
//! hash-consed id ([`orca_expr::intern::fragment_fingerprint`]), so
//! detection is an O(1) probe after the first sighting of a predicate.
//!
//! **Cooperative scans.** A probe that misses installs a `Filling` slot
//! and returns [`Probe::Lead`]: the caller performs the scan and
//! publishes the result. A probe that finds `Filling` waits on a condvar
//! (10ms abort-poll, the repo-wide liveness convention) and attaches to
//! the leader's result when it lands — the scan happens once no matter
//! how many queries race to it. A leader can never block between
//! installing `Filling` and publishing (the scan is pure in-memory
//! compute), so waiters always make progress; if the leader errors or
//! unwinds, its guard removes the slot and wakes the waiters, and the
//! first of them takes over the lead.
//!
//! **Invalidation** rides the versioned `MdId` machinery: the version is
//! part of the key, so a bumped table simply never matches, and
//! publishing a fragment purges every `Ready` entry of the same table at
//! a *different* version (counted as an invalidation).
//!
//! **Budget.** Entries are evicted LRU (by probe tick) whenever the
//! resident byte total exceeds the budget; `Filling` slots and the
//! just-published entry are never evicted.

use crate::columnar::ColumnBatch;
use orca_common::{ColId, Result};
use orca_expr::intern::{fragment_fingerprint, ExprInterner};
use orca_expr::scalar::ScalarExpr;
use orca_gpos::AbortSignal;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Identity of one cached scan fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Table *name* — queries are rebound to current versions by name,
    /// so the name is the stable identity across version bumps.
    pub table: String,
    /// Table version at scan time (from the versioned `MdId`).
    pub version: u32,
    /// [`fragment_fingerprint`] over cols/parts/batch-size/predicate.
    pub fingerprint: u64,
    /// Physical storage segment this fragment was scanned from.
    pub segment: usize,
}

/// One materialized fragment: the batches a scan (plus optional fused
/// filter) produced for one segment, with the accounting needed to
/// replay the work's stats without redoing it.
#[derive(Debug)]
pub struct Fragment {
    pub batches: Vec<ColumnBatch>,
    /// Rows read from storage to build this fragment (≥ the rows in
    /// `batches` when a filter was fused). Replay charges this to
    /// `rows_processed` exactly as the real scan would.
    pub scan_rows: u64,
    /// Batches the raw scan produced (profile accounting on replay).
    pub scan_batches: u64,
    /// Chunks the leader's scan dropped via zone maps / dictionary
    /// misses, and dict-conjunct evaluations it ran in code space —
    /// replayed into `ExecStats` on every reuse, since a cache hit
    /// stands for the same pruned scan.
    pub chunks_skipped: u64,
    pub dict_hits: u64,
    /// Resident cost charged against the cache budget: *physical*
    /// bytes, with `Arc`-shared buffers (whole table chunks entering
    /// the fragment zero-copy, dictionary pages shared across batches)
    /// counted once each, and dict columns priced at codes + dictionary
    /// rather than their decoded width.
    pub bytes: u64,
}

impl Fragment {
    pub fn new(batches: Vec<ColumnBatch>, scan_rows: u64, scan_batches: u64) -> Fragment {
        let mut seen = std::collections::HashSet::new();
        let bytes = batches.iter().map(|b| b.physical_bytes(&mut seen)).sum();
        Fragment {
            batches,
            scan_rows,
            scan_batches,
            chunks_skipped: 0,
            dict_hits: 0,
            bytes,
        }
    }

    pub fn with_skips(mut self, chunks_skipped: u64, dict_hits: u64) -> Fragment {
        self.chunks_skipped = chunks_skipped;
        self.dict_hits = dict_hits;
        self
    }
}

enum SlotState {
    Filling,
    Ready(Arc<Fragment>),
}

struct Slot {
    state: SlotState,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<FragmentKey, Slot>,
    bytes: u64,
    tick: u64,
}

/// Counter snapshot for stats surfaces.
#[derive(Debug, Clone, Copy, Default)]
pub struct FragmentCacheStats {
    /// Probes served from an already-`Ready` fragment.
    pub reused: u64,
    /// Fragments published by scan leaders.
    pub inserted: u64,
    /// Probes that attached to an in-flight cooperative scan.
    pub coop_attached: u64,
    pub evictions: u64,
    /// Stale-version entries purged when a newer version published.
    pub invalidations: u64,
    /// Resident bytes / entries right now.
    pub bytes: u64,
    pub entries: u64,
}

/// Result of [`FragmentCache::begin`].
pub enum Probe<'a> {
    /// The fragment is resident: reuse it.
    Ready(Arc<Fragment>),
    /// This caller leads the scan: do the work, then
    /// [`LeadGuard::publish`] it.
    Lead(LeadGuard<'a>),
}

/// The shared cache. One instance typically lives on the serving layer
/// and is attached to every engine it constructs.
pub struct FragmentCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    budget: u64,
    /// Process-wide executor memory budget ([`crate::memory`]); resident
    /// fragment bytes are charged against it so cached fragments compete
    /// with query operator state for the same pool.
    process: Option<Arc<crate::memory::MemoryBudget>>,
    interner: ExprInterner,
    reused: AtomicU64,
    inserted: AtomicU64,
    coop_attached: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl FragmentCache {
    pub fn new(budget_bytes: u64) -> FragmentCache {
        FragmentCache {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            budget: budget_bytes,
            process: None,
            interner: ExprInterner::new(),
            reused: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            coop_attached: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Charge resident fragment bytes against a process-wide budget (in
    /// addition to this cache's own byte budget).
    pub fn with_process_budget(
        mut self,
        budget: Arc<crate::memory::MemoryBudget>,
    ) -> FragmentCache {
        self.process = Some(budget);
        self
    }

    /// Fragment fingerprint through this cache's interner.
    pub fn fingerprint(
        &self,
        cols: &[ColId],
        parts: &Option<Vec<usize>>,
        batch_size: usize,
        pred: Option<&ScalarExpr>,
    ) -> u64 {
        fragment_fingerprint(&self.interner, cols, parts, batch_size, pred)
    }

    /// Probe for `key`: reuse a resident fragment, attach to an
    /// in-flight scan, or take the lead.
    pub fn begin(&self, key: &FragmentKey, abort: Option<&AbortSignal>) -> Result<Probe<'_>> {
        enum Found {
            Ready(Arc<Fragment>),
            Filling,
            Missing,
        }
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            if let Some(a) = abort {
                a.check()?;
            }
            inner.tick += 1;
            let tick = inner.tick;
            let found = match inner.map.get_mut(key) {
                Some(slot) => match &slot.state {
                    SlotState::Ready(f) => {
                        slot.last_used = tick;
                        Found::Ready(Arc::clone(f))
                    }
                    SlotState::Filling => Found::Filling,
                },
                None => Found::Missing,
            };
            match found {
                Found::Ready(f) => {
                    if waited {
                        self.coop_attached.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.reused.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Probe::Ready(f));
                }
                Found::Filling => {
                    waited = true;
                    let (guard, _) = self
                        .ready
                        .wait_timeout(inner, Duration::from_millis(10))
                        .unwrap();
                    inner = guard;
                }
                Found::Missing => {
                    inner.map.insert(
                        key.clone(),
                        Slot {
                            state: SlotState::Filling,
                            last_used: tick,
                        },
                    );
                    return Ok(Probe::Lead(LeadGuard {
                        cache: self,
                        key: key.clone(),
                        published: false,
                    }));
                }
            }
        }
    }

    pub fn stats(&self) -> FragmentCacheStats {
        let inner = self.inner.lock().unwrap();
        FragmentCacheStats {
            reused: self.reused.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            coop_attached: self.coop_attached.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            bytes: inner.bytes,
            entries: inner.map.len() as u64,
        }
    }

    fn install(&self, key: &FragmentKey, frag: Fragment) -> Arc<Fragment> {
        let frag = Arc::new(frag);
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // A newer version of this table landing means every other
        // version's fragments are stale: purge them.
        let stale: Vec<FragmentKey> = inner
            .map
            .keys()
            .filter(|k| k.table == key.table && k.version != key.version)
            .cloned()
            .collect();
        for k in stale {
            // Only purge resident entries; an in-flight Filling slot
            // belongs to its leader until published or abandoned.
            let is_ready = matches!(
                inner.map.get(&k).map(|s| &s.state),
                Some(SlotState::Ready(_))
            );
            if is_ready {
                if let Some(Slot {
                    state: SlotState::Ready(f),
                    ..
                }) = inner.map.remove(&k)
                {
                    inner.bytes -= f.bytes;
                    if let Some(p) = &self.process {
                        p.uncharge(f.bytes);
                    }
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(slot) = inner.map.get_mut(key) {
            debug_assert!(matches!(slot.state, SlotState::Filling));
            slot.state = SlotState::Ready(Arc::clone(&frag));
            slot.last_used = tick;
            inner.bytes += frag.bytes;
            if let Some(p) = &self.process {
                p.charge(frag.bytes);
            }
            self.inserted.fetch_add(1, Ordering::Relaxed);
        }
        // LRU eviction down to budget; `Filling` slots and the entry we
        // just published survive.
        while inner.bytes > self.budget {
            let victim = inner
                .map
                .iter()
                .filter(|(k, slot)| *k != key && matches!(slot.state, SlotState::Ready(_)))
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slot) = inner.map.remove(&victim) {
                if let SlotState::Ready(f) = slot.state {
                    inner.bytes -= f.bytes;
                    if let Some(p) = &self.process {
                        p.uncharge(f.bytes);
                    }
                }
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        drop(inner);
        self.ready.notify_all();
        frag
    }

    fn abandon(&self, key: &FragmentKey) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(slot) = inner.map.get(key) {
            if matches!(slot.state, SlotState::Filling) {
                inner.map.remove(key);
            }
        }
        drop(inner);
        self.ready.notify_all();
    }
}

impl Drop for FragmentCache {
    fn drop(&mut self) {
        // Return the cache's resident bytes to the process-wide budget.
        if let Some(p) = &self.process {
            p.uncharge(self.inner.lock().unwrap().bytes);
        }
    }
}

impl std::fmt::Debug for FragmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FragmentCache")
            .field("budget", &self.budget)
            .field("bytes", &s.bytes)
            .field("entries", &s.entries)
            .finish()
    }
}

/// Exclusive right (and obligation) to fill one `Filling` slot. Dropping
/// the guard without publishing — the leader errored or unwound —
/// removes the slot and wakes the waiters so one of them re-leads.
pub struct LeadGuard<'a> {
    cache: &'a FragmentCache,
    key: FragmentKey,
    published: bool,
}

impl LeadGuard<'_> {
    /// Publish the scanned fragment and wake every attached waiter.
    /// Returns the shared handle so the leader reuses the same bytes.
    pub fn publish(mut self, frag: Fragment) -> Arc<Fragment> {
        self.published = true;
        self.cache.install(&self.key, frag)
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.cache.abandon(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::Datum;

    fn batch(vals: &[i64]) -> ColumnBatch {
        let rows: Vec<Vec<Datum>> = vals.iter().map(|v| vec![Datum::Int(*v)]).collect();
        ColumnBatch::from_rows(&rows, 1)
    }

    fn key(table: &str, version: u32, fp: u64) -> FragmentKey {
        FragmentKey {
            table: table.into(),
            version,
            fingerprint: fp,
            segment: 0,
        }
    }

    #[test]
    fn lead_publish_then_reuse() {
        let cache = FragmentCache::new(1 << 20);
        let k = key("t", 1, 42);
        let Probe::Lead(g) = cache.begin(&k, None).unwrap() else {
            panic!("first probe must lead");
        };
        g.publish(Fragment::new(vec![batch(&[1, 2, 3])], 3, 1));
        let Probe::Ready(f) = cache.begin(&k, None).unwrap() else {
            panic!("second probe must reuse");
        };
        assert_eq!(f.scan_rows, 3);
        let s = cache.stats();
        assert_eq!((s.inserted, s.reused, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn abandoned_lead_lets_the_next_prober_lead() {
        let cache = FragmentCache::new(1 << 20);
        let k = key("t", 1, 7);
        let Probe::Lead(g) = cache.begin(&k, None).unwrap() else {
            panic!();
        };
        drop(g); // leader errored
        assert!(matches!(cache.begin(&k, None).unwrap(), Probe::Lead(_)));
    }

    #[test]
    fn newer_version_purges_older_fragments() {
        let cache = FragmentCache::new(1 << 20);
        let k1 = key("t", 1, 42);
        let Probe::Lead(g) = cache.begin(&k1, None).unwrap() else {
            panic!();
        };
        g.publish(Fragment::new(vec![batch(&[1])], 1, 1));
        let k2 = key("t", 2, 42);
        let Probe::Lead(g) = cache.begin(&k2, None).unwrap() else {
            panic!();
        };
        g.publish(Fragment::new(vec![batch(&[9])], 1, 1));
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 1);
        // The old version misses (its entry is gone) → new lead.
        assert!(matches!(cache.begin(&k1, None).unwrap(), Probe::Lead(_)));
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let cache = FragmentCache::new(1); // everything over budget
        for fp in 0..3u64 {
            let k = key("t", 1, fp);
            let Probe::Lead(g) = cache.begin(&k, None).unwrap() else {
                panic!();
            };
            g.publish(Fragment::new(vec![batch(&[1, 2])], 2, 1));
        }
        let s = cache.stats();
        assert!(s.evictions >= 2, "evictions={}", s.evictions);
        // The just-published entry always survives its own insert.
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn waiter_attaches_to_inflight_scan() {
        let cache = Arc::new(FragmentCache::new(1 << 20));
        let k = key("t", 1, 5);
        let Probe::Lead(g) = cache.begin(&k, None).unwrap() else {
            panic!();
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            std::thread::spawn(move || match cache.begin(&k, None).unwrap() {
                Probe::Ready(f) => f.scan_rows,
                Probe::Lead(_) => panic!("slot was filling"),
            })
        };
        // Give the waiter time to observe Filling, then publish.
        std::thread::sleep(Duration::from_millis(30));
        g.publish(Fragment::new(vec![batch(&[1, 2, 3, 4])], 4, 1));
        assert_eq!(waiter.join().unwrap(), 4);
        assert_eq!(cache.stats().coop_attached, 1);
    }
}
