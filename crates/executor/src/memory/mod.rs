//! Memory governance: process-wide budget, per-query grants, preflight.
//!
//! Orca (§2.1) targets MPP engines whose operators run under fixed
//! per-segment memory budgets. This module makes `work_mem_bytes` a real
//! constraint instead of cost-model fiction:
//!
//! * [`MemoryBudget`] — one process-wide accounting domain shared by
//!   live queries, the cross-query fragment cache ([`crate::sharing`])
//!   and parallel CTE spools ([`crate::parallel`]). Charging never
//!   blocks (enforcement is the grant broker's job in `orca-service`);
//!   the budget records usage and high-water marks so occupancy is
//!   observable from one place.
//! * [`MemoryTracker`] — one per query, shared by every gang worker of
//!   a parallel run. Carries the query's per-segment grant: the
//!   effective operator budget is `min(work_mem_bytes, grant)`, so a
//!   degraded (smaller) grant from the broker forces earlier spilling
//!   without touching cluster config.
//! * [`preflight`] — a plan walk that raises a typed
//!   [`OrcaError::OutOfMemory`] *before* execution starts when a
//!   hash/NL-join build side provably cannot fit and the engine cannot
//!   spill, replacing the old mid-query `Execution` abort for every
//!   provable case.

use orca_common::{OrcaError, Result};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide memory accounting domain. Pure bookkeeping: `charge`
/// never blocks and never fails — admission control happens before a
/// query starts (the service's grant broker), not in the middle of an
/// operator, which keeps the executor deadlock-free by construction.
#[derive(Debug, Default)]
pub struct MemoryBudget {
    /// Budget ceiling in bytes; `0` = unbounded (accounting only).
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryBudget {
    pub fn new(limit: u64) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Accounting-only (unbounded) domain.
    pub fn unbounded() -> MemoryBudget {
        MemoryBudget::new(0)
    }

    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Record `bytes` as resident. Returns `false` when the charge takes
    /// the domain over its limit — callers treat that as a pressure
    /// signal (spill earlier, shed cache entries), never as an error.
    pub fn charge(&self, bytes: u64) -> bool {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.limit == 0 || now <= self.limit
    }

    pub fn uncharge(&self, bytes: u64) {
        // Saturating: a release can race a concurrent snapshot but must
        // never wrap below zero.
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A one-shot renegotiation callback installed by the grant broker:
/// returns the query's new *total* grant in bytes, or 0 when the pool
/// had nothing to give.
pub type RegrantFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Per-query grant accounting, shared (via `Arc`) by every kernel
/// instance of one query — the serial interpreter or all gang workers
/// of a parallel run. Operator state (hash-join build, aggregate
/// groups, sort buffer) is reserved here while resident and released
/// when the operator finishes, charging through to the process budget
/// when one is attached.
#[derive(Default)]
pub struct MemoryTracker {
    /// Per-segment grant in bytes; `None` = ungoverned (operator budget
    /// falls back to `work_mem_bytes` alone). Atomic so a mid-query
    /// renegotiation can raise it under every gang worker's feet.
    per_seg_grant: Option<AtomicU64>,
    /// Total grant held for this query (released by the broker, not us).
    granted: AtomicU64,
    num_segments: usize,
    budget: Option<Arc<MemoryBudget>>,
    used: AtomicU64,
    peak: AtomicU64,
    /// One-shot upward renegotiation of a degraded grant, consumed at
    /// the first would-spill moment (see [`MemoryTracker::try_regrant`]).
    regrant: std::sync::Mutex<Option<RegrantFn>>,
}

impl std::fmt::Debug for MemoryTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryTracker")
            .field("per_seg_grant", &self.per_seg_grant)
            .field("granted", &self.granted)
            .field("used", &self.used)
            .field("peak", &self.peak)
            .field(
                "regrant",
                &self.regrant.lock().unwrap().as_ref().map(|_| "<hook>"),
            )
            .finish()
    }
}

impl MemoryTracker {
    /// Ungoverned tracker: accounting only, no grant ceiling.
    pub fn unbounded() -> MemoryTracker {
        MemoryTracker::default()
    }

    /// Tracker for a brokered grant of `granted` bytes split evenly
    /// across `num_segments`, charging through to `budget`.
    pub fn granted(
        granted: u64,
        num_segments: usize,
        budget: Option<Arc<MemoryBudget>>,
    ) -> MemoryTracker {
        let per_seg = (granted / num_segments.max(1) as u64).max(1);
        MemoryTracker {
            per_seg_grant: Some(AtomicU64::new(per_seg)),
            granted: AtomicU64::new(granted),
            num_segments,
            budget,
            ..MemoryTracker::default()
        }
    }

    /// Attach a process budget without imposing a grant ceiling.
    pub fn with_budget(budget: Arc<MemoryBudget>) -> MemoryTracker {
        MemoryTracker {
            budget: Some(budget),
            ..MemoryTracker::default()
        }
    }

    /// The per-segment operator budget: the tighter of the cluster's
    /// `work_mem_bytes` and this query's per-segment grant. A degraded
    /// grant lowers this below `work_mem`, forcing operators to spill
    /// earlier — the broker's "smaller grant ⇒ forced spill" ladder.
    pub fn operator_budget(&self, work_mem_bytes: u64) -> u64 {
        match &self.per_seg_grant {
            Some(g) => g.load(Ordering::Relaxed).min(work_mem_bytes),
            None => work_mem_bytes,
        }
    }

    pub fn granted_bytes(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Install the degraded grant's one-shot renegotiation callback.
    pub fn set_regrant(&self, hook: RegrantFn) {
        *self.regrant.lock().unwrap() = Some(hook);
    }

    /// Renegotiate the grant upward, once, at the first would-spill
    /// moment. Consumes the hook whatever the outcome — a second spill
    /// site must not retry a pool that already said no. Returns `true`
    /// when the grant actually grew (the caller should re-read its
    /// operator budget and may be able to skip the spill).
    pub fn try_regrant(&self) -> bool {
        let Some(hook) = self.regrant.lock().unwrap().take() else {
            return false;
        };
        let new_total = hook();
        let old = self.granted.load(Ordering::Relaxed);
        if new_total <= old {
            return false;
        }
        self.granted.store(new_total, Ordering::Relaxed);
        if let Some(g) = &self.per_seg_grant {
            let per_seg = (new_total / self.num_segments.max(1) as u64).max(1);
            g.store(per_seg, Ordering::Relaxed);
        }
        true
    }

    /// Reserve `bytes` of operator state.
    pub fn reserve(&self, bytes: u64) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        if let Some(b) = &self.budget {
            b.charge(bytes);
        }
    }

    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        if let Some(b) = &self.budget {
            b.uncharge(bytes);
        }
    }

    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The process-wide domain this tracker charges into, if any.
    pub fn budget(&self) -> Option<Arc<MemoryBudget>> {
        self.budget.clone()
    }
}

/// Provable per-segment byte lower bounds of a subtree's output.
///
/// Only subtrees whose output is fully determined by storage are bounded
/// (scans, and motions of bounded inputs); anything that can *reduce*
/// rows (filters, projections that narrow widths, aggregates, joins,
/// limits) bounds to zero so preflight never rejects a query that would
/// have fit at runtime.
struct Bound {
    per_seg: Vec<u64>,
    /// Every slot holds an identical full copy (replicated table or
    /// broadcast result); a motion of such a stream ships one copy.
    replicated: bool,
}

impl Bound {
    fn zero(n: usize) -> Bound {
        Bound {
            per_seg: vec![0; n],
            replicated: false,
        }
    }

    /// Bytes of one distinct copy of the stream.
    fn distinct_total(&self) -> u64 {
        if self.replicated {
            self.per_seg.first().copied().unwrap_or(0)
        } else {
            self.per_seg.iter().sum()
        }
    }
}

fn bound_of(plan: &PhysicalPlan, db: &crate::storage::Database, n: usize) -> Bound {
    match &plan.op {
        PhysicalOp::TableScan { table, parts, .. } | PhysicalOp::IndexScan { table, parts, .. } => {
            let Ok(t) = db.table(table.mdid) else {
                return Bound::zero(n);
            };
            let per_seg: Vec<u64> = (0..n)
                .map(|s| {
                    t.scan(s, parts)
                        .iter()
                        .map(|r| r.iter().map(orca_common::Datum::width).sum::<u64>())
                        .sum()
                })
                .collect();
            let replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            Bound {
                per_seg,
                replicated,
            }
        }
        PhysicalOp::Motion { kind } => {
            let child = bound_of(&plan.children[0], db, n);
            let total = child.distinct_total();
            match kind {
                MotionKind::Gather | MotionKind::GatherMerge(_) => {
                    let mut per_seg = vec![0; n];
                    per_seg[0] = total;
                    Bound {
                        per_seg,
                        replicated: false,
                    }
                }
                MotionKind::Broadcast => Bound {
                    per_seg: vec![total; n],
                    replicated: true,
                },
                // A redistribute conserves total bytes but the per-segment
                // placement depends on key hashes; no provable per-segment
                // lower bound without evaluating them.
                MotionKind::Redistribute(_) => Bound::zero(n),
            }
        }
        // Row-preserving pass-throughs.
        PhysicalOp::Sort { .. } | PhysicalOp::Spool | PhysicalOp::CteProducer { .. } => {
            bound_of(&plan.children[0], db, n)
        }
        PhysicalOp::UnionAll { .. } => {
            let mut per_seg = vec![0u64; n];
            for c in &plan.children {
                let b = bound_of(c, db, n);
                for (s, v) in b.per_seg.iter().enumerate() {
                    per_seg[s] += v;
                }
            }
            Bound {
                per_seg,
                replicated: false,
            }
        }
        // Everything else can reduce rows or rewrite widths: unprovable.
        _ => Bound::zero(n),
    }
}

/// Walk `plan` and raise [`OrcaError::OutOfMemory`] for the first join
/// whose materialized build/inner side provably exceeds `budget` bytes
/// on some segment. Callers invoke this only when the engine cannot
/// spill (`can_spill == false`): with spilling available no bound is
/// fatal, and the walk (which scans storage to compute exact bounds) is
/// skipped entirely on the normal path.
pub fn preflight(plan: &PhysicalPlan, db: &crate::storage::Database, budget: u64) -> Result<()> {
    let n = db.num_segments();
    for child in &plan.children {
        preflight(child, db, budget)?;
    }
    let build_side = match &plan.op {
        PhysicalOp::HashJoin { .. } => Some(("hash join build", &plan.children[1])),
        PhysicalOp::NLJoin { .. } => Some(("nested-loops inner", &plan.children[1])),
        _ => None,
    };
    if let Some((what, side)) = build_side {
        let bound = bound_of(side, db, n);
        for (s, &bytes) in bound.per_seg.iter().enumerate() {
            if bytes > budget {
                return Err(OrcaError::OutOfMemory(format!(
                    "out of memory: {what} of {bytes} bytes on segment {s} \
                     exceeds the {budget}-byte grant and spilling is disabled"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_charges_and_peaks() {
        let b = MemoryBudget::new(100);
        assert!(b.charge(60));
        assert!(!b.charge(60));
        assert_eq!(b.used_bytes(), 120);
        assert_eq!(b.peak_bytes(), 120);
        b.uncharge(120);
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.peak_bytes(), 120);
        // Saturates instead of wrapping.
        b.uncharge(50);
        assert_eq!(b.used_bytes(), 0);
    }

    #[test]
    fn tracker_grant_tightens_operator_budget() {
        let t = MemoryTracker::unbounded();
        assert_eq!(t.operator_budget(1 << 20), 1 << 20);
        let budget = Arc::new(MemoryBudget::new(1 << 30));
        let t = MemoryTracker::granted(8 << 10, 8, Some(Arc::clone(&budget)));
        // 8 KiB over 8 segments = 1 KiB per segment, tighter than work_mem.
        assert_eq!(t.operator_budget(1 << 20), 1 << 10);
        t.reserve(512);
        assert_eq!(t.used_bytes(), 512);
        assert_eq!(budget.used_bytes(), 512);
        t.release(512);
        assert_eq!(t.used_bytes(), 0);
        assert_eq!(budget.used_bytes(), 0);
        assert_eq!(t.peak_bytes(), 512);
    }

    #[test]
    fn regrant_is_one_shot_and_raises_the_operator_budget() {
        let t = MemoryTracker::granted(8 << 10, 8, None);
        assert_eq!(t.operator_budget(1 << 20), 1 << 10);
        // No hook installed: nothing to renegotiate.
        assert!(!t.try_regrant());
        let calls = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&calls);
        t.set_regrant(Box::new(move || {
            c.fetch_add(1, Ordering::Relaxed);
            64 << 10
        }));
        assert!(t.try_regrant());
        assert_eq!(t.granted_bytes(), 64 << 10);
        assert_eq!(t.operator_budget(1 << 20), 8 << 10);
        // The hook is consumed: a second would-spill site gets nothing.
        assert!(!t.try_regrant());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failed_regrant_leaves_the_grant_alone() {
        let t = MemoryTracker::granted(8 << 10, 8, None);
        t.set_regrant(Box::new(|| 0));
        assert!(!t.try_regrant());
        assert_eq!(t.granted_bytes(), 8 << 10);
        assert!(!t.try_regrant(), "hook consumed even on failure");
    }
}
