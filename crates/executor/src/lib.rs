//! `orca-executor` — a shared-nothing MPP execution engine (§2.1).
//!
//! The paper evaluates Orca on physical GPDB/HAWQ clusters; this crate is
//! the simulated substitute (DESIGN.md §2): it *really executes* physical
//! plans — segmented storage, hash/NL joins, aggregation, sorts, motions —
//! and additionally maintains a deterministic **simulated cluster clock**
//! (per-segment work + interconnect transfer model), so experiments
//! measure plan quality rather than host-machine noise.
//!
//! * [`storage`] — per-segment, per-partition row storage and loading
//!   under the four GPDB distribution policies.
//! * [`eval`] — scalar expression evaluation and aggregate accumulators.
//! * [`exec`] — the operator interpreter over per-segment streams.
//! * [`engine`] — the public entry point: run a plan, get rows, the
//!   simulated elapsed time, and execution statistics.
//! * [`columnar`] — the vectorized batch kernel: typed column vectors
//!   with null bitmaps, selection-vector filters, column-at-a-time scalar
//!   evaluation, and batch-keyed joins/aggregates. Produces byte-identical
//!   results to [`exec`] (the row kernel is the differential oracle) with
//!   far less per-row interpretation work.
//! * [`merge`] — streaming k-way merge shared by the serial GatherMerge
//!   motion and the parallel interconnect's merge receiver.
//! * [`parallel`] — the parallel engine: plans cut into slices at motion
//!   boundaries, one gang of single-segment kernels per slice, batched
//!   bounded-channel interconnect with backpressure (§2.1's dispatcher /
//!   interconnect, realized with host threads).
//! * [`mod@reference`] — an independent, naive single-node interpreter of
//!   *logical* trees (including correlated-subquery markers, evaluated per
//!   row). It serves as the correctness oracle for every physical plan and
//!   doubles as the execution model of engines without decorrelation.
//! * [`sharing`] — cross-query work sharing: a byte-budgeted shared
//!   fragment cache with cooperative scans, keyed on (table name, table
//!   version, interned predicate/projection fingerprint, segment).
//! * [`codec`] — the self-delimiting columnar batch codec shared by
//!   spill files and the network wire format.
//! * [`net`] — the socket interconnect: a length-prefixed frame codec
//!   for the `Msg` protocol, a TCP transport behind the same
//!   sender/receiver surface as the in-process channels, and the
//!   [`net::ClusterTopology`] that maps segments onto peer processes.

pub mod codec;
pub mod columnar;
pub mod cursor;
pub mod engine;
pub mod eval;
pub mod exec;
pub mod memory;
pub mod merge;
pub mod net;
pub mod parallel;
pub mod reference;
pub mod sharing;
pub mod spill;
pub mod storage;

pub use columnar::{ColStream, Column, ColumnBatch};
pub use cursor::{Cursor, CursorOptions};
pub use engine::{ExecEngine, ExecResult, ExecStats};
pub use memory::{preflight, MemoryBudget, MemoryTracker};
pub use net::{ClusterTopology, NetConfig, NetNode, NetStats};
pub use parallel::{ParallelConfig, ParallelEngine, ParallelStats};
pub use sharing::{FragmentCache, FragmentCacheStats, FragmentKey};
pub use storage::{Database, Row};
