//! The operator interpreter: physical plans over per-segment streams.
//!
//! Every operator runs "on all segments" (shared-nothing); motions are the
//! only operators that move rows between segments. A singleton stream
//! lives, by convention, on segment 0 (the master). Alongside the rows,
//! each stream carries `avail[s]` — the simulated time at which segment
//! `s`'s output is complete — which is how the engine produces
//! deterministic "cluster elapsed time" measurements (DESIGN.md §2).

use crate::columnar::batch::ColStream;
use crate::eval::{accepts, compare_rows, eval, AggAccumulator, Env};
use crate::merge::{kway_merge, VecSource};
use crate::storage::{Database, Row};
use orca_common::hash::{segment_for_key, FnvHashMap};
use orca_common::{ColId, CteId, Datum, OrcaError, Result, SegmentConfig};
use orca_expr::logical::{AggStage, JoinKind, SetOpKind};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::scalar::ScalarExpr;
use orca_gpos::AbortSignal;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A per-segment row stream with its layout and completion times.
#[derive(Debug, Clone)]
pub struct StreamSet {
    pub layout: Vec<ColId>,
    pub per_seg: Vec<Vec<Row>>,
    /// Simulated completion time of each segment's stream.
    pub avail: Vec<f64>,
    /// Whether every segment holds a *full copy* of the data (the stream
    /// is Replicated). Operators that merge per-segment streams — motions,
    /// UnionAll — must then read exactly one copy; joins, by contrast,
    /// deliberately consume the per-segment copies.
    pub replicated: bool,
}

impl StreamSet {
    pub(crate) fn empty(layout: Vec<ColId>, segments: usize) -> StreamSet {
        StreamSet {
            layout,
            per_seg: vec![Vec::new(); segments],
            avail: vec![0.0; segments],
            replicated: false,
        }
    }

    pub fn total_rows(&self) -> usize {
        self.per_seg.iter().map(Vec::len).sum()
    }

    /// All *distinct-copy* rows: one segment's copy for replicated
    /// streams, the concatenation otherwise (the final gather result reads
    /// seg 0).
    pub fn gathered(&self) -> Vec<Row> {
        if self.replicated {
            return self.per_seg[0].clone();
        }
        self.per_seg.iter().flatten().cloned().collect()
    }

    /// Per-segment view for merging consumers: a single copy (on segment
    /// 0) when replicated, the streams as-is otherwise.
    fn one_copy(&self) -> Vec<Vec<Row>> {
        if self.replicated {
            let mut v = vec![Vec::new(); self.per_seg.len()];
            v[0] = self.per_seg[0].clone();
            v
        } else {
            self.per_seg.clone()
        }
    }

    pub fn elapsed(&self) -> f64 {
        self.avail.iter().copied().fold(0.0, f64::max)
    }

    fn bytes(&self) -> f64 {
        self.per_seg
            .iter()
            .flatten()
            .map(|r| r.iter().map(Datum::width).sum::<u64>() as f64)
            .sum()
    }
}

/// Per-operator profile entry: totals over every invocation of operators
/// with this name in one execution (exclusive time — children excluded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Rows emitted by this operator.
    pub rows: u64,
    /// Output granularity: columnar batches for the batch kernel,
    /// non-empty segment streams for the row kernel.
    pub batches: u64,
    /// Host-clock nanoseconds spent in this operator itself (time inside
    /// child operators is attributed to the children).
    pub ns: u64,
}

/// Execution counters.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    pub rows_processed: u64,
    pub bytes_moved: u64,
    pub spills: u64,
    pub oom_risk_bytes: u64,
    /// Storage chunks skipped by zone-map pruning in the fused
    /// filter-over-scan path (diagnostic; rows_processed still charges
    /// skipped rows so timing stays comparable with the row oracle).
    pub chunks_skipped: u64,
    /// Chunk×conjunct predicate evaluations answered on dictionary
    /// codes instead of decoded strings.
    pub dict_hits: u64,
    /// Logical bytes copied by scans that had to re-slice chunks
    /// (zero when every scan takes the zero-copy fast path).
    pub scan_bytes_cloned: u64,
    /// Spill partitions / sort runs written by memory-governed operators
    /// ([`crate::spill`]); zero when everything fit in its grant.
    pub spill_partitions: u64,
    /// Bytes serialized into spill files (columnar chunk wire shape).
    pub spill_bytes_written: u64,
    /// Bytes deserialized back out of spill files.
    pub spill_bytes_read: u64,
    /// High-water mark of resident operator state (hash-join build,
    /// aggregate groups, sort run) on any one segment. When an operator
    /// spills this is its largest resident partition, which is how the
    /// bench gate checks `peak ≤ grant`.
    pub peak_mem_bytes: u64,
    /// Per-operator profile, keyed by operator name (`BTreeMap` so report
    /// output is deterministically ordered).
    pub ops: BTreeMap<&'static str, OpProfile>,
}

/// Per-query execution context.
///
/// Two modes share the same interpreter:
///
/// * **cluster mode** (`local_segment == None`) — the serial engine: every
///   stream has one slot per segment and motions move rows between slots.
/// * **single-segment mode** (`local_segment == Some(s)`) — the parallel
///   engine's within-slice kernel: streams have exactly one slot holding
///   segment `s`'s share, scans read physical segment `s`, and
///   [`PhysicalOp::ExchangeRecv`] leaves resolve against [`ExecCtx::recv`]
///   (pre-delivered by the interconnect). Motions never appear (the slicer
///   cut them out), and master-only conventions (ConstTable rows, scalar
///   aggregate emission, AssertOneRow) key on the *physical* segment so
///   an n-instance gang reproduces the serial engine's placement exactly.
pub struct ExecCtx<'a> {
    pub db: &'a Database,
    pub cluster: &'a SegmentConfig,
    pub cte: FnvHashMap<CteId, StreamSet>,
    pub stats: ExecStats,
    /// `Some(s)` = single-segment mode on physical segment `s`.
    pub local_segment: Option<usize>,
    /// Streams delivered by the interconnect, keyed by motion id (consumed
    /// by `ExchangeRecv`; each motion is delivered to a slice exactly once).
    pub recv: FnvHashMap<usize, StreamSet>,
    /// Columnar counterpart of [`ExecCtx::cte`], used by the batch kernel.
    pub(crate) cte_col: FnvHashMap<CteId, ColStream>,
    /// Columnar counterpart of [`ExecCtx::recv`], used by the batch kernel.
    pub recv_col: FnvHashMap<usize, ColStream>,
    /// Cooperative cancellation: checked at every operator boundary.
    pub abort: Option<Arc<AbortSignal>>,
    /// Cross-query fragment cache ([`crate::sharing`]). `None` (the
    /// default) keeps every scan independent — the batch kernel only
    /// probes/publishes fragments when a cache is attached.
    pub frag: Option<Arc<crate::sharing::FragmentCache>>,
    /// Nanoseconds attributed to child operators of the operator currently
    /// executing — the bookkeeping behind exclusive-time profiling.
    pub(crate) profile_child_ns: u64,
    /// Shared batch-shell free list: scans and builders draw empty
    /// `ColumnBatch` shells from here instead of allocating fresh ones.
    pub pool: Option<Arc<crate::parallel::BatchPool>>,
    /// Per-query memory grant accounting ([`crate::memory`]): one tracker
    /// shared by every kernel instance of the query. The default is an
    /// ungoverned tracker, so `min(work_mem, grant)` degenerates to
    /// `work_mem` exactly as before grants existed.
    pub mem: Arc<crate::memory::MemoryTracker>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(db: &'a Database) -> ExecCtx<'a> {
        ExecCtx {
            db,
            cluster: &db.cluster,
            cte: FnvHashMap::default(),
            stats: ExecStats::default(),
            local_segment: None,
            recv: FnvHashMap::default(),
            cte_col: FnvHashMap::default(),
            recv_col: FnvHashMap::default(),
            abort: None,
            frag: None,
            profile_child_ns: 0,
            pool: None,
            mem: Arc::new(crate::memory::MemoryTracker::unbounded()),
        }
    }

    /// An empty batch shell of `width` columns, recycled from the shared
    /// pool when one is attached.
    pub(crate) fn take_shell(&self, width: usize) -> crate::columnar::ColumnBatch {
        match &self.pool {
            Some(p) => p.take(width),
            None => crate::columnar::ColumnBatch::new(width),
        }
    }

    /// A single-segment kernel context for one slice instance of a gang.
    pub fn for_segment(
        db: &'a Database,
        segment: usize,
        recv: FnvHashMap<usize, StreamSet>,
        abort: Arc<AbortSignal>,
    ) -> ExecCtx<'a> {
        ExecCtx {
            db,
            cluster: &db.cluster,
            cte: FnvHashMap::default(),
            stats: ExecStats::default(),
            local_segment: Some(segment),
            recv,
            cte_col: FnvHashMap::default(),
            recv_col: FnvHashMap::default(),
            abort: Some(abort),
            frag: None,
            profile_child_ns: 0,
            pool: None,
            mem: Arc::new(crate::memory::MemoryTracker::unbounded()),
        }
    }

    /// A single-segment *columnar* kernel context: like
    /// [`ExecCtx::for_segment`] but interconnect deliveries stay in batch
    /// form for [`crate::columnar::cexec`].
    pub fn for_segment_columnar(
        db: &'a Database,
        segment: usize,
        recv_col: FnvHashMap<usize, ColStream>,
        abort: Arc<AbortSignal>,
    ) -> ExecCtx<'a> {
        ExecCtx {
            db,
            cluster: &db.cluster,
            cte: FnvHashMap::default(),
            stats: ExecStats::default(),
            local_segment: Some(segment),
            recv: FnvHashMap::default(),
            cte_col: FnvHashMap::default(),
            recv_col,
            abort: Some(abort),
            frag: None,
            profile_child_ns: 0,
            pool: None,
            mem: Arc::new(crate::memory::MemoryTracker::unbounded()),
        }
    }

    /// Per-segment operator budget: the tighter of the cluster's
    /// `work_mem_bytes` and this query's per-segment memory grant.
    pub(crate) fn op_budget(&self) -> u64 {
        self.mem.operator_budget(self.cluster.work_mem_bytes)
    }

    /// Operator budget for state of `needed` bytes, renegotiating a
    /// degraded grant upward (once per query) the moment the state would
    /// not fit — i.e. immediately before the first spill. If the broker
    /// has bytes back in its pool, the spill may be avoided entirely.
    pub(crate) fn budget_for(&self, needed: u64) -> u64 {
        let budget = self.op_budget();
        if needed > budget && self.mem.try_regrant() {
            return self.op_budget();
        }
        budget
    }

    /// Record `bytes` of resident operator state: the stats high-water
    /// mark plus a bracketed reserve/release on the query tracker (and
    /// through it the process budget).
    pub(crate) fn note_state(&mut self, bytes: u64) {
        self.stats.peak_mem_bytes = self.stats.peak_mem_bytes.max(bytes);
        self.mem.reserve(bytes);
        self.mem.release(bytes);
    }

    /// Fold one spilling operator's counters into the run's stats.
    pub(crate) fn fold_spill(&mut self, m: &crate::spill::SpillMetrics) {
        self.stats.spill_partitions += m.partitions;
        self.stats.spill_bytes_written += m.bytes_written;
        self.stats.spill_bytes_read += m.bytes_read;
        self.note_state(m.peak_state_bytes);
    }

    /// Stream slots per `StreamSet` in this context (see struct docs).
    pub(crate) fn seg_slots(&self) -> usize {
        match self.local_segment {
            Some(_) => 1,
            None => self.cluster.num_segments,
        }
    }

    /// Physical storage segment behind stream slot `slot`.
    pub(crate) fn storage_segment(&self, slot: usize) -> usize {
        self.local_segment.unwrap_or(slot)
    }

    /// Per-slot view with exactly one copy of a (possibly replicated)
    /// stream: the serial convention keeps the surviving copy on the
    /// master segment, which single-segment mode must reproduce from the
    /// physical segment id rather than the slot index.
    fn one_copy_of(&self, s: &StreamSet) -> Vec<Vec<Row>> {
        if !s.replicated {
            return s.per_seg.clone();
        }
        match self.local_segment {
            None => s.one_copy(),
            Some(0) => vec![s.per_seg[0].clone()],
            Some(_) => vec![Vec::new()],
        }
    }

    /// Cooperative cancellation check, called once per operator.
    pub(crate) fn check_abort(&self) -> Result<()> {
        match &self.abort {
            Some(a) => a.check(),
            None => Ok(()),
        }
    }

    pub(crate) fn tup_time(&self, rows: usize) -> f64 {
        rows as f64 / self.cluster.tuples_per_sec
    }

    pub(crate) fn net_time(&self, bytes: f64) -> f64 {
        bytes / self.cluster.net_bytes_per_sec
    }
}

/// Operator name for the per-operator profile ([`ExecStats::ops`]).
pub fn op_name(op: &PhysicalOp) -> &'static str {
    match op {
        PhysicalOp::TableScan { .. } => "TableScan",
        PhysicalOp::IndexScan { .. } => "IndexScan",
        PhysicalOp::Filter { .. } => "Filter",
        PhysicalOp::Project { .. } => "Project",
        PhysicalOp::HashJoin { .. } => "HashJoin",
        PhysicalOp::NLJoin { .. } => "NLJoin",
        PhysicalOp::HashAgg { .. } => "HashAgg",
        PhysicalOp::StreamAgg { .. } => "StreamAgg",
        PhysicalOp::Sort { .. } => "Sort",
        PhysicalOp::Limit { .. } => "Limit",
        PhysicalOp::Motion {
            kind: MotionKind::Gather,
        } => "Motion(Gather)",
        PhysicalOp::Motion {
            kind: MotionKind::GatherMerge(_),
        } => "Motion(GatherMerge)",
        PhysicalOp::Motion {
            kind: MotionKind::Redistribute(_),
        } => "Motion(Redistribute)",
        PhysicalOp::Motion {
            kind: MotionKind::Broadcast,
        } => "Motion(Broadcast)",
        PhysicalOp::Spool => "Spool",
        PhysicalOp::Sequence { .. } => "Sequence",
        PhysicalOp::CteProducer { .. } => "CteProducer",
        PhysicalOp::CteScan { .. } => "CteScan",
        PhysicalOp::ConstTable { .. } => "ConstTable",
        PhysicalOp::AssertOneRow => "AssertOneRow",
        PhysicalOp::UnionAll { .. } => "UnionAll",
        PhysicalOp::HashSetOp { .. } => "HashSetOp",
        PhysicalOp::ExchangeRecv { .. } => "ExchangeRecv",
    }
}

/// Execute a plan, producing the output stream set.
///
/// Wraps the interpreter proper with per-operator profiling: each
/// operator's *exclusive* wall time is `total - nested`, where `nested`
/// is the time its children accumulated (snapshotted through
/// [`ExecCtx::profile_child_ns`]), so a plan's profile entries sum to
/// roughly the query's wall time instead of multiply counting parents.
pub fn exec(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<StreamSet> {
    let start = Instant::now();
    let snapshot = ctx.profile_child_ns;
    let result = exec_op(plan, ctx);
    let total = start.elapsed().as_nanos() as u64;
    let nested = ctx.profile_child_ns.saturating_sub(snapshot);
    ctx.profile_child_ns = snapshot + total;
    if let Ok(out) = &result {
        let p = ctx.stats.ops.entry(op_name(&plan.op)).or_default();
        p.rows += out.total_rows() as u64;
        p.batches += out.per_seg.iter().filter(|v| !v.is_empty()).count() as u64;
        p.ns += total.saturating_sub(nested);
    }
    result
}

fn exec_op(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<StreamSet> {
    ctx.check_abort()?;
    let n = ctx.seg_slots();
    match &plan.op {
        PhysicalOp::TableScan { table, cols, parts } => {
            let t = ctx.db.table(table.mdid)?;
            let mut out = StreamSet::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let rows = t.scan(ctx.storage_segment(s), parts);
                ctx.stats.rows_processed += rows.len() as u64;
                out.avail[s] = ctx.tup_time(rows.len());
                out.per_seg[s] = rows;
            }
            Ok(out)
        }
        PhysicalOp::IndexScan {
            table,
            cols,
            key_cols,
            parts,
            ..
        } => {
            let t = ctx.db.table(table.mdid)?;
            let order = orca_expr::OrderSpec::by(key_cols);
            let mut out = StreamSet::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let mut rows = t.scan(ctx.storage_segment(s), parts);
                rows.sort_by(|a, b| compare_rows(a, b, &order, cols));
                ctx.stats.rows_processed += rows.len() as u64;
                // Ordered retrieval: random-access penalty, but no sort
                // charge (the order comes from the index structure).
                out.avail[s] = ctx.tup_time(rows.len()) * 1.6;
                out.per_seg[s] = rows;
            }
            Ok(out)
        }
        PhysicalOp::Filter { pred } => {
            let input = exec(&plan.children[0], ctx)?;
            apply_filter(input, pred, ctx)
        }
        PhysicalOp::Project { exprs } => {
            let input = exec(&plan.children[0], ctx)?;
            apply_project(input, exprs, ctx)
        }
        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => exec_hash_join(plan, ctx, *kind, left_keys, right_keys, residual.as_ref()),
        PhysicalOp::NLJoin { kind, pred } => exec_nl_join(plan, ctx, *kind, pred),
        PhysicalOp::HashAgg {
            group_cols,
            aggs,
            stage,
        } => exec_agg(plan, ctx, group_cols, aggs, *stage, false),
        PhysicalOp::StreamAgg {
            group_cols,
            aggs,
            stage,
        } => exec_agg(plan, ctx, group_cols, aggs, *stage, true),
        PhysicalOp::Sort { order } => {
            let input = exec(&plan.children[0], ctx)?;
            let mut out = StreamSet::empty(input.layout.clone(), n);
            out.replicated = input.replicated;
            for s in 0..n {
                let input_bytes: u64 = input.per_seg[s]
                    .iter()
                    .map(|r| r.iter().map(Datum::width).sum::<u64>())
                    .sum();
                let budget = ctx.budget_for(input_bytes);
                let mut spill_factor = 1.0;
                let rows;
                if input_bytes > budget && ctx.cluster.can_spill {
                    // External merge sort: budget-sized stable runs,
                    // k-way merged (≡ stable sort of the whole input).
                    ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(input_bytes);
                    ctx.stats.spills += 1;
                    spill_factor = ctx.cluster.spill_penalty;
                    let (sorted, m) = crate::spill::external_sort(
                        input.per_seg[s].clone(),
                        order,
                        &input.layout,
                        budget,
                        ctx.cluster.batch_size,
                    )?;
                    ctx.fold_spill(&m);
                    rows = sorted;
                } else {
                    ctx.note_state(input_bytes);
                    let mut sorted = input.per_seg[s].clone();
                    sorted.sort_by(|a, b| compare_rows(a, b, order, &input.layout));
                    rows = sorted;
                }
                let len = rows.len() as f64;
                ctx.stats.rows_processed += rows.len() as u64;
                out.avail[s] = input.avail[s]
                    + ctx.tup_time(rows.len()) * (1.0 + len.max(2.0).log2() * 0.1) * spill_factor;
                out.per_seg[s] = rows;
            }
            Ok(out)
        }
        PhysicalOp::Limit { offset, count, .. } => {
            let input = exec(&plan.children[0], ctx)?;
            let mut out = StreamSet::empty(input.layout.clone(), n);
            // Singleton requirement means rows live on segment 0.
            debug_assert!(input.per_seg.iter().skip(1).all(Vec::is_empty));
            let rows: Vec<Row> = input.per_seg[0]
                .iter()
                .skip(*offset as usize)
                .take(count.map(|c| c as usize).unwrap_or(usize::MAX))
                .cloned()
                .collect();
            out.avail[0] = input.elapsed() + ctx.tup_time(rows.len());
            out.per_seg[0] = rows;
            Ok(out)
        }
        PhysicalOp::Motion { kind } => exec_motion(plan, ctx, kind),
        PhysicalOp::Spool => {
            let input = exec(&plan.children[0], ctx)?;
            let mut out = input.clone();
            for s in 0..n {
                out.avail[s] += ctx.tup_time(input.per_seg[s].len()) * 0.6;
            }
            Ok(out)
        }
        PhysicalOp::Sequence { .. } => {
            // Producer side materializes its CTE; consumer side reads it.
            exec(&plan.children[0], ctx)?;
            exec(&plan.children[1], ctx)
        }
        PhysicalOp::CteProducer { id, cols } => {
            let input = exec(&plan.children[0], ctx)?;
            let mut stored = input.clone();
            stored.layout = cols.clone();
            for s in 0..n {
                stored.avail[s] += ctx.tup_time(stored.per_seg[s].len()) * 0.6;
            }
            // Producer output layout must match its declared cols.
            if stored.layout.len() != input.layout.len() {
                return Err(OrcaError::Execution("CTE producer arity mismatch".into()));
            }
            // Reproject positionally: declared col i = input col i.
            ctx.cte.insert(*id, stored.clone());
            Ok(stored)
        }
        PhysicalOp::CteScan {
            id,
            cols,
            producer_cols,
        } => {
            let stash = ctx
                .cte
                .get(id)
                .ok_or_else(|| OrcaError::Execution(format!("CTE {id} not materialized")))?
                .clone();
            // Map producer columns to this consumer's ids.
            let positions: Vec<usize> =
                producer_cols
                    .iter()
                    .map(|p| {
                        stash.layout.iter().position(|c| c == p).ok_or_else(|| {
                            OrcaError::Execution(format!("CTE {id} missing column {p}"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let mut out = StreamSet::empty(cols.clone(), n);
            for s in 0..n {
                out.per_seg[s] = stash.per_seg[s]
                    .iter()
                    .map(|row| positions.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                ctx.stats.rows_processed += out.per_seg[s].len() as u64;
                out.avail[s] = stash.avail[s] + ctx.tup_time(out.per_seg[s].len()) * 0.5;
            }
            Ok(out)
        }
        PhysicalOp::ConstTable { cols, rows } => {
            let mut out = StreamSet::empty(cols.clone(), n);
            // Const rows live on the master by convention; a non-master
            // slice instance materializes an empty stream.
            if ctx.storage_segment(0) == 0 {
                out.per_seg[0] = rows.clone();
            }
            Ok(out)
        }
        PhysicalOp::AssertOneRow => {
            let input = exec(&plan.children[0], ctx)?;
            let mut out = StreamSet::empty(input.layout.clone(), n);
            let total = input.total_rows();
            if ctx.storage_segment(0) != 0 {
                // The enforcer requires singleton input, so every row lives
                // on the master; a non-master instance must see none.
                if total != 0 {
                    return Err(OrcaError::Execution(
                        "AssertOneRow input off the master segment".into(),
                    ));
                }
                return Ok(out);
            }
            if total > 1 {
                return Err(OrcaError::Execution(
                    "more than one row returned by a subquery used as an expression".into(),
                ));
            }
            if total == 0 {
                // SQL scalar-subquery semantics: empty → NULL row.
                out.per_seg[0] = vec![vec![Datum::Null; input.layout.len()]];
            } else {
                out.per_seg[0] = input.gathered();
            }
            out.avail[0] = input.elapsed();
            Ok(out)
        }
        PhysicalOp::UnionAll { output, input_cols } => {
            let mut out = StreamSet::empty(output.clone(), n);
            for (i, child) in plan.children.iter().enumerate() {
                let c = exec(child, ctx)?;
                let positions: Vec<usize> = input_cols[i]
                    .iter()
                    .map(|col| {
                        c.layout.iter().position(|x| x == col).ok_or_else(|| {
                            OrcaError::Execution(format!("union input missing {col}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let copies = ctx.one_copy_of(&c);
                for (s, seg_rows) in copies.iter().enumerate() {
                    for row in seg_rows {
                        out.per_seg[s].push(positions.iter().map(|&p| row[p].clone()).collect());
                    }
                    out.avail[s] =
                        out.avail[s].max(c.avail[s]) + ctx.tup_time(seg_rows.len()) * 0.2;
                }
            }
            Ok(out)
        }
        PhysicalOp::HashSetOp {
            kind,
            output,
            input_cols,
        } => exec_setop(plan, ctx, *kind, output, input_cols),
        PhysicalOp::ExchangeRecv { motion } => ctx.recv.remove(motion).ok_or_else(|| {
            OrcaError::Execution(format!("motion {motion} not delivered to this slice"))
        }),
    }
}

/// Filter an already-executed stream. Shared with the columnar kernel's
/// subquery-predicate fallback, so the two kernels keep identical
/// per-row subplan accounting.
pub(crate) fn apply_filter(
    input: StreamSet,
    pred: &ScalarExpr,
    ctx: &mut ExecCtx<'_>,
) -> Result<StreamSet> {
    let n = input.per_seg.len();
    let env = Env::default();
    let has_subplan = pred.has_subquery();
    let mut out = StreamSet::empty(input.layout.clone(), n);
    out.replicated = input.replicated;
    for s in 0..n {
        let in_len = input.per_seg[s].len();
        let mut kept = Vec::new();
        let mut subplan_work = 0u64;
        for row in &input.per_seg[s] {
            let ok = if has_subplan {
                // Un-decorrelated predicate: execute the subquery
                // per row (the legacy Planner's SubPlan model).
                let mut rs = crate::reference::RefStats::default();
                let v = crate::reference::eval_scalar_with_subplans(
                    ctx.db,
                    pred,
                    &input.layout,
                    row,
                    &env,
                    &mut rs,
                )?;
                subplan_work += rs.rows_processed;
                v == Datum::Bool(true)
            } else {
                accepts(pred, &input.layout, row, &env)?
            };
            if ok {
                kept.push(row.clone());
            }
        }
        ctx.stats.rows_processed += in_len as u64 + subplan_work;
        out.avail[s] =
            input.avail[s] + ctx.tup_time(in_len) * 0.5 + ctx.tup_time(subplan_work as usize);
        out.per_seg[s] = kept;
    }
    Ok(out)
}

/// Project an already-executed stream (see [`apply_filter`] on sharing).
pub(crate) fn apply_project(
    input: StreamSet,
    exprs: &[(ColId, ScalarExpr)],
    ctx: &mut ExecCtx<'_>,
) -> Result<StreamSet> {
    let n = input.per_seg.len();
    let env = Env::default();
    let layout: Vec<ColId> = exprs.iter().map(|(c, _)| *c).collect();
    let has_subplan = exprs.iter().any(|(_, e)| e.has_subquery());
    let mut out = StreamSet::empty(layout, n);
    out.replicated = input.replicated;
    for s in 0..n {
        let mut rows = Vec::with_capacity(input.per_seg[s].len());
        let mut subplan_work = 0u64;
        for row in &input.per_seg[s] {
            let projected: Vec<Datum> = exprs
                .iter()
                .map(|(_, e)| {
                    if has_subplan && e.has_subquery() {
                        let mut rs = crate::reference::RefStats::default();
                        let v = crate::reference::eval_scalar_with_subplans(
                            ctx.db,
                            e,
                            &input.layout,
                            row,
                            &env,
                            &mut rs,
                        );
                        subplan_work += rs.rows_processed;
                        v
                    } else {
                        eval(e, &input.layout, row, &env)
                    }
                })
                .collect::<Result<_>>()?;
            rows.push(projected);
        }
        ctx.stats.rows_processed += rows.len() as u64 + subplan_work;
        out.avail[s] =
            input.avail[s] + ctx.tup_time(rows.len()) * 0.3 + ctx.tup_time(subplan_work as usize);
        out.per_seg[s] = rows;
    }
    Ok(out)
}

/// Fill `scratch` with the key columns of `row`. The scratch buffer is
/// reused across rows so hot loops (hash join build/probe, aggregation,
/// redistribution) don't allocate a fresh `Vec<Datum>` per row; an owned
/// key is cloned out only when a hash table actually inserts it.
fn fill_key(scratch: &mut Vec<Datum>, row: &Row, positions: &[usize]) {
    scratch.clear();
    scratch.extend(positions.iter().map(|&p| row[p].clone()));
}

pub(crate) fn key_positions(layout: &[ColId], keys: &[ColId]) -> Result<Vec<usize>> {
    keys.iter()
        .map(|k| {
            layout
                .iter()
                .position(|c| c == k)
                .ok_or_else(|| OrcaError::Execution(format!("key column {k} not in layout")))
        })
        .collect()
}

fn exec_hash_join(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    kind: JoinKind,
    left_keys: &[ColId],
    right_keys: &[ColId],
    residual: Option<&ScalarExpr>,
) -> Result<StreamSet> {
    let n = ctx.seg_slots();
    let left = exec(&plan.children[0], ctx)?;
    let right = exec(&plan.children[1], ctx)?;
    let lpos = key_positions(&left.layout, left_keys)?;
    let rpos = key_positions(&right.layout, right_keys)?;
    let env = Env::default();
    let outputs_right = kind.outputs_right();
    let mut layout = left.layout.clone();
    if outputs_right {
        layout.extend_from_slice(&right.layout);
    }
    let combined_layout: Vec<ColId> = left
        .layout
        .iter()
        .chain(right.layout.iter())
        .copied()
        .collect();
    let mut out = StreamSet::empty(layout, n);
    out.replicated = left.replicated && right.replicated;
    for s in 0..n {
        // Build on the right side.
        let build_bytes: u64 = right.per_seg[s]
            .iter()
            .map(|r| r.iter().map(Datum::width).sum::<u64>())
            .sum();
        let budget = ctx.budget_for(build_bytes);
        let mut spill_factor = 1.0;
        let spilling = build_bytes > budget;
        if spilling {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(build_bytes);
            if !ctx.cluster.can_spill {
                // Backstop for bounds preflight could not prove; same
                // message as the columnar kernel's, compared in tests.
                return Err(OrcaError::OutOfMemory(format!(
                    "out of memory: hash join build of {build_bytes} bytes on segment {s}"
                )));
            }
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
        }
        let rows = if spilling {
            // Grace spill: partition the build side to disk, probe one
            // partition at a time, reassemble in probe order (see
            // [`crate::spill`] for the determinism argument).
            let (per_probe, m) = crate::spill::grace_hash_join(
                &right.per_seg[s],
                &left.per_seg[s],
                &lpos,
                &rpos,
                kind,
                residual,
                &combined_layout,
                right.layout.len(),
                &env,
                budget,
                ctx.cluster.batch_size,
            )?;
            ctx.fold_spill(&m);
            per_probe.into_iter().flatten().collect()
        } else {
            ctx.note_state(build_bytes);
            let mut table: FnvHashMap<Vec<Datum>, Vec<usize>> = FnvHashMap::default();
            let mut scratch: Vec<Datum> = Vec::with_capacity(rpos.len().max(lpos.len()));
            for (i, row) in right.per_seg[s].iter().enumerate() {
                fill_key(&mut scratch, row, &rpos);
                if scratch.iter().any(Datum::is_null) {
                    continue; // NULL keys never join.
                }
                match table.get_mut(scratch.as_slice()) {
                    Some(v) => v.push(i),
                    None => {
                        table.insert(scratch.clone(), vec![i]);
                    }
                }
            }
            let mut rows = Vec::new();
            for lrow in &left.per_seg[s] {
                fill_key(&mut scratch, lrow, &lpos);
                let candidates: &[usize] = if scratch.iter().any(Datum::is_null) {
                    &[]
                } else {
                    table
                        .get(scratch.as_slice())
                        .map(|v| v.as_slice())
                        .unwrap_or(&[])
                };
                let mut matched = false;
                for &ri in candidates {
                    let rrow = &right.per_seg[s][ri];
                    let joined: Row = lrow.iter().chain(rrow.iter()).cloned().collect();
                    let ok = match residual {
                        Some(res) => accepts(res, &combined_layout, &joined, &env)?,
                        None => true,
                    };
                    if !ok {
                        continue;
                    }
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => rows.push(joined),
                        JoinKind::LeftSemi => {
                            rows.push(lrow.clone());
                            break;
                        }
                        JoinKind::LeftAntiSemi => break,
                    }
                }
                if !matched {
                    match kind {
                        JoinKind::LeftOuter => {
                            let mut joined = lrow.clone();
                            joined.extend(vec![Datum::Null; right.layout.len()]);
                            rows.push(joined);
                        }
                        JoinKind::LeftAntiSemi => rows.push(lrow.clone()),
                        _ => {}
                    }
                }
            }
            rows
        };
        let build = right.per_seg[s].len();
        let probe = left.per_seg[s].len();
        ctx.stats.rows_processed += (build + probe) as u64;
        out.avail[s] = left.avail[s].max(right.avail[s])
            + (ctx.tup_time(build) * 1.8 + ctx.tup_time(probe)) * spill_factor;
        out.per_seg[s] = rows;
    }
    Ok(out)
}

fn exec_nl_join(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    kind: JoinKind,
    pred: &ScalarExpr,
) -> Result<StreamSet> {
    let left = exec(&plan.children[0], ctx)?;
    let right = exec(&plan.children[1], ctx)?;
    apply_nl_join(left, right, kind, pred, ctx)
}

/// Join two already-executed streams with nested loops. Shared with the
/// columnar kernel, which keeps this operator on the row path (it is
/// inherently per-pair work with an arbitrary predicate).
pub(crate) fn apply_nl_join(
    left: StreamSet,
    right: StreamSet,
    kind: JoinKind,
    pred: &ScalarExpr,
    ctx: &mut ExecCtx<'_>,
) -> Result<StreamSet> {
    let n = left.per_seg.len();
    let env = Env::default();
    let outputs_right = kind.outputs_right();
    let mut layout = left.layout.clone();
    if outputs_right {
        layout.extend_from_slice(&right.layout);
    }
    let combined_layout: Vec<ColId> = left
        .layout
        .iter()
        .chain(right.layout.iter())
        .copied()
        .collect();
    let mut out = StreamSet::empty(layout, n);
    out.replicated = left.replicated && right.replicated;
    for s in 0..n {
        // The inner side is materialized (rewindability): it must fit in
        // working memory, or spill.
        let inner_bytes: u64 = right.per_seg[s]
            .iter()
            .map(|r| r.iter().map(Datum::width).sum::<u64>())
            .sum();
        let mut spill_factor = 1.0;
        if inner_bytes > ctx.budget_for(inner_bytes) {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(inner_bytes);
            if !ctx.cluster.can_spill {
                return Err(OrcaError::OutOfMemory(format!(
                    "out of memory: nested-loops inner of {inner_bytes} bytes on segment {s}"
                )));
            }
            // The rewind-spill for a nested-loops inner stays simulated
            // (cost only): real spilling is implemented for the hash
            // operators and sort, which is where the planner sends
            // anything large.
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
        }
        let mut rows = Vec::new();
        for lrow in &left.per_seg[s] {
            let mut matched = false;
            for rrow in &right.per_seg[s] {
                let joined: Row = lrow.iter().chain(rrow.iter()).cloned().collect();
                if accepts(pred, &combined_layout, &joined, &env)? {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => rows.push(joined),
                        JoinKind::LeftSemi => {
                            rows.push(lrow.clone());
                            break;
                        }
                        JoinKind::LeftAntiSemi => break,
                    }
                }
            }
            if !matched {
                match kind {
                    JoinKind::LeftOuter => {
                        let mut joined = lrow.clone();
                        joined.extend(vec![Datum::Null; right.layout.len()]);
                        rows.push(joined);
                    }
                    JoinKind::LeftAntiSemi => rows.push(lrow.clone()),
                    _ => {}
                }
            }
        }
        let pairs = left.per_seg[s].len() * right.per_seg[s].len();
        ctx.stats.rows_processed += pairs as u64;
        out.avail[s] =
            left.avail[s].max(right.avail[s]) + ctx.tup_time(pairs) * 0.35 * spill_factor;
        out.per_seg[s] = rows;
    }
    Ok(out)
}

fn exec_agg(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    group_cols: &[ColId],
    aggs: &[(ColId, ScalarExpr)],
    stage: AggStage,
    stream: bool,
) -> Result<StreamSet> {
    let n = ctx.seg_slots();
    let input = exec(&plan.children[0], ctx)?;
    let gpos = key_positions(&input.layout, group_cols)?;
    let env = Env::default();
    let mut layout = group_cols.to_vec();
    layout.extend(aggs.iter().map(|(c, _)| *c));
    let mut out = StreamSet::empty(layout, n);
    out.replicated = input.replicated;
    for s in 0..n {
        // Group state is bounded by the input (worst case: all keys
        // distinct), so the deterministic spill trigger is input bytes
        // over budget. Scalar aggregates hold O(1) state and never spill.
        let input_bytes: u64 = input.per_seg[s]
            .iter()
            .map(|r| r.iter().map(Datum::width).sum::<u64>())
            .sum();
        let budget = ctx.budget_for(input_bytes);
        let mut spill_factor = 1.0;
        let spilling = !gpos.is_empty() && input_bytes > budget && ctx.cluster.can_spill;
        let mut rows: Vec<Row>;
        if spilling {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(input_bytes);
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
            let (collected, m) = crate::spill::grace_hash_agg(
                &input.per_seg[s],
                &gpos,
                aggs,
                &input.layout,
                &env,
                budget,
                ctx.cluster.batch_size,
            )?;
            ctx.fold_spill(&m);
            rows = Vec::with_capacity(collected.len());
            for (key, accs) in &collected {
                let mut row = key.clone();
                row.extend(accs.iter().map(AggAccumulator::finish));
                rows.push(row);
            }
        } else {
            // Scalar aggregates hold O(1) accumulator state, not input.
            ctx.note_state(if gpos.is_empty() { 0 } else { input_bytes });
            // Hash grouping (stream aggregation produces identical
            // results; the cost difference is modelled in the time term).
            let mut groups: FnvHashMap<Vec<Datum>, Vec<AggAccumulator>> = FnvHashMap::default();
            let mut order: Vec<Vec<Datum>> = Vec::new();
            let mut scratch: Vec<Datum> = Vec::with_capacity(gpos.len());
            for row in &input.per_seg[s] {
                fill_key(&mut scratch, row, &gpos);
                let accs = match groups.get_mut(scratch.as_slice()) {
                    Some(a) => a,
                    None => {
                        let key = scratch.clone();
                        order.push(key.clone());
                        groups.entry(key).or_insert(
                            aggs.iter()
                                .map(|(_, e)| AggAccumulator::from_expr(e))
                                .collect::<Result<_>>()?,
                        )
                    }
                };
                for acc in accs.iter_mut() {
                    acc.update(&input.layout, row, &env)?;
                }
            }
            rows = Vec::with_capacity(order.len());
            for key in &order {
                let accs = &groups[key];
                let mut row = key.clone();
                row.extend(accs.iter().map(AggAccumulator::finish));
                rows.push(row);
            }
        }
        // Scalar aggregates must emit a row even on empty input: on every
        // segment for Local stage (partials), on the master otherwise.
        if group_cols.is_empty() && rows.is_empty() {
            let emit_here = match stage {
                AggStage::Local => true,
                _ => ctx.storage_segment(s) == 0,
            };
            if emit_here {
                let accs: Vec<AggAccumulator> = aggs
                    .iter()
                    .map(|(_, e)| AggAccumulator::from_expr(e))
                    .collect::<Result<_>>()?;
                rows.push(accs.iter().map(AggAccumulator::finish).collect());
            }
        }
        let in_len = input.per_seg[s].len();
        ctx.stats.rows_processed += in_len as u64;
        let factor = if stream { 0.6 } else { 1.1 };
        out.avail[s] = input.avail[s] + ctx.tup_time(in_len) * factor * spill_factor;
        out.per_seg[s] = rows;
    }
    Ok(out)
}

/// One distinct copy of a stream's bytes: a replicated input holds `n`
/// identical copies, of which a motion reads (and ships) exactly one.
/// Shared by every motion kind so replicated inputs are accounted the
/// same way under Gather, Redistribute, and Broadcast.
fn distinct_bytes(input: &StreamSet, n: usize) -> f64 {
    if input.replicated {
        input.bytes() / n as f64
    } else {
        input.bytes()
    }
}

fn exec_motion(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>, kind: &MotionKind) -> Result<StreamSet> {
    if ctx.local_segment.is_some() {
        // The slicer cuts plans at motions; a motion inside a slice means
        // the slicer was bypassed or produced a malformed slice.
        return Err(OrcaError::Execution(
            "Motion executed inside a single-segment slice".into(),
        ));
    }
    let n = ctx.cluster.num_segments;
    let input = exec(&plan.children[0], ctx)?;
    let bytes = distinct_bytes(&input, n);
    let mut out = StreamSet::empty(input.layout.clone(), n);
    match kind {
        MotionKind::Gather => {
            out.per_seg[0] = input.gathered();
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes);
        }
        MotionKind::GatherMerge(order) => {
            // Inputs are per-segment sorted: a true streaming k-way merge,
            // tie-breaking on the lowest source segment so the output is
            // byte-identical to a stable sort of the gathered stream.
            let sources: Vec<VecSource> =
                input.one_copy().into_iter().map(VecSource::new).collect();
            let rows = kway_merge(sources, order, &input.layout)?;
            let len = rows.len();
            out.per_seg[0] = rows;
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes) * 1.15 + ctx.tup_time(len) * 0.2;
        }
        MotionKind::Redistribute(cols) => {
            let pos = key_positions(&input.layout, cols)?;
            let base = input.elapsed();
            let mut scratch: Vec<Datum> = Vec::with_capacity(pos.len());
            for seg_rows in &input.one_copy() {
                for row in seg_rows {
                    fill_key(&mut scratch, row, &pos);
                    let dest = segment_for_key(&scratch, n);
                    out.per_seg[dest].push(row.clone());
                }
            }
            ctx.stats.bytes_moved += bytes as u64;
            for s in 0..n {
                out.avail[s] = base + ctx.net_time(bytes) / n as f64;
            }
        }
        MotionKind::Broadcast => {
            let all = input.gathered();
            out.replicated = true;
            // n full copies leave the wire: scale in f64 *before* the
            // integer conversion so large streams don't truncate per-copy.
            ctx.stats.bytes_moved += (bytes * n as f64) as u64;
            let base = input.elapsed();
            for s in 0..n {
                out.per_seg[s] = all.clone();
                out.avail[s] = base + ctx.net_time(bytes);
            }
        }
    }
    Ok(out)
}

fn exec_setop(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    kind: SetOpKind,
    output: &[ColId],
    input_cols: &[Vec<ColId>],
) -> Result<StreamSet> {
    let mut children: Vec<StreamSet> = Vec::with_capacity(plan.children.len());
    for child in &plan.children {
        children.push(exec(child, ctx)?);
    }
    apply_setop(children, ctx, kind, output, input_cols)
}

/// Set operation over already-executed children. Shared with the columnar
/// kernel, which keeps set-ops on the row path (rare, dedup-heavy).
pub(crate) fn apply_setop(
    children: Vec<StreamSet>,
    ctx: &mut ExecCtx<'_>,
    kind: SetOpKind,
    output: &[ColId],
    input_cols: &[Vec<ColId>],
) -> Result<StreamSet> {
    let n = ctx.seg_slots();
    let mut aligned: Vec<StreamSet> = Vec::with_capacity(children.len());
    for (i, c) in children.into_iter().enumerate() {
        let positions: Vec<usize> = input_cols[i]
            .iter()
            .map(|col| {
                c.layout
                    .iter()
                    .position(|x| x == col)
                    .ok_or_else(|| OrcaError::Execution(format!("setop input missing {col}")))
            })
            .collect::<Result<_>>()?;
        let copies = ctx.one_copy_of(&c);
        let mut a = StreamSet::empty(output.to_vec(), n);
        for (s, seg_rows) in copies.iter().enumerate() {
            a.per_seg[s] = seg_rows
                .iter()
                .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
                .collect();
            a.avail[s] = c.avail[s];
        }
        aligned.push(a);
    }
    let mut out = StreamSet::empty(output.to_vec(), n);
    for s in 0..n {
        let mut result: Vec<Row> = dedup_rows(&aligned[0].per_seg[s]);
        for other in &aligned[1..] {
            let other_set = dedup_rows(&other.per_seg[s]);
            result = match kind {
                SetOpKind::Union | SetOpKind::UnionAll => {
                    let mut r = result;
                    for row in other_set {
                        if !r.contains(&row) {
                            r.push(row);
                        }
                    }
                    r
                }
                SetOpKind::Intersect => result
                    .into_iter()
                    .filter(|row| other_set.contains(row))
                    .collect(),
                SetOpKind::Except => result
                    .into_iter()
                    .filter(|row| !other_set.contains(row))
                    .collect(),
            };
        }
        let in_rows: usize = aligned.iter().map(|a| a.per_seg[s].len()).sum();
        ctx.stats.rows_processed += in_rows as u64;
        out.avail[s] =
            aligned.iter().map(|a| a.avail[s]).fold(0.0, f64::max) + ctx.tup_time(in_rows) * 1.8;
        out.per_seg[s] = result;
    }
    Ok(out)
}

fn dedup_rows(rows: &[Row]) -> Vec<Row> {
    let mut seen: FnvHashMap<Vec<Datum>, ()> = FnvHashMap::default();
    let mut out = Vec::new();
    for r in rows {
        if seen.insert(r.clone(), ()).is_none() {
            out.push(r.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{sort_rows, ExecEngine};
    use crate::reference::run_reference;
    use crate::storage::Database;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, MdId, SysId};
    use orca_expr::logical::{LogicalExpr, LogicalOp, TableRef};
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::{AggFunc, CmpOp};

    fn db() -> (Database, TableRef, TableRef) {
        let mut db = Database::new(orca_common::SegmentConfig::default().with_segments(4));
        let t1 = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t1",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let t2 = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 2, 1),
            "t2",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let rows1: Vec<Row> = (0..100)
            .map(|i| vec![Datum::Int(i % 20), Datum::Int(i)])
            .collect();
        let rows2: Vec<Row> = (0..40)
            .map(|i| vec![Datum::Int(i), Datum::Int(i % 20)])
            .collect();
        db.load_table(t1.clone(), rows1).unwrap();
        db.load_table(t2.clone(), rows2).unwrap();
        (db, TableRef(t1), TableRef(t2))
    }

    fn scan(t: &TableRef, first: u32) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: t.clone(),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    /// The paper's running-example plan (Figure 6): T1 join T2 on
    /// T1.a = T2.b, T2 redistributed on b, sorted and gather-merged.
    #[test]
    fn figure6_plan_matches_reference() {
        let (db, t1, t2) = db();
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Redistribute(vec![ColId(3)]),
                    },
                    vec![scan(&t2, 2)],
                ),
            ],
        );
        let plan = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::GatherMerge(orca_expr::OrderSpec::by(&[ColId(0)])),
            },
            vec![PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: orca_expr::OrderSpec::by(&[ColId(0)]),
                },
                vec![join],
            )],
        );
        let engine = ExecEngine::new(&db);
        let got = engine.run(&plan, &[ColId(0)]).unwrap();
        // Reference: logical join, same output.
        let logical = LogicalExpr::new(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
            },
            vec![
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t1,
                    cols: vec![ColId(0), ColId(1)],
                    parts: None,
                }),
                LogicalExpr::leaf(LogicalOp::Get {
                    table: t2,
                    cols: vec![ColId(2), ColId(3)],
                    parts: None,
                }),
            ],
        );
        let expected = run_reference(&db, &logical, &[ColId(0)]).unwrap();
        assert_eq!(got.rows.len(), expected.len());
        assert_eq!(sort_rows(got.rows.clone()), sort_rows(expected));
        // GatherMerge delivered sorted output.
        let keys: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(got.sim_seconds > 0.0);
        assert!(got.stats.bytes_moved > 0);
    }

    /// Broadcast-inner join gives identical results to redistribution.
    #[test]
    fn broadcast_join_equivalent() {
        let (db, t1, t2) = db();
        let mk = |inner_motion: MotionKind| {
            PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::Inner,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion { kind: inner_motion },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )],
            )
        };
        let engine = ExecEngine::new(&db);
        let a = engine
            .run(
                &mk(MotionKind::Redistribute(vec![ColId(3)])),
                &[ColId(0), ColId(2)],
            )
            .unwrap();
        let b = engine
            .run(&mk(MotionKind::Broadcast), &[ColId(0), ColId(2)])
            .unwrap();
        assert_eq!(sort_rows(a.rows), sort_rows(b.rows));
        assert!(
            b.stats.bytes_moved > a.stats.bytes_moved,
            "broadcast ships more"
        );
    }

    /// Split (two-stage) aggregation equals single-stage aggregation.
    #[test]
    fn two_stage_agg_equals_single_stage() {
        let (db, t1, _) = db();
        let engine = ExecEngine::new(&db);
        let agg =
            |stage: AggStage, in_col: ColId, out_col: ColId, func: AggFunc, child: PhysicalPlan| {
                PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: vec![ColId(0)],
                        aggs: vec![(
                            out_col,
                            ScalarExpr::Agg {
                                func,
                                arg: Some(Box::new(ScalarExpr::ColRef(in_col))),
                                distinct: false,
                            },
                        )],
                        stage,
                    },
                    vec![child],
                )
            };
        // Single stage: child already hashed on c0 (t1 is hashed on a).
        let single = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![agg(
                AggStage::Single,
                ColId(1),
                ColId(10),
                AggFunc::Sum,
                scan(&t1, 0),
            )],
        );
        // Two stages with a redistribution between them (Local over a
        // random redistribution to force partial groups).
        let local = agg(
            AggStage::Local,
            ColId(1),
            ColId(11),
            AggFunc::Sum,
            PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Redistribute(vec![ColId(1)]),
                },
                vec![scan(&t1, 0)],
            ),
        );
        let global = agg(
            AggStage::Global,
            ColId(11),
            ColId(10),
            AggFunc::Sum,
            PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Redistribute(vec![ColId(0)]),
                },
                vec![local],
            ),
        );
        let split = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![global],
        );
        let a = engine.run(&single, &[ColId(0), ColId(10)]).unwrap();
        let b = engine.run(&split, &[ColId(0), ColId(10)]).unwrap();
        assert_eq!(sort_rows(a.rows), sort_rows(b.rows));
    }

    /// Scalar count(*) over an empty filter result returns 0, including
    /// via the split-agg path.
    #[test]
    fn scalar_count_on_empty_input() {
        let (db, t1, _) = db();
        let engine = ExecEngine::new(&db);
        let empty = PhysicalPlan::new(
            PhysicalOp::Filter {
                pred: ScalarExpr::cmp(
                    CmpOp::Gt,
                    ScalarExpr::col(ColId(1)),
                    ScalarExpr::int(1_000_000),
                ),
            },
            vec![scan(&t1, 0)],
        );
        let count = ScalarExpr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        let local = PhysicalPlan::new(
            PhysicalOp::HashAgg {
                group_cols: vec![],
                aggs: vec![(ColId(20), count.clone())],
                stage: AggStage::Local,
            },
            vec![empty],
        );
        let global = PhysicalPlan::new(
            PhysicalOp::HashAgg {
                group_cols: vec![],
                aggs: vec![(
                    ColId(21),
                    ScalarExpr::Agg {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col(ColId(20)))),
                        distinct: false,
                    },
                )],
                stage: AggStage::Global,
            },
            vec![PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![local],
            )],
        );
        let got = engine.run(&global, &[ColId(21)]).unwrap();
        assert_eq!(got.rows, vec![vec![Datum::Int(0)]]);
    }

    /// OOM surfaces when spilling is disabled and the build side exceeds
    /// work_mem (§7.3.2's Hadoop-engine failure mode).
    #[test]
    fn hash_join_oom_without_spill() {
        let (mut db_ok, t1, t2) = db();
        db_ok.cluster.work_mem_bytes = 64; // tiny
        db_ok.cluster.can_spill = false;
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Broadcast,
                    },
                    vec![scan(&t2, 2)],
                ),
            ],
        );
        let engine = ExecEngine::new(&db_ok);
        let err = engine.run(&join, &[ColId(0)]).unwrap_err();
        assert_eq!(err.kind(), "oom");
        assert!(err.message().contains("out of memory"), "{err}");
        // With spilling enabled the same plan succeeds (slower).
        let mut db_spill = db_ok.clone();
        db_spill.cluster.can_spill = true;
        let engine2 = ExecEngine::new(&db_spill);
        let ok = engine2.run(&join, &[ColId(0)]).unwrap();
        assert!(ok.stats.spills > 0);
    }

    /// Semi/anti joins and outer joins against the reference interpreter.
    #[test]
    fn join_kinds_match_reference() {
        let (db, t1, t2) = db();
        let engine = ExecEngine::new(&db);
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::LeftSemi,
            JoinKind::LeftAntiSemi,
        ] {
            let out_cols = vec![ColId(0), ColId(1)];
            let plan = PhysicalPlan::new(
                PhysicalOp::Motion {
                    kind: MotionKind::Gather,
                },
                vec![PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )],
            );
            let got = engine.run(&plan, &out_cols).unwrap();
            let logical = LogicalExpr::new(
                LogicalOp::Join {
                    kind,
                    pred: ScalarExpr::col_eq_col(ColId(0), ColId(3)),
                },
                vec![
                    LogicalExpr::leaf(LogicalOp::Get {
                        table: t1.clone(),
                        cols: vec![ColId(0), ColId(1)],
                        parts: None,
                    }),
                    LogicalExpr::leaf(LogicalOp::Get {
                        table: t2.clone(),
                        cols: vec![ColId(2), ColId(3)],
                        parts: None,
                    }),
                ],
            );
            let expected = run_reference(&db, &logical, &out_cols).unwrap();
            assert_eq!(
                sort_rows(got.rows),
                sort_rows(expected),
                "join kind {kind:?} diverged"
            );
        }
    }

    /// Limit + order through the physical pipeline.
    #[test]
    fn sort_limit_pipeline() {
        let (db, t1, _) = db();
        let engine = ExecEngine::new(&db);
        let plan = PhysicalPlan::new(
            PhysicalOp::Limit {
                order: OrderSpec::by(&[ColId(1)]),
                offset: 2,
                count: Some(3),
            },
            vec![PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: OrderSpec::by(&[ColId(1)]),
                },
                vec![PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Gather,
                    },
                    vec![scan(&t1, 0)],
                )],
            )],
        );
        let got = engine.run(&plan, &[ColId(1)]).unwrap();
        let vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(vals, vec![2, 3, 4]);
    }

    /// CTE producer/consumer sharing: two consumers see the same rows.
    #[test]
    fn cte_sequence_shares_producer() {
        let (db, t1, _) = db();
        let engine = ExecEngine::new(&db);
        let cte = orca_common::CteId(1);
        let producer = PhysicalPlan::new(
            PhysicalOp::CteProducer {
                id: cte,
                cols: vec![ColId(0), ColId(1)],
            },
            vec![scan(&t1, 0)],
        );
        let consumer = |first: u32| {
            PhysicalPlan::leaf(PhysicalOp::CteScan {
                id: cte,
                cols: vec![ColId(first), ColId(first + 1)],
                producer_cols: vec![ColId(0), ColId(1)],
            })
        };
        // Join the CTE with itself on c20 = c30 (same key column).
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(20)],
                right_keys: vec![ColId(30)],
                residual: None,
            },
            vec![consumer(20), consumer(30)],
        );
        let plan = PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![PhysicalPlan::new(
                PhysicalOp::Sequence { id: cte },
                vec![producer, join],
            )],
        );
        let got = engine.run(&plan, &[ColId(20), ColId(31)]).unwrap();
        // Self-join on a 20-value key over 100 rows: 100*5 matches per key
        // group → 500 rows (co-located because CTE rows stay in place and
        // both consumers read the same placement).
        assert_eq!(got.rows.len(), 500);
    }
}
