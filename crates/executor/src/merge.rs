//! Streaming k-way merge of sorted row sources.
//!
//! Shared by the serial GatherMerge motion and the parallel
//! interconnect's GatherMerge receiver: both hold one already-sorted
//! stream per sending segment and must produce a single globally sorted
//! stream whose order is **deterministic** — ties between sources break
//! toward the lowest source index, which makes the merge byte-identical
//! to a stable sort of the sources' concatenation (in source order).

use crate::eval::compare_rows;
use crate::storage::Row;
use orca_common::{ColId, Result};
use orca_expr::props::OrderSpec;
use std::cmp::Ordering;

/// A pull source of rows for the merge. `next_row` returns `None` when
/// the source is exhausted; it may block (e.g. on an interconnect
/// channel) and may fail (disconnect, abort).
pub trait RowSource {
    fn next_row(&mut self) -> Result<Option<Row>>;
}

/// A `RowSource` over an in-memory, already-sorted vector of rows.
pub struct VecSource {
    rows: std::vec::IntoIter<Row>,
}

impl VecSource {
    pub fn new(rows: Vec<Row>) -> VecSource {
        VecSource {
            rows: rows.into_iter(),
        }
    }
}

impl RowSource for VecSource {
    fn next_row(&mut self) -> Result<Option<Row>> {
        Ok(self.rows.next())
    }
}

/// Merge `sources` (each sorted by `order` over `layout`) into one sorted
/// vector. Ties break toward the lowest source index. The head of each
/// source is held while merging, so at most k rows are resident beyond
/// the output — the sources themselves may stream.
///
/// k is the segment count (single digits), so the head scan is linear
/// rather than a binary heap: simpler, and faster at this width.
pub fn kway_merge<S: RowSource>(
    sources: Vec<S>,
    order: &OrderSpec,
    layout: &[ColId],
) -> Result<Vec<Row>> {
    let mut merged = Vec::new();
    kway_merge_into(sources, order, layout, |row| {
        merged.push(row);
        Ok(())
    })?;
    Ok(merged)
}

/// Streaming form of [`kway_merge`]: each merged row is handed to `emit`
/// as soon as it is determined, so a consumer can forward rows without
/// materializing the whole output.
pub fn kway_merge_into<S: RowSource>(
    mut sources: Vec<S>,
    order: &OrderSpec,
    layout: &[ColId],
    mut emit: impl FnMut(Row) -> Result<()>,
) -> Result<()> {
    // Prime one head per source; exhausted sources hold None.
    let mut heads: Vec<Option<Row>> = Vec::with_capacity(sources.len());
    for src in sources.iter_mut() {
        heads.push(src.next_row()?);
    }
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(row) = head else { continue };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let cmp = compare_rows(row, heads[b].as_ref().unwrap(), order, layout);
                    // Strictly-less replaces; a tie keeps the lower index.
                    if cmp == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        let row = heads[b].take().unwrap();
        emit(row)?;
        heads[b] = sources[b].next_row()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::Datum;

    fn rows(vals: &[i64]) -> Vec<Row> {
        vals.iter().map(|&v| vec![Datum::Int(v)]).collect()
    }

    #[test]
    fn merges_sorted_runs() {
        let order = OrderSpec::by(&[ColId(0)]);
        let layout = vec![ColId(0)];
        let sources = vec![
            VecSource::new(rows(&[1, 4, 7])),
            VecSource::new(rows(&[2, 4, 8])),
            VecSource::new(rows(&[])),
            VecSource::new(rows(&[3, 4])),
        ];
        let merged = kway_merge(sources, &order, &layout).unwrap();
        let got: Vec<i64> = merged.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 4, 4, 7, 8]);
    }

    /// Tie-breaking toward the lowest source index makes the merge equal
    /// to a stable sort of the concatenation — byte-for-byte, including
    /// payload columns not covered by the sort key.
    #[test]
    fn equals_stable_sort_of_concat() {
        let order = OrderSpec::by(&[ColId(0)]);
        let layout = vec![ColId(0), ColId(1)];
        let mk = |pairs: &[(i64, i64)]| -> Vec<Row> {
            pairs
                .iter()
                .map(|&(a, b)| vec![Datum::Int(a), Datum::Int(b)])
                .collect()
        };
        let segs = vec![
            mk(&[(1, 10), (2, 11), (2, 12)]),
            mk(&[(0, 20), (2, 21)]),
            mk(&[(2, 30), (3, 31)]),
        ];
        let mut expected: Vec<Row> = segs.iter().flatten().cloned().collect();
        expected.sort_by(|a, b| compare_rows(a, b, &order, &layout));
        let merged = kway_merge(
            segs.into_iter().map(VecSource::new).collect(),
            &order,
            &layout,
        )
        .unwrap();
        assert_eq!(merged, expected);
    }
}
