//! Segmented storage: "an array of individual databases, all working
//! together to present a single database image" (§2.1).
//!
//! Tables are stored **natively columnar**: at load time the rows of
//! each (segment, partition) bucket are decomposed once into immutable
//! [`ColumnChunk`]s — typed column vectors with null bitmaps, per-chunk
//! zone maps (min/max/null-count per column) and dictionary-encoded
//! string columns. Scans hand out the chunks' `Arc`-shared column
//! buffers instead of cloning cells, the fused filter path consults the
//! zone maps to skip whole chunks, and the row-kernel oracle derives
//! its `Vec<Row>` view from the same chunks (so it stays the
//! representation-blind differential reference).

use crate::columnar::{Column, ColumnBatch, ValRef};
use orca_catalog::{Distribution, TableDesc};
use orca_common::hash::{segment_for_key, FnvHashMap};
use orca_common::{Datum, MdId, OrcaError, Result, SegmentConfig};
use std::cmp::Ordering;
use std::sync::Arc;

/// A tuple.
pub type Row = Vec<Datum>;

/// Chunk-size ceiling. Chunks are `min(batch_size, MAX_CHUNK_ROWS)`
/// rows: small enough that zone maps prune at a useful granularity even
/// on replicated dimension tables, while any scan batch size ≥ the
/// chunk size still gets the zero-copy fast path (batches are allowed
/// to be smaller than `batch_size`).
pub const MAX_CHUNK_ROWS: usize = 256;

/// Per-column min/max/null statistics for one chunk.
///
/// `min`/`max` are `None` when the chunk's non-null values are not
/// mutually comparable under `Datum::sql_cmp` (mixed comparison
/// classes, NaN) or when every value is NULL — pruning then falls back
/// to the null count alone.
#[derive(Debug, Clone)]
pub struct ZoneMap {
    pub min: Option<Datum>,
    pub max: Option<Datum>,
    pub null_count: usize,
}

/// An immutable horizontal slice of one (segment, partition) bucket in
/// columnar form, shared by `Arc` between replicated segments, scans
/// and the fragment cache.
#[derive(Debug)]
pub struct ColumnChunk {
    pub data: ColumnBatch,
    /// One entry per column of `data`.
    pub zones: Vec<ZoneMap>,
}

fn zone_of(col: &Column) -> ZoneMap {
    // Dict columns carry their sorted dictionary: min/max are its ends.
    if let Some((_, dict, nulls)) = col.dict_parts() {
        return ZoneMap {
            min: dict.first().map(|s| Datum::Str(s.clone())),
            max: dict.last().map(|s| Datum::Str(s.clone())),
            null_count: nulls.map_or(0, |b| b.count_ones()),
        };
    }
    let mut null_count = 0usize;
    let mut comparable = true;
    let (mut min_i, mut max_i) = (None, None);
    for i in 0..col.len() {
        let v = col.get_ref(i);
        if v.is_null() {
            null_count += 1;
            continue;
        }
        if !comparable {
            continue;
        }
        let (Some(mi), Some(ma)) = (min_i, max_i) else {
            min_i = Some(i);
            max_i = Some(i);
            continue;
        };
        match v.sql_cmp(&col.get_ref(mi)) {
            None => {
                comparable = false;
                continue;
            }
            Some(Ordering::Less) => min_i = Some(i),
            _ => {}
        }
        match v.sql_cmp(&col.get_ref(ma)) {
            None => comparable = false,
            Some(Ordering::Greater) => max_i = Some(i),
            _ => {}
        }
    }
    if !comparable {
        (min_i, max_i) = (None, None);
    }
    ZoneMap {
        min: min_i.map(|i| col.get(i)),
        max: max_i.map(|i| col.get(i)),
        null_count,
    }
}

fn build_chunks(rows: &[Row], width: usize, chunk_rows: usize) -> Vec<Arc<ColumnChunk>> {
    rows.chunks(chunk_rows.max(1))
        .map(|slice| {
            let mut data = ColumnBatch::from_rows(slice, width);
            for col in data.cols.iter_mut() {
                if let Some(encoded) = col.dict_encoded() {
                    *col = encoded;
                }
            }
            let zones = data.cols.iter().map(zone_of).collect();
            Arc::new(ColumnChunk { data, zones })
        })
        .collect()
}

/// One table's data: `chunks[s][p]` = the column chunks of partition
/// `p` on segment `s` (unpartitioned tables have a single partition 0).
#[derive(Debug, Clone)]
pub struct SegmentedTable {
    pub desc: Arc<TableDesc>,
    chunks: Vec<Vec<Vec<Arc<ColumnChunk>>>>,
    rows_per_chunk: usize,
}

impl SegmentedTable {
    /// Distribute `rows` across `num_segments` according to the table's
    /// policy, chunking at the default [`MAX_CHUNK_ROWS`].
    pub fn load(
        desc: Arc<TableDesc>,
        rows: Vec<Row>,
        num_segments: usize,
    ) -> Result<SegmentedTable> {
        SegmentedTable::load_chunked(desc, rows, num_segments, MAX_CHUNK_ROWS)
    }

    /// Distribute and chunk `rows`, with an explicit chunk size.
    pub fn load_chunked(
        desc: Arc<TableDesc>,
        rows: Vec<Row>,
        num_segments: usize,
        chunk_rows: usize,
    ) -> Result<SegmentedTable> {
        let nparts = desc.num_partitions();
        let width = desc.columns.len();
        let replicated = desc.distribution == Distribution::Replicated;
        // Replicated tables are bucketed once and the chunks shared.
        let bucket_segs = if replicated { 1 } else { num_segments };
        let mut buckets = vec![vec![Vec::new(); nparts]; bucket_segs];
        for row in rows {
            if row.len() != width {
                return Err(OrcaError::Execution(format!(
                    "row arity {} != {} for table {}",
                    row.len(),
                    width,
                    desc.name
                )));
            }
            let part = match &desc.partitioning {
                Some(p) => {
                    let v = row[p.column].as_i64().ok_or_else(|| {
                        OrcaError::Execution(format!("non-integer partition key in {}", desc.name))
                    })?;
                    p.part_for_value(v).ok_or_else(|| {
                        OrcaError::Execution(format!(
                            "value {v} outside partition bounds of {}",
                            desc.name
                        ))
                    })?
                }
                None => 0,
            };
            match &desc.distribution {
                Distribution::Hashed(cols) => {
                    let key: Vec<Datum> = cols.iter().map(|c| row[*c].clone()).collect();
                    let s = segment_for_key(&key, num_segments);
                    buckets[s][part].push(row);
                }
                Distribution::Random => {
                    // Deterministic round-robin on a content hash.
                    let s = segment_for_key(&row, num_segments);
                    buckets[s][part].push(row);
                }
                Distribution::Replicated => buckets[0][part].push(row),
                Distribution::Singleton => buckets[0][part].push(row),
            }
        }
        let rows_per_chunk = chunk_rows.max(1);
        let mut chunks: Vec<Vec<Vec<Arc<ColumnChunk>>>> = buckets
            .iter()
            .map(|parts| {
                parts
                    .iter()
                    .map(|rows| build_chunks(rows, width, rows_per_chunk))
                    .collect()
            })
            .collect();
        if replicated {
            // Every segment shares the same Arc'd chunks: one physical
            // copy of the data regardless of cluster size.
            let shared = chunks[0].clone();
            chunks = (0..num_segments).map(|_| shared.clone()).collect();
        }
        Ok(SegmentedTable {
            desc,
            chunks,
            rows_per_chunk,
        })
    }

    /// Rows each chunk was built to hold (the zero-copy scan threshold).
    pub fn rows_per_chunk(&self) -> usize {
        self.rows_per_chunk
    }

    /// The chunks of the selected partitions on one segment, in scan
    /// order (partitions in the order given, chunks in row order).
    pub fn part_chunks(
        &self,
        segment: usize,
        parts: &Option<Vec<usize>>,
    ) -> Vec<&Arc<ColumnChunk>> {
        let buckets = &self.chunks[segment];
        match parts {
            None => buckets.iter().flatten().collect(),
            Some(ps) => ps
                .iter()
                .filter_map(|p| buckets.get(*p))
                .flatten()
                .collect(),
        }
    }

    /// Rows of the selected partitions on one segment (the row-kernel
    /// oracle's view, materialized cell by cell from the chunks).
    pub fn scan(&self, segment: usize, parts: &Option<Vec<usize>>) -> Vec<Row> {
        let mut out = Vec::new();
        for chunk in self.part_chunks(segment, parts) {
            chunk.data.to_rows(&mut out);
        }
        out
    }

    /// Rows of the selected partitions on one segment as columnar
    /// batches of at most `batch_size` rows. When `batch_size` is at
    /// least the chunk size this is **zero-copy**: each batch aliases a
    /// chunk's `Arc`-shared column buffers. Smaller batch sizes fall
    /// back to slicing (reported via the return's second element, in
    /// logical bytes copied).
    pub fn scan_columnar(
        &self,
        segment: usize,
        parts: &Option<Vec<usize>>,
        batch_size: usize,
    ) -> Vec<ColumnBatch> {
        let width = self.desc.columns.len();
        let mut out = Vec::new();
        self.scan_columnar_into(segment, parts, batch_size, &mut out, || {
            ColumnBatch::new(width)
        });
        out
    }

    /// [`Self::scan_columnar`] with caller-supplied batch shells (the
    /// `BatchPool` hook) and byte accounting for the sliced slow path.
    pub fn scan_columnar_into(
        &self,
        segment: usize,
        parts: &Option<Vec<usize>>,
        batch_size: usize,
        out: &mut Vec<ColumnBatch>,
        mut shell: impl FnMut() -> ColumnBatch,
    ) -> u64 {
        let bs = batch_size.max(1);
        let mut bytes_cloned = 0u64;
        for chunk in self.part_chunks(segment, parts) {
            let len = chunk.data.len;
            if len == 0 {
                continue;
            }
            if bs >= len {
                // Zero-copy: hand out the chunk's shared buffers.
                out.push(chunk.data.clone());
                continue;
            }
            let mut start = 0u32;
            while (start as usize) < len {
                let end = (start as usize + bs).min(len) as u32;
                let sel: Vec<u32> = (start..end).collect();
                let mut b = shell();
                b.reset(chunk.data.width());
                b.extend_select(&chunk.data, &sel);
                bytes_cloned += b.bytes();
                out.push(b);
                start = end;
            }
        }
        bytes_cloned
    }

    pub fn total_rows(&self) -> usize {
        self.chunks
            .iter()
            .map(|s| s.iter().flatten().map(|c| c.data.len).sum::<usize>())
            .sum()
    }

    /// All rows regardless of placement (reference-executor view).
    pub fn all_rows(&self, parts: &Option<Vec<usize>>) -> Vec<Row> {
        // Replicated tables share one copy across segments; read segment 0.
        if self.desc.distribution == Distribution::Replicated {
            return self.scan(0, parts);
        }
        (0..self.chunks.len())
            .flat_map(|s| self.scan(s, parts))
            .collect()
    }
}

/// All loaded tables, addressable by MdId.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: FnvHashMap<MdId, SegmentedTable>,
    pub cluster: SegmentConfig,
}

impl Database {
    pub fn new(cluster: SegmentConfig) -> Database {
        Database {
            tables: FnvHashMap::default(),
            cluster,
        }
    }

    pub fn load_table(&mut self, desc: Arc<TableDesc>, rows: Vec<Row>) -> Result<()> {
        let chunk_rows = self.cluster.batch_size.clamp(1, MAX_CHUNK_ROWS);
        let t = SegmentedTable::load_chunked(
            desc.clone(),
            rows,
            self.cluster.num_segments,
            chunk_rows,
        )?;
        self.tables.insert(desc.mdid, t);
        Ok(())
    }

    pub fn table(&self, mdid: MdId) -> Result<&SegmentedTable> {
        self.tables
            .get(&mdid)
            .ok_or_else(|| OrcaError::Execution(format!("table {mdid} not loaded")))
    }

    pub fn num_segments(&self) -> usize {
        self.cluster.num_segments
    }
}

/// True when `col`'s zone map proves a comparison `col <op> lit` (after
/// commuting the literal to the right) can never be TRUE for any row of
/// the chunk — the chunk-skip test of the fused filter path. `lit` may
/// be NULL or of a different comparison class; both prune, matching the
/// three-valued logic of `sql_cmp`-based evaluation.
pub fn zone_prunes_cmp(zone: &ZoneMap, op: orca_expr::CmpOp, lit: &Datum, rows: usize) -> bool {
    use orca_expr::CmpOp;
    // Every row NULL → every comparison NULL → never TRUE.
    if zone.null_count == rows {
        return true;
    }
    // NULL literal → comparison NULL on every row.
    if lit.is_null() {
        return true;
    }
    let (Some(min), Some(max)) = (&zone.min, &zone.max) else {
        return false;
    };
    let lv = ValRef::of(lit);
    let (Some(cmin), Some(cmax)) = (lv.sql_cmp(&ValRef::of(min)), lv.sql_cmp(&ValRef::of(max)))
    else {
        // min/max comparable among themselves but not with the literal
        // ⇒ the literal's class differs from every non-null value's ⇒
        // every comparison is NULL.
        return true;
    };
    match op {
        CmpOp::Eq => cmin == Ordering::Less || cmax == Ordering::Greater,
        // col < lit needs min < lit.
        CmpOp::Lt => cmin != Ordering::Greater,
        // col <= lit needs min <= lit.
        CmpOp::Le => cmin == Ordering::Less,
        // col > lit needs max > lit.
        CmpOp::Gt => cmax != Ordering::Less,
        // col >= lit needs max >= lit.
        CmpOp::Ge => cmax == Ordering::Greater,
        // col != lit can only be all-false when min == lit == max.
        CmpOp::Ne => cmin == Ordering::Equal && cmax == Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Partitioning};
    use orca_common::{DataType, SysId};

    fn desc(dist: Distribution) -> Arc<TableDesc> {
        Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t",
            vec![
                ColumnMeta::new("k", DataType::Int),
                ColumnMeta::new("v", DataType::Int),
            ],
            dist,
        ))
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Datum::Int(i), Datum::Int(i * 10)])
            .collect()
    }

    #[test]
    fn hashed_load_places_equal_keys_together() {
        let t = SegmentedTable::load(desc(Distribution::Hashed(vec![0])), rows(100), 4).unwrap();
        assert_eq!(t.total_rows(), 100);
        // Same key, different tables → same segment (co-location).
        let t2 = SegmentedTable::load(desc(Distribution::Hashed(vec![0])), rows(100), 4).unwrap();
        for s in 0..4 {
            let keys1: Vec<i64> = t
                .scan(s, &None)
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            let keys2: Vec<i64> = t2
                .scan(s, &None)
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            assert_eq!(keys1, keys2);
        }
    }

    #[test]
    fn replicated_gives_every_segment_a_copy() {
        let t = SegmentedTable::load(desc(Distribution::Replicated), rows(10), 3).unwrap();
        for s in 0..3 {
            assert_eq!(t.scan(s, &None).len(), 10);
        }
        // all_rows must not triple-count.
        assert_eq!(t.all_rows(&None).len(), 10);
        // The segments share chunk storage, not copies.
        let c0 = t.part_chunks(0, &None);
        let c2 = t.part_chunks(2, &None);
        assert!(Arc::ptr_eq(c0[0], c2[0]));
    }

    #[test]
    fn singleton_lands_on_master_segment() {
        let t = SegmentedTable::load(desc(Distribution::Singleton), rows(5), 4).unwrap();
        assert_eq!(t.scan(0, &None).len(), 5);
        for s in 1..4 {
            assert!(t.scan(s, &None).is_empty());
        }
    }

    #[test]
    fn partition_buckets_and_pruned_scan() {
        let d = Arc::new(
            TableDesc::new(
                MdId::new(SysId::Gpdb, 2, 1),
                "p",
                vec![
                    ColumnMeta::new("k", DataType::Int),
                    ColumnMeta::new("v", DataType::Int),
                ],
                Distribution::Hashed(vec![1]),
            )
            .with_partitioning(Partitioning::range(0, 0, 100, 4)),
        );
        let t = SegmentedTable::load(d, rows(100), 2).unwrap();
        // Partition 1 = keys 25..50.
        let p1: Vec<Row> = (0..2).flat_map(|s| t.scan(s, &Some(vec![1]))).collect();
        assert_eq!(p1.len(), 25);
        assert!(p1.iter().all(|r| {
            let k = r[0].as_i64().unwrap();
            (25..50).contains(&k)
        }));
        // Out-of-bounds value errors.
        let d2 = t.desc.clone();
        assert!(SegmentedTable::load(d2, vec![vec![Datum::Int(500), Datum::Int(0)]], 2).is_err());
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new(SegmentConfig::default().with_segments(2));
        let d = desc(Distribution::Random);
        db.load_table(d.clone(), rows(7)).unwrap();
        assert_eq!(db.table(d.mdid).unwrap().total_rows(), 7);
        assert!(db.table(MdId::new(SysId::Gpdb, 99, 1)).is_err());
        // Arity mismatch rejected.
        let mut db2 = Database::new(SegmentConfig::default());
        assert!(db2
            .load_table(desc(Distribution::Random), vec![vec![Datum::Int(1)]])
            .is_err());
    }

    #[test]
    fn chunks_carry_zone_maps_and_dicts() {
        let d = Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 3, 1),
            "z",
            vec![
                ColumnMeta::new("k", DataType::Int),
                ColumnMeta::new("s", DataType::Str),
            ],
            Distribution::Singleton,
        ));
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    if i == 3 { Datum::Null } else { Datum::Int(i) },
                    Datum::Str(["b", "a", "c"][i as usize % 3].to_string()),
                ]
            })
            .collect();
        let t = SegmentedTable::load_chunked(d, rows.clone(), 1, 4).unwrap();
        let chunks = t.part_chunks(0, &None);
        assert_eq!(chunks.len(), 3, "10 rows at 4/chunk");
        // First chunk: ints 0,1,2,NULL → min 0, max 2, one null.
        let z = &chunks[0].zones[0];
        assert_eq!(z.min, Some(Datum::Int(0)));
        assert_eq!(z.max, Some(Datum::Int(2)));
        assert_eq!(z.null_count, 1);
        // String column is dictionary-encoded with a sorted dict.
        let (codes, dict, _) = chunks[0].data.cols[1].dict_parts().expect("dict-encoded");
        assert_eq!(dict, ["a", "b", "c"]);
        assert_eq!(codes, [1u32, 0, 2, 1]);
        // Zone map of the dict column spans the dict.
        assert_eq!(chunks[0].zones[1].min, Some(Datum::Str("a".into())));
        assert_eq!(chunks[0].zones[1].max, Some(Datum::Str("c".into())));
        // Round trip through the row view is exact.
        assert_eq!(format!("{:?}", t.scan(0, &None)), format!("{rows:?}"));
        // Columnar fast path aliases chunk buffers; sliced path agrees.
        let fast = t.scan_columnar(0, &None, 1024);
        assert_eq!(fast.len(), 3);
        let slow = t.scan_columnar(0, &None, 3);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for batch in &fast {
            batch.to_rows(&mut a);
        }
        for batch in &slow {
            batch.to_rows(&mut b);
        }
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn zone_pruning_rules() {
        use orca_expr::CmpOp;
        let zone = ZoneMap {
            min: Some(Datum::Int(10)),
            max: Some(Datum::Int(20)),
            null_count: 0,
        };
        let rows = 5;
        // Eq outside [10, 20] prunes; inside does not.
        assert!(zone_prunes_cmp(&zone, CmpOp::Eq, &Datum::Int(9), rows));
        assert!(zone_prunes_cmp(&zone, CmpOp::Eq, &Datum::Int(21), rows));
        assert!(!zone_prunes_cmp(&zone, CmpOp::Eq, &Datum::Int(15), rows));
        // col < 10 and col <= 9 prune; col < 11 does not.
        assert!(zone_prunes_cmp(&zone, CmpOp::Lt, &Datum::Int(10), rows));
        assert!(zone_prunes_cmp(&zone, CmpOp::Le, &Datum::Int(9), rows));
        assert!(!zone_prunes_cmp(&zone, CmpOp::Lt, &Datum::Int(11), rows));
        // col > 20 and col >= 21 prune.
        assert!(zone_prunes_cmp(&zone, CmpOp::Gt, &Datum::Int(20), rows));
        assert!(zone_prunes_cmp(&zone, CmpOp::Ge, &Datum::Int(21), rows));
        assert!(!zone_prunes_cmp(&zone, CmpOp::Ge, &Datum::Int(20), rows));
        // Ne prunes only a constant chunk.
        let konst = ZoneMap {
            min: Some(Datum::Int(7)),
            max: Some(Datum::Int(7)),
            null_count: 0,
        };
        assert!(zone_prunes_cmp(&konst, CmpOp::Ne, &Datum::Int(7), rows));
        assert!(!zone_prunes_cmp(&zone, CmpOp::Ne, &Datum::Int(7), rows));
        // NULL literal and class mismatches prune (all-NULL predicate).
        assert!(zone_prunes_cmp(&zone, CmpOp::Eq, &Datum::Null, rows));
        assert!(zone_prunes_cmp(
            &zone,
            CmpOp::Lt,
            &Datum::Str("x".into()),
            rows
        ));
        // All-null chunk prunes any comparison.
        let nulls = ZoneMap {
            min: None,
            max: None,
            null_count: rows,
        };
        assert!(zone_prunes_cmp(&nulls, CmpOp::Eq, &Datum::Int(1), rows));
        // Unknown zones (incomparable values) never prune.
        let unk = ZoneMap {
            min: None,
            max: None,
            null_count: 0,
        };
        assert!(!zone_prunes_cmp(&unk, CmpOp::Eq, &Datum::Int(1), rows));
    }
}
