//! Segmented storage: "an array of individual databases, all working
//! together to present a single database image" (§2.1).
//!
//! Rows are placed on segments according to the table's distribution
//! policy and, within a segment, bucketed by range partition (so partition
//! elimination really skips rows at scan time).

use orca_catalog::{Distribution, TableDesc};
use orca_common::hash::{segment_for_key, FnvHashMap};
use orca_common::{Datum, MdId, OrcaError, Result, SegmentConfig};
use std::sync::Arc;

/// A tuple.
pub type Row = Vec<Datum>;

/// One table's data: `segments[s][p]` = rows of partition `p` on segment
/// `s` (unpartitioned tables have a single partition 0).
#[derive(Debug, Clone)]
pub struct SegmentedTable {
    pub desc: Arc<TableDesc>,
    pub segments: Vec<Vec<Vec<Row>>>,
}

impl SegmentedTable {
    /// Distribute `rows` across `num_segments` according to the table's
    /// policy.
    pub fn load(
        desc: Arc<TableDesc>,
        rows: Vec<Row>,
        num_segments: usize,
    ) -> Result<SegmentedTable> {
        let nparts = desc.num_partitions();
        let mut segments = vec![vec![Vec::new(); nparts]; num_segments];
        for row in rows {
            if row.len() != desc.columns.len() {
                return Err(OrcaError::Execution(format!(
                    "row arity {} != {} for table {}",
                    row.len(),
                    desc.columns.len(),
                    desc.name
                )));
            }
            let part = match &desc.partitioning {
                Some(p) => {
                    let v = row[p.column].as_i64().ok_or_else(|| {
                        OrcaError::Execution(format!("non-integer partition key in {}", desc.name))
                    })?;
                    p.part_for_value(v).ok_or_else(|| {
                        OrcaError::Execution(format!(
                            "value {v} outside partition bounds of {}",
                            desc.name
                        ))
                    })?
                }
                None => 0,
            };
            match &desc.distribution {
                Distribution::Hashed(cols) => {
                    let key: Vec<Datum> = cols.iter().map(|c| row[*c].clone()).collect();
                    let s = segment_for_key(&key, num_segments);
                    segments[s][part].push(row);
                }
                Distribution::Random => {
                    // Deterministic round-robin on a content hash.
                    let s = segment_for_key(&row, num_segments);
                    segments[s][part].push(row);
                }
                Distribution::Replicated => {
                    for seg in segments.iter_mut() {
                        seg[part].push(row.clone());
                    }
                }
                Distribution::Singleton => segments[0][part].push(row),
            }
        }
        Ok(SegmentedTable { desc, segments })
    }

    /// Rows of the selected partitions on one segment.
    pub fn scan(&self, segment: usize, parts: &Option<Vec<usize>>) -> Vec<Row> {
        let buckets = &self.segments[segment];
        match parts {
            None => buckets.iter().flatten().cloned().collect(),
            Some(ps) => ps
                .iter()
                .filter_map(|p| buckets.get(*p))
                .flatten()
                .cloned()
                .collect(),
        }
    }

    /// Rows of the selected partitions on one segment, read directly into
    /// columnar batches of at most `batch_size` rows (the batch kernel's
    /// scan path: no intermediate `Vec<Row>` materialization).
    pub fn scan_columnar(
        &self,
        segment: usize,
        parts: &Option<Vec<usize>>,
        batch_size: usize,
    ) -> Vec<crate::columnar::ColumnBatch> {
        let batch_size = batch_size.max(1);
        let width = self.desc.columns.len();
        let buckets = &self.segments[segment];
        let selected: Vec<&Vec<Row>> = match parts {
            None => buckets.iter().collect(),
            Some(ps) => ps.iter().filter_map(|p| buckets.get(*p)).collect(),
        };
        let mut out = Vec::new();
        let mut cur = crate::columnar::ColumnBatch::new(width);
        for bucket in selected {
            for row in bucket {
                cur.push_row(row);
                if cur.len == batch_size {
                    out.push(std::mem::replace(
                        &mut cur,
                        crate::columnar::ColumnBatch::new(width),
                    ));
                }
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    pub fn total_rows(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// All rows regardless of placement (reference-executor view).
    pub fn all_rows(&self, parts: &Option<Vec<usize>>) -> Vec<Row> {
        // Replicated tables store one copy per segment; read segment 0.
        if self.desc.distribution == Distribution::Replicated {
            return self.scan(0, parts);
        }
        (0..self.segments.len())
            .flat_map(|s| self.scan(s, parts))
            .collect()
    }
}

/// All loaded tables, addressable by MdId.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: FnvHashMap<MdId, SegmentedTable>,
    pub cluster: SegmentConfig,
}

impl Database {
    pub fn new(cluster: SegmentConfig) -> Database {
        Database {
            tables: FnvHashMap::default(),
            cluster,
        }
    }

    pub fn load_table(&mut self, desc: Arc<TableDesc>, rows: Vec<Row>) -> Result<()> {
        let t = SegmentedTable::load(desc.clone(), rows, self.cluster.num_segments)?;
        self.tables.insert(desc.mdid, t);
        Ok(())
    }

    pub fn table(&self, mdid: MdId) -> Result<&SegmentedTable> {
        self.tables
            .get(&mdid)
            .ok_or_else(|| OrcaError::Execution(format!("table {mdid} not loaded")))
    }

    pub fn num_segments(&self) -> usize {
        self.cluster.num_segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_catalog::{ColumnMeta, Partitioning};
    use orca_common::{DataType, SysId};

    fn desc(dist: Distribution) -> Arc<TableDesc> {
        Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t",
            vec![
                ColumnMeta::new("k", DataType::Int),
                ColumnMeta::new("v", DataType::Int),
            ],
            dist,
        ))
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Datum::Int(i), Datum::Int(i * 10)])
            .collect()
    }

    #[test]
    fn hashed_load_places_equal_keys_together() {
        let t = SegmentedTable::load(desc(Distribution::Hashed(vec![0])), rows(100), 4).unwrap();
        assert_eq!(t.total_rows(), 100);
        // Same key, different tables → same segment (co-location).
        let t2 = SegmentedTable::load(desc(Distribution::Hashed(vec![0])), rows(100), 4).unwrap();
        for s in 0..4 {
            let keys1: Vec<i64> = t
                .scan(s, &None)
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            let keys2: Vec<i64> = t2
                .scan(s, &None)
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            assert_eq!(keys1, keys2);
        }
    }

    #[test]
    fn replicated_gives_every_segment_a_copy() {
        let t = SegmentedTable::load(desc(Distribution::Replicated), rows(10), 3).unwrap();
        for s in 0..3 {
            assert_eq!(t.scan(s, &None).len(), 10);
        }
        // all_rows must not triple-count.
        assert_eq!(t.all_rows(&None).len(), 10);
    }

    #[test]
    fn singleton_lands_on_master_segment() {
        let t = SegmentedTable::load(desc(Distribution::Singleton), rows(5), 4).unwrap();
        assert_eq!(t.scan(0, &None).len(), 5);
        for s in 1..4 {
            assert!(t.scan(s, &None).is_empty());
        }
    }

    #[test]
    fn partition_buckets_and_pruned_scan() {
        let d = Arc::new(
            TableDesc::new(
                MdId::new(SysId::Gpdb, 2, 1),
                "p",
                vec![
                    ColumnMeta::new("k", DataType::Int),
                    ColumnMeta::new("v", DataType::Int),
                ],
                Distribution::Hashed(vec![1]),
            )
            .with_partitioning(Partitioning::range(0, 0, 100, 4)),
        );
        let t = SegmentedTable::load(d, rows(100), 2).unwrap();
        // Partition 1 = keys 25..50.
        let p1: Vec<Row> = (0..2).flat_map(|s| t.scan(s, &Some(vec![1]))).collect();
        assert_eq!(p1.len(), 25);
        assert!(p1.iter().all(|r| {
            let k = r[0].as_i64().unwrap();
            (25..50).contains(&k)
        }));
        // Out-of-bounds value errors.
        let d2 = t.desc.clone();
        assert!(SegmentedTable::load(d2, vec![vec![Datum::Int(500), Datum::Int(0)]], 2).is_err());
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new(SegmentConfig::default().with_segments(2));
        let d = desc(Distribution::Random);
        db.load_table(d.clone(), rows(7)).unwrap();
        assert_eq!(db.table(d.mdid).unwrap().total_rows(), 7);
        assert!(db.table(MdId::new(SysId::Gpdb, 99, 1)).is_err());
        // Arity mismatch rejected.
        let mut db2 = Database::new(SegmentConfig::default());
        assert!(db2
            .load_table(desc(Distribution::Random), vec![vec![Datum::Int(1)]])
            .is_err());
    }
}
