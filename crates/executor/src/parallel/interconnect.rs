//! The interconnect: batched, bounded channels between slice gangs.
//!
//! For each motion edge the driver builds an n×n matrix of bounded
//! channels — one per (sender instance, receiver instance) pair. A
//! channel carries a short protocol: `Open(layout)`, zero or more
//! `Batch` messages of up to `batch_rows` rows, then `Eos`. Bounded
//! capacity is the backpressure mechanism: a fast sender blocks (in
//! 10ms abort-checking slices) once `capacity` batches are in flight.
//!
//! Determinism: receivers drain sender channels **in sender-segment
//! order** (GatherMerge instead merges all senders, breaking ties toward
//! the lowest sender), which reproduces the serial engine's stream order
//! byte for byte. A sender whose stream is replicated ships only its
//! segment-0 copy — the parallel analogue of the serial `one_copy()`.

use crate::exec::StreamSet;
use crate::merge::{kway_merge, RowSource};
use crate::storage::Row;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use orca_common::hash::segment_for_key;
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::physical::MotionKind;
use orca_gpos::AbortSignal;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// How long a blocked channel operation waits before re-checking the
/// abort signal. Small enough that cancellation is prompt; large enough
/// that a healthy pipeline never spins.
const POLL: Duration = Duration::from_millis(10);

/// One message on an interconnect channel.
#[derive(Debug)]
pub enum Msg {
    /// Stream prologue: the row layout (sent by every sender instance,
    /// identical across a motion — layouts travel in-band so empty
    /// streams still carry their schema).
    Open {
        layout: Vec<ColId>,
    },
    Batch(Vec<Row>),
    /// End of stream: the sender instance is done with this receiver.
    Eos,
}

/// Wire counters for one motion, shared by all its channels.
#[derive(Debug, Default)]
pub struct MotionCounters {
    pub rows: AtomicU64,
    pub bytes: AtomicU64,
    /// Highest observed in-flight batch count on any single channel —
    /// `capacity` here means the backpressure bound was hit.
    pub peak_queue: AtomicUsize,
}

/// The channel matrix for one motion: `n` sender instances × `n`
/// receiver instances.
pub struct MotionChannels {
    /// `tx[sender][receiver]`, handed out to sender tasks.
    pub tx: Vec<Option<Vec<Sender<Msg>>>>,
    /// `rx[receiver][sender]`, handed out to receiver tasks.
    pub rx: Vec<Option<Vec<Receiver<Msg>>>>,
}

impl MotionChannels {
    pub fn new(n: usize, capacity: usize) -> MotionChannels {
        let mut tx: Vec<Vec<Sender<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rx: Vec<Vec<Receiver<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for tx_row in tx.iter_mut() {
            for rx_row in rx.iter_mut() {
                let (s, r) = bounded(capacity);
                tx_row.push(s);
                rx_row.push(r);
            }
        }
        MotionChannels {
            tx: tx.into_iter().map(Some).collect(),
            rx: rx.into_iter().map(Some).collect(),
        }
    }
}

fn batch_bytes(rows: &[Row]) -> u64 {
    rows.iter()
        .map(|r| r.iter().map(Datum::width).sum::<u64>())
        .sum()
}

fn send_msg(tx: &Sender<Msg>, mut msg: Msg, abort: &AbortSignal) -> Result<()> {
    loop {
        abort.check()?;
        match tx.send_timeout(msg, POLL) {
            Ok(()) => return Ok(()),
            Err(SendTimeoutError::Timeout(m)) => msg = m,
            Err(SendTimeoutError::Disconnected(_)) => {
                // The receiver died; its error (or the abort) is the root
                // cause — this is just the upstream symptom.
                return Err(abort_error(abort, "interconnect receiver disconnected"));
            }
        }
    }
}

fn recv_msg(rx: &Receiver<Msg>, abort: &AbortSignal) -> Result<Msg> {
    loop {
        abort.check()?;
        match rx.recv_timeout(POLL) {
            Ok(m) => return Ok(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(abort_error(abort, "interconnect sender disconnected"));
            }
        }
    }
}

/// Prefer the recorded root-cause error over a generic disconnect.
fn abort_error(abort: &AbortSignal, fallback: &str) -> OrcaError {
    if abort.is_aborted() {
        abort.error()
    } else {
        OrcaError::Execution(fallback.into())
    }
}

/// Send one slice instance's output stream into its motion.
///
/// `stream` is the single-slot output of the kernel on physical segment
/// `segment`; `txs[r]` is the channel to receiver instance `r`.
#[allow(clippy::too_many_arguments)]
pub fn send_stream(
    kind: &MotionKind,
    stream: StreamSet,
    segment: usize,
    txs: &[Sender<Msg>],
    batch_rows: usize,
    abort: &AbortSignal,
    counters: &MotionCounters,
) -> Result<()> {
    for tx in txs {
        send_msg(
            tx,
            Msg::Open {
                layout: stream.layout.clone(),
            },
            abort,
        )?;
    }
    // One distinct copy: replicated streams ship only their master copy,
    // mirroring the serial engine's `one_copy()` / `gathered()` reads.
    let rows: Vec<Row> = if stream.replicated && segment != 0 {
        Vec::new()
    } else {
        stream.per_seg.into_iter().next().unwrap_or_default()
    };
    match kind {
        MotionKind::Gather | MotionKind::GatherMerge(_) => {
            // All rows land on the receiving gang's master instance.
            send_batches(&txs[0], rows, batch_rows, abort, counters)?;
        }
        MotionKind::Redistribute(cols) => {
            let pos: Vec<usize> = cols
                .iter()
                .map(|k| {
                    stream.layout.iter().position(|c| c == k).ok_or_else(|| {
                        OrcaError::Execution(format!("key column {k} not in layout"))
                    })
                })
                .collect::<Result<_>>()?;
            let mut parts: Vec<Vec<Row>> = vec![Vec::new(); txs.len()];
            for row in rows {
                let key: Vec<Datum> = pos.iter().map(|&p| row[p].clone()).collect();
                let dest = segment_for_key(&key, txs.len());
                parts[dest].push(row);
            }
            for (dest, part) in parts.into_iter().enumerate() {
                send_batches(&txs[dest], part, batch_rows, abort, counters)?;
            }
        }
        MotionKind::Broadcast => {
            for tx in txs {
                send_batches(tx, rows.clone(), batch_rows, abort, counters)?;
            }
        }
    }
    for tx in txs {
        send_msg(tx, Msg::Eos, abort)?;
    }
    Ok(())
}

fn send_batches(
    tx: &Sender<Msg>,
    rows: Vec<Row>,
    batch_rows: usize,
    abort: &AbortSignal,
    counters: &MotionCounters,
) -> Result<()> {
    let batch_rows = batch_rows.max(1);
    let mut rows = rows;
    // Drain front-to-back in batch_rows chunks without re-allocating the
    // remainder each time: split off the tail, send the head.
    while !rows.is_empty() {
        let tail = if rows.len() > batch_rows {
            rows.split_off(batch_rows)
        } else {
            Vec::new()
        };
        let batch = std::mem::replace(&mut rows, tail);
        counters
            .rows
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        counters
            .bytes
            .fetch_add(batch_bytes(&batch), Ordering::Relaxed);
        send_msg(tx, Msg::Batch(batch), abort)?;
        counters.peak_queue.fetch_max(tx.len(), Ordering::Relaxed);
    }
    Ok(())
}

/// A streaming [`RowSource`] over one sender's channel (post-`Open`),
/// used by the GatherMerge receiver to merge without materializing.
struct ChannelSource<'a> {
    rx: &'a Receiver<Msg>,
    buf: std::vec::IntoIter<Row>,
    done: bool,
    abort: &'a AbortSignal,
}

impl RowSource for ChannelSource<'_> {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.buf.next() {
                return Ok(Some(row));
            }
            if self.done {
                return Ok(None);
            }
            match recv_msg(self.rx, self.abort)? {
                Msg::Batch(rows) => self.buf = rows.into_iter(),
                Msg::Eos => self.done = true,
                Msg::Open { .. } => {
                    return Err(OrcaError::Execution(
                        "interconnect protocol error: Open after stream start".into(),
                    ))
                }
            }
        }
    }
}

/// Receive one motion's stream for receiver instance `segment`.
///
/// `rxs[s]` is the channel from sender instance `s`. Returns the
/// delivered single-slot `StreamSet` the kernel's `ExchangeRecv` leaf
/// will resolve to.
pub fn receive_stream(
    kind: &MotionKind,
    rxs: &[Receiver<Msg>],
    abort: &AbortSignal,
) -> Result<StreamSet> {
    // Every sender opens with the (shared) layout, even when it will
    // contribute no rows.
    let mut layout: Vec<ColId> = Vec::new();
    for rx in rxs {
        match recv_msg(rx, abort)? {
            Msg::Open { layout: l } => layout = l,
            _ => {
                return Err(OrcaError::Execution(
                    "interconnect protocol error: stream did not start with Open".into(),
                ))
            }
        }
    }
    let mut out = StreamSet::empty(layout, 1);
    match kind {
        MotionKind::GatherMerge(order) => {
            // True streaming k-way merge across sender channels; ties
            // break toward the lowest sender, matching the serial
            // stable-sort-of-concatenation order.
            let sources: Vec<ChannelSource<'_>> = rxs
                .iter()
                .map(|rx| ChannelSource {
                    rx,
                    buf: Vec::new().into_iter(),
                    done: false,
                    abort,
                })
                .collect();
            let layout = out.layout.clone();
            out.per_seg[0] = kway_merge(sources, order, &layout)?;
        }
        _ => {
            // Concatenate sender streams in sender-segment order.
            let mut rows: Vec<Row> = Vec::new();
            for rx in rxs {
                loop {
                    match recv_msg(rx, abort)? {
                        Msg::Batch(mut b) => rows.append(&mut b),
                        Msg::Eos => break,
                        Msg::Open { .. } => {
                            return Err(OrcaError::Execution(
                                "interconnect protocol error: duplicate Open".into(),
                            ))
                        }
                    }
                }
            }
            out.per_seg[0] = rows;
        }
    }
    out.replicated = matches!(kind, MotionKind::Broadcast);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_expr::props::OrderSpec;
    use std::sync::Arc;

    fn stream(rows: Vec<Row>, replicated: bool) -> StreamSet {
        let mut s = StreamSet::empty(vec![ColId(0), ColId(1)], 1);
        s.per_seg[0] = rows;
        s.replicated = replicated;
        s
    }

    fn rows2(vals: &[(i64, i64)]) -> Vec<Row> {
        vals.iter()
            .map(|&(a, b)| vec![Datum::Int(a), Datum::Int(b)])
            .collect()
    }

    /// Run `n` senders and one receiving gang over real threads; returns
    /// each receiver instance's delivered rows.
    fn round_trip(
        kind: MotionKind,
        per_sender: Vec<StreamSet>,
        batch_rows: usize,
        capacity: usize,
    ) -> Vec<Vec<Row>> {
        let n = per_sender.len();
        let mut ch = MotionChannels::new(n, capacity);
        let abort = Arc::new(AbortSignal::new());
        let counters = MotionCounters::default();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, stream) in per_sender.into_iter().enumerate() {
                let txs = ch.tx[s].take().unwrap();
                let kind = &kind;
                let abort = &abort;
                let counters = &counters;
                scope.spawn(move || {
                    send_stream(kind, stream, s, &txs, batch_rows, abort, counters).unwrap();
                });
            }
            for r in 0..n {
                let rxs = ch.rx[r].take().unwrap();
                let kind = &kind;
                let abort = &abort;
                handles.push(
                    scope.spawn(move || {
                        receive_stream(kind, &rxs, abort).unwrap().per_seg[0].clone()
                    }),
                );
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn gather_concatenates_in_sender_order() {
        let got = round_trip(
            MotionKind::Gather,
            vec![
                stream(rows2(&[(3, 0), (1, 1)]), false),
                stream(rows2(&[(2, 2)]), false),
                stream(rows2(&[]), false),
            ],
            2,
            1,
        );
        assert_eq!(got[0], rows2(&[(3, 0), (1, 1), (2, 2)]));
        assert!(got[1].is_empty() && got[2].is_empty());
    }

    #[test]
    fn gather_merge_streams_sorted() {
        let order = OrderSpec::by(&[ColId(0)]);
        let got = round_trip(
            MotionKind::GatherMerge(order),
            vec![
                stream(rows2(&[(1, 10), (4, 11)]), false),
                stream(rows2(&[(1, 20), (2, 21)]), false),
            ],
            1,
            1,
        );
        // Ties (key 1) break toward sender 0.
        assert_eq!(got[0], rows2(&[(1, 10), (1, 20), (2, 21), (4, 11)]));
    }

    #[test]
    fn redistribute_partitions_by_hash() {
        let input = rows2(&[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        let got = round_trip(
            MotionKind::Redistribute(vec![ColId(0)]),
            vec![stream(input.clone(), false), stream(rows2(&[]), false)],
            2,
            1,
        );
        // Every row lands exactly once, on its hash segment.
        let mut all: Vec<Row> = got.iter().flatten().cloned().collect();
        assert_eq!(all.len(), input.len());
        for (r, seg_rows) in got.iter().enumerate() {
            for row in seg_rows {
                assert_eq!(segment_for_key(&row[..1], 2), r);
            }
        }
        all.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(all, input);
    }

    #[test]
    fn broadcast_replicates_and_skips_duplicate_copies() {
        // A replicated sender stream: only segment 0's copy ships.
        let copy = rows2(&[(7, 7), (8, 8)]);
        let got = round_trip(
            MotionKind::Broadcast,
            vec![stream(copy.clone(), true), stream(copy.clone(), true)],
            1,
            1,
        );
        assert_eq!(got[0], copy);
        assert_eq!(got[1], copy);
    }

    #[test]
    fn tiny_capacity_backpressures_without_deadlock() {
        let big: Vec<Row> = (0..500)
            .map(|i| vec![Datum::Int(i), Datum::Int(i)])
            .collect();
        let got = round_trip(
            MotionKind::Gather,
            vec![stream(big.clone(), false)],
            1, // one-row batches
            1, // one batch in flight
        );
        assert_eq!(got[0], big);
    }

    #[test]
    fn abort_unblocks_a_stuck_sender() {
        let mut ch = MotionChannels::new(1, 1);
        let abort = Arc::new(AbortSignal::new());
        let counters = MotionCounters::default();
        let txs = ch.tx[0].take().unwrap();
        let _rxs = ch.rx[0].take().unwrap(); // held, never drained
        let rows: Vec<Row> = (0..100).map(|i| vec![Datum::Int(i)]).collect();
        let mut s = StreamSet::empty(vec![ColId(0)], 1);
        s.per_seg[0] = rows;
        let t = std::thread::spawn({
            let abort = abort.clone();
            move || send_stream(&MotionKind::Gather, s, 0, &txs, 1, &abort, &counters)
        });
        std::thread::sleep(Duration::from_millis(30));
        abort.abort();
        let err = t.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), "aborted");
    }
}
