//! The interconnect: batched, bounded channels between slice gangs.
//!
//! For each motion edge the driver builds an n×n matrix of bounded
//! channels — one per (sender instance, receiver instance) pair. A
//! channel carries a short protocol: `Open(layout)`, zero or more
//! `Batch` messages of up to `batch_rows` rows, then `Eos`. Bounded
//! capacity is the backpressure mechanism: a fast sender blocks (in
//! 10ms abort-checking slices) once `capacity` batches are in flight.
//!
//! Batches travel **columnar** ([`ColumnBatch`]): a Gather forwards the
//! kernel's output columns without touching individual rows, and a
//! Redistribute routes row-by-row into per-destination column builders.
//! Consumed batch shells cycle through a shared [`BatchPool`] free list,
//! so steady-state traffic allocates no new buffers (`batches_reused`
//! in the parallel stats counts the recycled ones).
//!
//! Determinism: receivers drain sender channels **in sender-segment
//! order** (GatherMerge instead merges all senders, breaking ties toward
//! the lowest sender), which reproduces the serial engine's stream order
//! byte for byte. A sender whose stream is replicated ships only its
//! segment-0 copy — the parallel analogue of the serial `one_copy()`.

use crate::columnar::{ColStream, ColumnBatch};
use crate::merge::{kway_merge, RowSource};
use crate::net::{NetReceiver, NetSender};
use crate::storage::Row;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use orca_common::hash::FnvHasher;
use orca_common::{ColId, OrcaError, Result, SegmentConfig};
use orca_expr::physical::MotionKind;
use orca_gpos::AbortSignal;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long a blocked channel operation waits before re-checking the
/// abort signal. Small enough that cancellation is prompt; large enough
/// that a healthy pipeline never spins.
const POLL: Duration = Duration::from_millis(10);

/// Max batch shells kept on the free list. Enough to cover every
/// in-flight batch of a busy gang; beyond that, dropping is cheaper
/// than hoarding.
const POOL_CAP: usize = 64;

/// One message on an interconnect channel.
#[derive(Debug)]
pub enum Msg {
    /// Stream prologue, sent by every sender instance: the row layout
    /// (identical across a motion — layouts travel in-band so empty
    /// streams still carry their schema) plus the sender's simulated
    /// clock and byte accounting, from which the receiver replays the
    /// serial engine's motion-cost formulas. The `f64`s cross process
    /// boundaries bit-exact, so `sim_seconds` is identical whether an
    /// edge is a channel or a socket.
    Open {
        layout: Vec<ColId>,
        /// The sender instance's stream clock (`ColStream::avail[0]`).
        avail: f64,
        /// Bytes of the sender's distinct copy (`ColStream::bytes()`).
        bytes: f64,
        /// Whether the sender's stream was replicated (every sender of a
        /// motion reports the same value).
        replicated: bool,
    },
    Batch(ColumnBatch),
    /// End of stream: the sender instance is done with this receiver.
    Eos,
}

/// The sending half of one directed motion edge: an in-process bounded
/// channel, or a TCP connection when the receiving instance lives in
/// another process. Both block in abort-checking poll slices and bound
/// the number of in-flight batches at the matrix capacity.
pub enum MsgSender {
    Local(Sender<Msg>),
    Net(NetSender),
}

impl MsgSender {
    pub fn send(&self, msg: Msg, abort: &AbortSignal) -> Result<()> {
        match self {
            MsgSender::Local(tx) => send_msg(tx, msg, abort),
            MsgSender::Net(tx) => tx.send(msg, abort),
        }
    }

    /// Batches currently in flight toward the receiver (channel depth or
    /// consumed credit-window slots).
    pub fn queued(&self) -> usize {
        match self {
            MsgSender::Local(tx) => tx.len(),
            MsgSender::Net(tx) => tx.queued(),
        }
    }
}

/// The receiving half of one directed motion edge.
pub enum MsgReceiver {
    Local(Receiver<Msg>),
    Net(NetReceiver),
}

impl MsgReceiver {
    pub fn recv(&self, abort: &AbortSignal) -> Result<Msg> {
        match self {
            MsgReceiver::Local(rx) => recv_msg(rx, abort),
            MsgReceiver::Net(rx) => rx.recv(abort),
        }
    }
}

/// A free list of [`ColumnBatch`] shells shared by every task of one
/// parallel run. Receivers return consumed shells; senders and
/// receivers take them back instead of allocating.
#[derive(Debug, Default)]
pub struct BatchPool {
    free: Mutex<Vec<ColumnBatch>>,
    reused: AtomicU64,
}

impl BatchPool {
    pub fn new() -> BatchPool {
        BatchPool::default()
    }

    /// An empty batch of `width` columns — recycled when available.
    pub fn take(&self, width: usize) -> ColumnBatch {
        if let Some(mut b) = self.free.lock().unwrap().pop() {
            b.reset(width);
            self.reused.fetch_add(1, Ordering::Relaxed);
            return b;
        }
        ColumnBatch::new(width)
    }

    /// Return a consumed shell to the free list (dropped when full).
    pub fn put(&self, batch: ColumnBatch) {
        let mut free = self.free.lock().unwrap();
        if free.len() < POOL_CAP {
            free.push(batch);
        }
    }

    /// How many takes were served from the free list.
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }
}

/// Wire counters for one motion, shared by all its channels.
#[derive(Debug, Default)]
pub struct MotionCounters {
    pub rows: AtomicU64,
    pub bytes: AtomicU64,
    /// Highest observed in-flight batch count on any single channel —
    /// `capacity` here means the backpressure bound was hit.
    pub peak_queue: AtomicUsize,
}

/// The channel matrix for one motion: `n` sender instances × `n`
/// receiver instances.
pub struct MotionChannels {
    /// `tx[sender][receiver]`, handed out to sender tasks. `None` rows
    /// belong to instances hosted by another peer process.
    pub tx: Vec<Option<Vec<MsgSender>>>,
    /// `rx[receiver][sender]`, handed out to receiver tasks.
    pub rx: Vec<Option<Vec<MsgReceiver>>>,
}

impl MotionChannels {
    /// An all-local matrix: every edge is an in-process bounded channel.
    pub fn new(n: usize, capacity: usize) -> MotionChannels {
        let mut tx: Vec<Vec<MsgSender>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rx: Vec<Vec<MsgReceiver>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for tx_row in tx.iter_mut() {
            for rx_row in rx.iter_mut() {
                let (s, r) = bounded(capacity);
                tx_row.push(MsgSender::Local(s));
                rx_row.push(MsgReceiver::Local(r));
            }
        }
        MotionChannels {
            tx: tx.into_iter().map(Some).collect(),
            rx: rx.into_iter().map(Some).collect(),
        }
    }
}

fn send_msg(tx: &Sender<Msg>, mut msg: Msg, abort: &AbortSignal) -> Result<()> {
    loop {
        abort.check()?;
        match tx.send_timeout(msg, POLL) {
            Ok(()) => return Ok(()),
            Err(SendTimeoutError::Timeout(m)) => msg = m,
            Err(SendTimeoutError::Disconnected(_)) => {
                // The receiver died; its error (or the abort) is the root
                // cause — this is just the upstream symptom.
                return Err(abort_error(abort, "interconnect receiver disconnected"));
            }
        }
    }
}

fn recv_msg(rx: &Receiver<Msg>, abort: &AbortSignal) -> Result<Msg> {
    loop {
        abort.check()?;
        match rx.recv_timeout(POLL) {
            Ok(m) => return Ok(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Err(abort_error(abort, "interconnect sender disconnected"));
            }
        }
    }
}

/// Prefer the recorded root-cause error over a generic disconnect.
fn abort_error(abort: &AbortSignal, fallback: &str) -> OrcaError {
    if abort.is_aborted() {
        abort.error()
    } else {
        OrcaError::Execution(fallback.into())
    }
}

/// Count and ship one non-empty batch.
fn send_batch(
    tx: &MsgSender,
    batch: ColumnBatch,
    abort: &AbortSignal,
    counters: &MotionCounters,
) -> Result<()> {
    counters.rows.fetch_add(batch.len as u64, Ordering::Relaxed);
    counters.bytes.fetch_add(batch.bytes(), Ordering::Relaxed);
    tx.send(Msg::Batch(batch), abort)?;
    counters
        .peak_queue
        .fetch_max(tx.queued(), Ordering::Relaxed);
    Ok(())
}

/// Ship a batch list to one receiver, re-chunking anything larger than
/// `batch_rows` (the kernel's batch size and the wire's need not agree).
fn send_batches(
    tx: &MsgSender,
    batches: Vec<ColumnBatch>,
    batch_rows: usize,
    abort: &AbortSignal,
    counters: &MotionCounters,
) -> Result<()> {
    let batch_rows = batch_rows.max(1);
    for mut b in batches {
        while b.len > batch_rows {
            let tail = b.split_off(batch_rows);
            let head = std::mem::replace(&mut b, tail);
            send_batch(tx, head, abort, counters)?;
        }
        if !b.is_empty() {
            send_batch(tx, b, abort, counters)?;
        }
    }
    Ok(())
}

/// Send one slice instance's output stream into its motion.
///
/// `stream` is the single-slot output of the kernel on physical segment
/// `segment`; `txs[r]` is the channel to receiver instance `r`.
#[allow(clippy::too_many_arguments)]
pub fn send_stream(
    kind: &MotionKind,
    stream: ColStream,
    segment: usize,
    txs: &[MsgSender],
    batch_rows: usize,
    abort: &AbortSignal,
    counters: &MotionCounters,
    pool: &BatchPool,
    key_pos: Option<&[usize]>,
) -> Result<()> {
    // The Open carries this instance's simulated clock and its copy's
    // byte count; receivers fold these into the serial motion-cost
    // replay. Replicated streams report their copy's bytes from *every*
    // sender (the receiver divides the sum back down by `n`, mirroring
    // `distinct_bytes`), even though only segment 0 ships rows.
    let avail = stream.avail[0];
    let bytes = stream.bytes();
    for tx in txs {
        tx.send(
            Msg::Open {
                layout: stream.layout.clone(),
                avail,
                bytes,
                replicated: stream.replicated,
            },
            abort,
        )?;
    }
    // One distinct copy: replicated streams ship only their master copy,
    // mirroring the serial engine's `one_copy()` / `gathered()` reads.
    let layout = stream.layout;
    let batches: Vec<ColumnBatch> = if stream.replicated && segment != 0 {
        Vec::new()
    } else {
        stream.per_seg.into_iter().next().unwrap_or_default()
    };
    match kind {
        MotionKind::Gather | MotionKind::GatherMerge(_) => {
            // All rows land on the receiving gang's master instance —
            // whole kernel batches move onto the wire, no per-row work.
            send_batches(&txs[0], batches, batch_rows, abort, counters)?;
        }
        MotionKind::Redistribute(cols) => {
            // Key positions come precomputed from the slicer when the
            // sender layout was statically known; resolve here otherwise.
            let pos: Vec<usize> = match key_pos {
                Some(p) => p.to_vec(),
                None => cols
                    .iter()
                    .map(|k| {
                        layout.iter().position(|c| c == k).ok_or_else(|| {
                            OrcaError::Execution(format!("key column {k} not in layout"))
                        })
                    })
                    .collect::<Result<_>>()?,
            };
            let batch_rows = batch_rows.max(1);
            let n = txs.len();
            let width = layout.len();
            // One open builder per destination; full builders ship
            // immediately and are replaced from the pool.
            let mut parts: Vec<ColumnBatch> = (0..n).map(|_| pool.take(width)).collect();
            let mut states: Vec<FnvHasher> = Vec::new();
            let mut sels: Vec<Vec<u32>> = vec![Vec::new(); n];
            for b in batches {
                // Batch-at-a-time fan-out: fold each key column into
                // per-row hasher states column-major (same per-row byte
                // stream as the row loop), then scatter rows into the
                // open builders through selection vectors, slicing each
                // by the room left before a builder ships.
                states.clear();
                states.resize_with(b.len, FnvHasher::default);
                for &p in &pos {
                    b.cols[p].hash_rows_into(&mut states);
                }
                for sel in sels.iter_mut() {
                    sel.clear();
                }
                for (i, h) in states.iter().enumerate() {
                    sels[(h.finish() % n as u64) as usize].push(i as u32);
                }
                for (dest, sel) in sels.iter().enumerate() {
                    let mut rest = &sel[..];
                    while !rest.is_empty() {
                        let room = batch_rows - parts[dest].len;
                        let take = room.min(rest.len());
                        parts[dest].extend_select(&b, &rest[..take]);
                        rest = &rest[take..];
                        if parts[dest].len >= batch_rows {
                            let full = std::mem::replace(&mut parts[dest], pool.take(width));
                            send_batch(&txs[dest], full, abort, counters)?;
                        }
                    }
                }
                // The input batch is fully routed; recycle its shell.
                pool.put(b);
            }
            for (dest, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    pool.put(part);
                } else {
                    send_batch(&txs[dest], part, abort, counters)?;
                }
            }
        }
        MotionKind::Broadcast => {
            for tx in txs {
                send_batches(tx, batches.clone(), batch_rows, abort, counters)?;
            }
        }
    }
    for tx in txs {
        tx.send(Msg::Eos, abort)?;
    }
    Ok(())
}

/// A streaming [`RowSource`] over one sender's channel (post-`Open`),
/// used by the GatherMerge receiver to merge without materializing.
struct ChannelSource<'a> {
    rx: &'a MsgReceiver,
    buf: std::vec::IntoIter<Row>,
    done: bool,
    abort: &'a AbortSignal,
    pool: &'a BatchPool,
}

impl RowSource for ChannelSource<'_> {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.buf.next() {
                return Ok(Some(row));
            }
            if self.done {
                return Ok(None);
            }
            match self.rx.recv(self.abort)? {
                Msg::Batch(b) => {
                    let mut rows = Vec::new();
                    b.to_rows(&mut rows);
                    self.pool.put(b);
                    self.buf = rows.into_iter();
                }
                Msg::Eos => self.done = true,
                Msg::Open { .. } => {
                    return Err(OrcaError::Execution(
                        "interconnect protocol error: Open after stream start".into(),
                    ))
                }
            }
        }
    }
}

/// Receive one motion's stream for receiver instance `segment`.
///
/// `rxs[s]` is the channel from sender instance `s`. Returns the
/// delivered single-slot [`ColStream`] the kernel's `ExchangeRecv` leaf
/// will resolve to, coalesced into batches of up to `batch_rows` rows.
/// Incoming batch shells are returned to `pool` after their columns are
/// copied out — that copy is what keeps the free list warm.
///
/// Besides the rows, this replays the serial engine's simulated motion
/// clock (`exec_motion`) from the senders' `Open` headers: `base` is the
/// max sender clock (the serial `input.elapsed()` fold), `bytes` is the
/// sum of per-sender copies divided back down by `n` for replicated
/// inputs (the serial `distinct_bytes`). The formulas and fold order
/// match the serial engine exactly, and f64 sums of integer byte widths
/// are exact, so the delivered `avail` — and therefore `sim_seconds` —
/// is bit-equal to the serial engine's, whether the edge was a channel
/// or a socket.
pub fn receive_stream(
    kind: &MotionKind,
    rxs: &[MsgReceiver],
    segment: usize,
    cluster: &SegmentConfig,
    abort: &AbortSignal,
    pool: &BatchPool,
    batch_rows: usize,
) -> Result<ColStream> {
    let batch_rows = batch_rows.max(1);
    // Every sender opens with the (shared) layout, even when it will
    // contribute no rows.
    let mut layout: Vec<ColId> = Vec::new();
    let mut base = 0.0_f64;
    let mut total_bytes = 0.0_f64;
    let mut replicated_in = false;
    for rx in rxs {
        match rx.recv(abort)? {
            Msg::Open {
                layout: l,
                avail,
                bytes,
                replicated,
            } => {
                layout = l;
                base = base.max(avail);
                total_bytes += bytes;
                replicated_in = replicated;
            }
            _ => {
                return Err(OrcaError::Execution(
                    "interconnect protocol error: stream did not start with Open".into(),
                ))
            }
        }
    }
    let n = cluster.num_segments;
    let bytes = if replicated_in {
        total_bytes / n as f64
    } else {
        total_bytes
    };
    let net_time = |b: f64| b / cluster.net_bytes_per_sec;
    let tup_time = |rows: usize| rows as f64 / cluster.tuples_per_sec;
    let width = layout.len();
    let mut out = ColStream::empty(layout, 1);
    let mut merged_len = 0usize;
    match kind {
        MotionKind::GatherMerge(order) => {
            // True streaming k-way merge across sender channels; ties
            // break toward the lowest sender, matching the serial
            // stable-sort-of-concatenation order.
            let sources: Vec<ChannelSource<'_>> = rxs
                .iter()
                .map(|rx| ChannelSource {
                    rx,
                    buf: Vec::new().into_iter(),
                    done: false,
                    abort,
                    pool,
                })
                .collect();
            let merged = kway_merge(sources, order, &out.layout)?;
            merged_len = merged.len();
            out.per_seg[0] = merged
                .chunks(batch_rows)
                .map(|c| ColumnBatch::from_rows(c, width))
                .collect();
        }
        _ => {
            // Concatenate sender streams in sender-segment order,
            // coalescing small wire batches back up to `batch_rows`.
            let mut batches: Vec<ColumnBatch> = Vec::new();
            let mut cur = pool.take(width);
            for rx in rxs {
                loop {
                    match rx.recv(abort)? {
                        Msg::Batch(b) => {
                            cur.extend_from_batch(&b);
                            pool.put(b);
                            while cur.len >= batch_rows {
                                let tail = cur.split_off(batch_rows.min(cur.len));
                                batches.push(std::mem::replace(&mut cur, tail));
                            }
                        }
                        Msg::Eos => break,
                        Msg::Open { .. } => {
                            return Err(OrcaError::Execution(
                                "interconnect protocol error: duplicate Open".into(),
                            ))
                        }
                    }
                }
            }
            if cur.is_empty() {
                pool.put(cur);
            } else {
                batches.push(cur);
            }
            out.per_seg[0] = batches;
        }
    }
    // Serial clock replay — same expressions, same evaluation order as
    // `exec_motion`. Gather variants only stamp the master instance;
    // every other instance keeps the serial engine's unset 0.0 slot.
    match kind {
        MotionKind::Gather => {
            if segment == 0 {
                out.avail[0] = base + net_time(bytes);
            }
        }
        MotionKind::GatherMerge(_) => {
            if segment == 0 {
                out.avail[0] = base + net_time(bytes) * 1.15 + tup_time(merged_len) * 0.2;
            }
        }
        MotionKind::Redistribute(_) => {
            out.avail[0] = base + net_time(bytes) / n as f64;
        }
        MotionKind::Broadcast => {
            out.avail[0] = base + net_time(bytes);
        }
    }
    out.replicated = matches!(kind, MotionKind::Broadcast);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::StreamSet;
    use orca_common::hash::segment_for_key;
    use orca_common::Datum;
    use orca_expr::props::OrderSpec;
    use std::sync::Arc;

    fn stream(rows: Vec<Row>, replicated: bool) -> ColStream {
        let mut s = StreamSet::empty(vec![ColId(0), ColId(1)], 1);
        s.per_seg[0] = rows;
        s.replicated = replicated;
        ColStream::from_streamset(&s, 3)
    }

    fn rows2(vals: &[(i64, i64)]) -> Vec<Row> {
        vals.iter()
            .map(|&(a, b)| vec![Datum::Int(a), Datum::Int(b)])
            .collect()
    }

    /// Run `n` senders and one receiving gang over real threads; returns
    /// each receiver instance's delivered rows.
    fn round_trip(
        kind: MotionKind,
        per_sender: Vec<ColStream>,
        batch_rows: usize,
        capacity: usize,
    ) -> Vec<Vec<Row>> {
        round_trip_pooled(kind, per_sender, batch_rows, capacity).0
    }

    fn round_trip_pooled(
        kind: MotionKind,
        per_sender: Vec<ColStream>,
        batch_rows: usize,
        capacity: usize,
    ) -> (Vec<Vec<Row>>, u64) {
        let n = per_sender.len();
        let mut ch = MotionChannels::new(n, capacity);
        let abort = Arc::new(AbortSignal::new());
        let counters = MotionCounters::default();
        let pool = BatchPool::new();
        let cluster = SegmentConfig {
            num_segments: n,
            ..SegmentConfig::default()
        };
        let got = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, stream) in per_sender.into_iter().enumerate() {
                let txs = ch.tx[s].take().unwrap();
                let kind = &kind;
                let abort = &abort;
                let counters = &counters;
                let pool = &pool;
                scope.spawn(move || {
                    send_stream(
                        kind, stream, s, &txs, batch_rows, abort, counters, pool, None,
                    )
                    .unwrap();
                });
            }
            for r in 0..n {
                let rxs = ch.rx[r].take().unwrap();
                let kind = &kind;
                let abort = &abort;
                let pool = &pool;
                let cluster = &cluster;
                handles.push(scope.spawn(move || {
                    let cs =
                        receive_stream(kind, &rxs, r, cluster, abort, pool, batch_rows).unwrap();
                    let mut rows = Vec::new();
                    for b in &cs.per_seg[0] {
                        b.to_rows(&mut rows);
                    }
                    rows
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        (got, pool.reused())
    }

    #[test]
    fn gather_concatenates_in_sender_order() {
        let got = round_trip(
            MotionKind::Gather,
            vec![
                stream(rows2(&[(3, 0), (1, 1)]), false),
                stream(rows2(&[(2, 2)]), false),
                stream(rows2(&[]), false),
            ],
            2,
            1,
        );
        assert_eq!(got[0], rows2(&[(3, 0), (1, 1), (2, 2)]));
        assert!(got[1].is_empty() && got[2].is_empty());
    }

    #[test]
    fn gather_merge_streams_sorted() {
        let order = OrderSpec::by(&[ColId(0)]);
        let got = round_trip(
            MotionKind::GatherMerge(order),
            vec![
                stream(rows2(&[(1, 10), (4, 11)]), false),
                stream(rows2(&[(1, 20), (2, 21)]), false),
            ],
            1,
            1,
        );
        // Ties (key 1) break toward sender 0.
        assert_eq!(got[0], rows2(&[(1, 10), (1, 20), (2, 21), (4, 11)]));
    }

    #[test]
    fn redistribute_partitions_by_hash() {
        let input = rows2(&[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        let got = round_trip(
            MotionKind::Redistribute(vec![ColId(0)]),
            vec![stream(input.clone(), false), stream(rows2(&[]), false)],
            2,
            1,
        );
        // Every row lands exactly once, on its hash segment.
        let mut all: Vec<Row> = got.iter().flatten().cloned().collect();
        assert_eq!(all.len(), input.len());
        for (r, seg_rows) in got.iter().enumerate() {
            for row in seg_rows {
                assert_eq!(segment_for_key(&row[..1], 2), r);
            }
        }
        all.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(all, input);
    }

    /// A redistribute cycles consumed input shells back through the pool
    /// into the per-destination builders.
    #[test]
    fn redistribute_reuses_pooled_batches() {
        let input = rows2(&(0..200).map(|i| (i, i)).collect::<Vec<_>>());
        let (got, reused) = round_trip_pooled(
            MotionKind::Redistribute(vec![ColId(0)]),
            vec![stream(input.clone(), false), stream(rows2(&[]), false)],
            2,
            2,
        );
        assert_eq!(got.iter().map(Vec::len).sum::<usize>(), input.len());
        assert!(reused > 0, "free list never served a take");
    }

    #[test]
    fn broadcast_replicates_and_skips_duplicate_copies() {
        // A replicated sender stream: only segment 0's copy ships.
        let copy = rows2(&[(7, 7), (8, 8)]);
        let got = round_trip(
            MotionKind::Broadcast,
            vec![stream(copy.clone(), true), stream(copy.clone(), true)],
            1,
            1,
        );
        assert_eq!(got[0], copy);
        assert_eq!(got[1], copy);
    }

    #[test]
    fn tiny_capacity_backpressures_without_deadlock() {
        let big: Vec<Row> = (0..500)
            .map(|i| vec![Datum::Int(i), Datum::Int(i)])
            .collect();
        let got = round_trip(
            MotionKind::Gather,
            vec![stream(big.clone(), false)],
            1, // one-row batches
            1, // one batch in flight
        );
        assert_eq!(got[0], big);
    }

    #[test]
    fn abort_unblocks_a_stuck_sender() {
        let mut ch = MotionChannels::new(1, 1);
        let abort = Arc::new(AbortSignal::new());
        let counters = MotionCounters::default();
        let pool = BatchPool::new();
        let txs = ch.tx[0].take().unwrap();
        let _rxs = ch.rx[0].take().unwrap(); // held, never drained
        let rows: Vec<Row> = (0..100).map(|i| vec![Datum::Int(i)]).collect();
        let mut s = StreamSet::empty(vec![ColId(0)], 1);
        s.per_seg[0] = rows;
        let s = ColStream::from_streamset(&s, 4);
        let t = std::thread::spawn({
            let abort = abort.clone();
            move || {
                send_stream(
                    &MotionKind::Gather,
                    s,
                    0,
                    &txs,
                    1,
                    &abort,
                    &counters,
                    &pool,
                    None,
                )
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        abort.abort();
        let err = t.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), "aborted");
    }
}
