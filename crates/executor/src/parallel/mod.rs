//! Parallel MPP execution: slice scheduler + batched interconnect.
//!
//! The serial [`crate::engine::ExecEngine`] *simulates* the cluster of
//! §2.1 inside one thread: streams carry one slot per segment and
//! motions shuffle rows between slots. This module realizes the same
//! model with actual concurrency, the way GPDB runs Orca's plans:
//!
//! * [`slice`] cuts a physical plan at every Motion into a DAG of
//!   **slices**; each slice is instantiated once per segment (a *gang*),
//!   and each instance runs the unmodified serial interpreter in
//!   single-segment mode (see [`crate::exec::ExecCtx`]).
//! * [`interconnect`] moves **columnar batches** between gangs over
//!   bounded channels — Gather, GatherMerge (true streaming k-way merge
//!   at the receiver), Redistribute (hash fan-out into per-destination
//!   column builders), Broadcast — with bounded capacity providing
//!   backpressure, EOS markers ending streams, and a shared
//!   [`interconnect::BatchPool`] recycling consumed batch shells.
//! * [`spool`] materializes cross-slice CTE producers exactly once per
//!   segment into a shared rendezvous (hoisted by [`slice`] into spool
//!   slices), so consumer gangs read concurrently instead of the plan
//!   falling back to serial execution.
//! * [`driver`] schedules the slice×segment tasks on a worker pool,
//!   propagates errors/cancellation/deadlines through a shared
//!   [`orca_gpos::AbortSignal`], and assembles the final result.
//! * [`metrics`] reports per-slice wall times, per-motion rows/bytes,
//!   and peak channel occupancy.
//!
//! Correctness bar: for any plan the serial engine can run, the parallel
//! engine returns a **byte-identical** result set at every worker count.
//! Receivers drain senders in segment order and merge ties toward the
//! lowest sender, exactly reproducing the serial engine's deterministic
//! stream order.

pub mod driver;
pub mod interconnect;
pub mod metrics;
pub mod slice;
pub mod spool;

pub use driver::{ParallelConfig, ParallelEngine, ParallelResult};
pub use interconnect::BatchPool;
pub use metrics::{MotionMetrics, ParallelStats, SliceMetrics};
pub use spool::{SharedSpool, SpoolPayload};
