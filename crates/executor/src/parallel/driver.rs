//! The parallel driver: gang scheduling, cancellation, result assembly.
//!
//! Each slice×segment pair is one **task** with a three-phase lifecycle:
//! receive every input motion's stream, run the serial kernel in
//! single-segment mode, then send the output into the slice's parent
//! motion (the root slice instead parks its stream for final assembly).
//! Tasks get a dedicated thread — threads are cheap at gang scale — but
//! only `workers` of them may be in the compute phase at once (a
//! semaphore bounds CPU parallelism without ever being held across a
//! channel operation, which is what makes the pool deadlock-free even at
//! `workers == 1`: channel traffic always progresses).
//!
//! Failure of any task trips the shared [`AbortSignal`]; every blocked
//! channel wait and kernel operator boundary re-checks it within ~10ms,
//! so the whole gang drains, closes its channels, and joins — no leaked
//! threads, no deadlock. Deadlines ride the same signal.

use crate::columnar::{cexec, ColStream};
use crate::engine::project_output;
use crate::exec::{exec, ExecCtx, ExecStats, StreamSet};
use crate::net::{
    ClusterTopology, EndpointKey, NetConfig, NetMotionCounters, NetNode, NetSender, NetShared,
    RESULT_MOTION,
};
use crate::parallel::interconnect::{
    receive_stream, send_stream, BatchPool, MotionChannels, MotionCounters, Msg, MsgReceiver,
    MsgSender,
};
use crate::parallel::metrics::{MotionMetrics, ParallelStats, SliceMetrics};
use crate::parallel::slice::{slice_plan, Slice, SlicedPlan};
use crate::parallel::spool::{SharedSpool, SpoolPayload};
use crate::storage::{Database, Row};
use crossbeam::channel::bounded;
use orca_common::hash::FnvHashMap;
use orca_common::{ColId, OrcaError, Result};
use orca_expr::physical::PhysicalPlan;
use orca_gpos::AbortSignal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for one [`ParallelEngine`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Max tasks simultaneously in the compute phase (≥ 1).
    pub workers: usize,
    /// Rows per interconnect batch.
    pub batch_rows: usize,
    /// Bounded channel capacity in *batches* — the backpressure window.
    pub channel_capacity: usize,
    /// Overall execution deadline, enforced via the abort signal.
    pub deadline: Option<Duration>,
    /// Run slice kernels through the vectorized batch engine
    /// ([`crate::columnar`]) instead of the row interpreter. Results are
    /// byte-identical either way; `false` keeps the row kernel as the
    /// differential-test oracle.
    pub columnar: bool,
    /// Socket-transport tunables, used only by distributed runs.
    pub net: NetConfig,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            batch_rows: 256,
            channel_capacity: 4,
            deadline: None,
            columnar: true,
            net: NetConfig::default(),
        }
    }
}

/// Result of one parallel execution.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Final rows, projected to the requested output columns —
    /// byte-identical to [`ExecEngine::run`] on the same plan.
    pub rows: Vec<Row>,
    /// Kernel counters summed across all slice instances, plus the
    /// interconnect's measured wire bytes.
    pub stats: ExecStats,
    pub parallel: ParallelStats,
}

/// Executes sliced physical plans on a gang-per-slice worker pool.
pub struct ParallelEngine<'a> {
    pub db: &'a Database,
    pub cfg: ParallelConfig,
    /// Cross-query fragment cache attached to every columnar slice
    /// kernel ([`crate::sharing`]).
    pub fragments: Option<Arc<crate::sharing::FragmentCache>>,
    /// Per-query memory grant shared by every slice kernel
    /// ([`crate::memory`]); `None` = ungoverned.
    pub mem: Option<Arc<crate::memory::MemoryTracker>>,
}

impl<'a> ParallelEngine<'a> {
    pub fn new(db: &'a Database) -> ParallelEngine<'a> {
        ParallelEngine {
            db,
            cfg: ParallelConfig::default(),
            fragments: None,
            mem: None,
        }
    }

    pub fn with_config(db: &'a Database, cfg: ParallelConfig) -> ParallelEngine<'a> {
        ParallelEngine {
            db,
            cfg,
            fragments: None,
            mem: None,
        }
    }

    /// Attach a shared fragment cache; columnar slice kernels probe and
    /// publish scan fragments through it.
    pub fn with_fragments(
        mut self,
        fragments: Arc<crate::sharing::FragmentCache>,
    ) -> ParallelEngine<'a> {
        self.fragments = Some(fragments);
        self
    }

    /// Attach a per-query memory grant; every slice kernel charges its
    /// operator state against the same tracker.
    pub fn with_memory(mut self, mem: Arc<crate::memory::MemoryTracker>) -> ParallelEngine<'a> {
        self.mem = Some(mem);
        self
    }

    /// Run a plan and project its output to `output_cols` (in order).
    pub fn run(&self, plan: &PhysicalPlan, output_cols: &[ColId]) -> Result<ParallelResult> {
        self.run_with_abort(plan, output_cols, &Arc::new(AbortSignal::new()))
    }

    /// Run under an external cancellation token (e.g. a session abort).
    /// A configured deadline is installed on — and cleared from — the
    /// provided signal.
    pub fn run_with_abort(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        abort: &Arc<AbortSignal>,
    ) -> Result<ParallelResult> {
        let t0 = Instant::now();
        if let Some(d) = self.cfg.deadline {
            abort.set_deadline(Instant::now() + d);
        }
        let mut result = self.run_inner(plan, output_cols, abort, None);
        if self.cfg.deadline.is_some() {
            abort.clear_deadline();
        }
        if let Ok(r) = result.as_mut() {
            r.parallel.wall_seconds = t0.elapsed().as_secs_f64();
        }
        result
    }

    /// Run one instance of a distributed gang: every peer named by the
    /// topology calls this with the *same* plan, output columns, and
    /// `query_id`; segments owned by other peers are reached over the
    /// socket interconnect. The coordinator (peer 0) returns the
    /// assembled rows; workers return an empty row set but full local
    /// statistics. A degenerate (single-peer) topology takes the
    /// all-in-process fast path and opens no sockets.
    pub fn run_distributed(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        node: &NetNode,
        topo: &ClusterTopology,
        query_id: u64,
    ) -> Result<ParallelResult> {
        self.run_distributed_with_abort(
            plan,
            output_cols,
            node,
            topo,
            query_id,
            &Arc::new(AbortSignal::new()),
        )
    }

    /// [`ParallelEngine::run_distributed`] under an external
    /// cancellation token.
    #[allow(clippy::too_many_arguments)]
    pub fn run_distributed_with_abort(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        node: &NetNode,
        topo: &ClusterTopology,
        query_id: u64,
        abort: &Arc<AbortSignal>,
    ) -> Result<ParallelResult> {
        if topo.segment_peer.len() != self.db.cluster.num_segments {
            return Err(OrcaError::Execution(format!(
                "topology maps {} segments, cluster has {}",
                topo.segment_peer.len(),
                self.db.cluster.num_segments
            )));
        }
        if !topo.is_distributed() {
            return self.run_with_abort(plan, output_cols, abort);
        }
        let t0 = Instant::now();
        if let Some(d) = self.cfg.deadline {
            abort.set_deadline(Instant::now() + d);
        }
        let dist = DistRun {
            node,
            topo,
            query_id,
            net_cfg: self.cfg.net.clone(),
        };
        let mut result = self.run_inner(plan, output_cols, abort, Some(&dist));
        if self.cfg.deadline.is_some() {
            abort.clear_deadline();
        }
        // A local failure is broadcast to every peer connection of this
        // query so remote gangs drain promptly instead of waiting out
        // their deadlines; either way this query's network state is torn
        // down before returning.
        if let Err(e) = &result {
            node.server.abort_query(query_id, e);
        }
        node.server.end_query(query_id);
        if let Ok(r) = result.as_mut() {
            r.parallel.wall_seconds = t0.elapsed().as_secs_f64();
        }
        result
    }

    fn run_inner(
        &self,
        plan: &PhysicalPlan,
        output_cols: &[ColId],
        abort: &Arc<AbortSignal>,
        dist: Option<&DistRun<'_>>,
    ) -> Result<ParallelResult> {
        abort.check()?;
        // Same preflight rule as `ExecEngine`: when the cluster cannot
        // spill, reject provably-oversized plans before spawning a gang.
        if !self.db.cluster.can_spill {
            let budget = self
                .mem
                .as_ref()
                .map(|m| m.operator_budget(self.db.cluster.work_mem_bytes))
                .unwrap_or(self.db.cluster.work_mem_bytes);
            crate::memory::preflight(plan, self.db, budget)?;
        }
        let sliced = slice_plan(plan);
        let n = self.db.cluster.num_segments;
        let workers = self.cfg.workers.max(1);
        let me = dist.map_or(0, |d| d.node.me);

        // Interconnect state, one channel matrix + counter block per motion.
        let net_shared = Arc::new(NetShared::default());
        let net_counters: Vec<Arc<NetMotionCounters>> = sliced
            .motions
            .iter()
            .map(|_| Arc::new(NetMotionCounters::default()))
            .collect();
        let mut channels: Vec<MotionChannels> = Vec::with_capacity(sliced.motions.len());
        for (m, net_c) in net_counters.iter().enumerate() {
            channels.push(match dist {
                None => MotionChannels::new(n, self.cfg.channel_capacity),
                Some(d) => build_dist_channels(
                    d,
                    m,
                    n,
                    self.cfg.channel_capacity,
                    net_c,
                    &net_shared,
                    abort,
                )?,
            });
        }
        let counters: Vec<MotionCounters> = sliced
            .motions
            .iter()
            .map(|_| MotionCounters::default())
            .collect();

        // The reserved result motion: remote root-slice instances ship
        // their parked streams home; the coordinator registers a
        // receiving endpoint per remote-owned segment.
        let result_counters = Arc::new(NetMotionCounters::default());
        let mut result_txs: Vec<Option<MsgSender>> = (0..n).map(|_| None).collect();
        let mut result_rxs: Vec<Option<MsgReceiver>> = (0..n).map(|_| None).collect();
        if let Some(d) = dist {
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                let owner = d.topo.owner(s);
                let key = EndpointKey {
                    query: d.query_id,
                    motion: RESULT_MOTION,
                    sender: s as u32,
                    receiver: 0,
                };
                if me == 0 && owner != 0 {
                    result_rxs[s] = Some(MsgReceiver::Net(d.node.server.expect(
                        key,
                        Arc::clone(&result_counters),
                        Arc::clone(&net_shared),
                    )));
                } else if me != 0 && owner == me {
                    let tx = NetSender::connect(
                        &d.topo.peers[0],
                        key,
                        self.cfg.channel_capacity,
                        &d.net_cfg,
                        abort,
                        Arc::clone(&result_counters),
                        Arc::clone(&net_shared),
                    )?;
                    tx.register(&d.node.server, d.query_id);
                    result_txs[s] = Some(MsgSender::Net(tx));
                }
            }
        }
        let gate = ComputeGate::new(workers);
        let pool = Arc::new(BatchPool::new());
        // Spooled CTE bytes count against the process-wide budget (if the
        // grant carries one) for the duration of the run.
        let spool = match self.mem.as_ref().and_then(|m| m.budget()) {
            Some(b) => SharedSpool::new().with_budget(b),
            None => SharedSpool::new(),
        };
        let first_err: Mutex<Option<OrcaError>> = Mutex::new(None);
        let merged_stats: Mutex<ExecStats> = Mutex::new(ExecStats::default());
        let root_out: Mutex<Vec<Option<StreamSet>>> = Mutex::new((0..n).map(|_| None).collect());
        // Per-slice timing maxima over gang instances, in nanoseconds.
        let wall_ns: Vec<AtomicU64> = sliced.slices.iter().map(|_| AtomicU64::new(0)).collect();
        let compute_ns: Vec<AtomicU64> = sliced.slices.iter().map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|scope| {
            for slice in &sliced.slices {
                #[allow(clippy::needless_range_loop)]
                for seg in 0..n {
                    if dist.is_some_and(|d| d.topo.owner(seg) != me) {
                        continue;
                    }
                    let txs: Option<Vec<MsgSender>> =
                        slice.output.map(|m| channels[m].tx[seg].take().unwrap());
                    let rxs: Vec<(usize, Vec<MsgReceiver>)> = slice
                        .inputs
                        .iter()
                        .map(|&m| (m, channels[m].rx[seg].take().unwrap()))
                        .collect();
                    let result_tx = if slice.output.is_none() && slice.spool_output.is_none() {
                        result_txs[seg].take()
                    } else {
                        None
                    };
                    let task = TaskCtx {
                        db: self.db,
                        sliced: &sliced,
                        slice,
                        seg,
                        txs,
                        rxs,
                        result_tx,
                        batch_rows: self.cfg.batch_rows,
                        columnar: self.cfg.columnar,
                        abort,
                        gate: &gate,
                        pool: &pool,
                        spool: &spool,
                        frag: &self.fragments,
                        mem: &self.mem,
                        counters: &counters,
                        merged_stats: &merged_stats,
                        root_out: &root_out,
                        wall_ns: &wall_ns,
                        compute_ns: &compute_ns,
                    };
                    let first_err = &first_err;
                    scope.spawn(move || {
                        let abort = Arc::clone(task.abort);
                        if let Err(e) = run_task(task) {
                            abort_once(first_err, &abort, e);
                        }
                    });
                }
            }
        });

        // `scope` joined every task; surface the root cause (a task error,
        // or an external abort/deadline that fired after the last task).
        if let Some(e) = first_err.into_inner().unwrap() {
            return Err(e);
        }
        abort.check()?;

        // Assembly (coordinator only): stitch locally parked streams and
        // remotely shipped result streams back into the full StreamSet.
        // Each instance's clock lands in its segment's `avail` slot, so
        // `sim_seconds` — the max over slots — reproduces the serial
        // engine's bit for bit.
        let mut sim_seconds = 0.0;
        let rows = if me == 0 {
            let streams = root_out.into_inner().unwrap();
            let mut combined = StreamSet::empty(Vec::new(), n);
            for (s, stream) in streams.into_iter().enumerate() {
                let stream = match stream {
                    Some(ss) => ss,
                    None => match &result_rxs[s] {
                        Some(rx) => read_result(rx, abort)?,
                        None => {
                            return Err(OrcaError::Execution(
                                "root slice produced no stream".into(),
                            ))
                        }
                    },
                };
                combined.layout = stream.layout.clone();
                combined.replicated = stream.replicated;
                combined.avail[s] = stream.avail[0];
                combined.per_seg[s] = stream.per_seg.into_iter().next().unwrap_or_default();
            }
            sim_seconds = combined.elapsed();
            project_output(&combined, output_cols)?
        } else {
            Vec::new()
        };

        let mut stats = merged_stats.into_inner().unwrap();
        stats.bytes_moved += counters
            .iter()
            .map(|c| c.bytes.load(Ordering::Relaxed))
            .sum::<u64>();
        let parallel = ParallelStats {
            workers,
            num_slices: sliced.slices.len(),
            serial_fallback: false,
            wall_seconds: 0.0, // stamped by run_with_abort
            sim_seconds,
            net: net_shared.snapshot(),
            batches_reused: pool.reused(),
            cte_spools: sliced.spool_count(),
            spool_rows: spool.rows_published(),
            slices: sliced
                .slices
                .iter()
                .map(|s| SliceMetrics {
                    slice: s.id,
                    wall_seconds: wall_ns[s.id].load(Ordering::Relaxed) as f64 / 1e9,
                    compute_seconds: compute_ns[s.id].load(Ordering::Relaxed) as f64 / 1e9,
                })
                .collect(),
            motions: sliced
                .motions
                .iter()
                .map(|m| MotionMetrics {
                    motion: m.id,
                    kind: format!("{:?}", m.kind),
                    rows: counters[m.id].rows.load(Ordering::Relaxed),
                    bytes: counters[m.id].bytes.load(Ordering::Relaxed),
                    peak_queue_depth: counters[m.id].peak_queue.load(Ordering::Relaxed),
                    net_frames_tx: net_counters[m.id].frames_tx.load(Ordering::Relaxed),
                    net_bytes_tx: net_counters[m.id].bytes_tx.load(Ordering::Relaxed),
                    net_frames_rx: net_counters[m.id].frames_rx.load(Ordering::Relaxed),
                    net_bytes_rx: net_counters[m.id].bytes_rx.load(Ordering::Relaxed),
                })
                .collect(),
        };
        Ok(ParallelResult {
            rows,
            stats,
            parallel,
        })
    }
}

/// Everything one slice×segment task needs, bundled so the spawn closure
/// stays a single move.
struct TaskCtx<'env> {
    db: &'env Database,
    sliced: &'env SlicedPlan,
    slice: &'env Slice,
    seg: usize,
    txs: Option<Vec<MsgSender>>,
    rxs: Vec<(usize, Vec<MsgReceiver>)>,
    /// Root-slice instances on worker peers ship their parked stream to
    /// the coordinator through this instead of `root_out`.
    result_tx: Option<MsgSender>,
    batch_rows: usize,
    columnar: bool,
    abort: &'env Arc<AbortSignal>,
    gate: &'env ComputeGate,
    pool: &'env Arc<BatchPool>,
    spool: &'env SharedSpool,
    frag: &'env Option<Arc<crate::sharing::FragmentCache>>,
    mem: &'env Option<Arc<crate::memory::MemoryTracker>>,
    counters: &'env [MotionCounters],
    merged_stats: &'env Mutex<ExecStats>,
    root_out: &'env Mutex<Vec<Option<StreamSet>>>,
    wall_ns: &'env [AtomicU64],
    compute_ns: &'env [AtomicU64],
}

/// A task's kernel output, in whichever form the configured kernel
/// produced it (conversion is deferred to the shipping/parking site).
enum TaskOut {
    Col(ColStream),
    Rows(StreamSet),
    /// A spool slice's materialized CTE, extracted from the kernel's
    /// stash (the slice's nominal output stream is discarded, exactly as
    /// `Sequence` discards its producer child's output).
    Spool(SpoolPayload),
}

fn run_task(task: TaskCtx<'_>) -> Result<()> {
    let t_start = Instant::now();
    // Phase 1 — receive every input motion and every spooled CTE (no
    // compute slot held; a blocked receive must not starve the senders
    // or producers feeding it).
    let mut delivered: FnvHashMap<usize, ColStream> = FnvHashMap::default();
    for (m, rxs) in &task.rxs {
        let kind = &task.sliced.motions[*m].kind;
        delivered.insert(
            *m,
            receive_stream(
                kind,
                rxs,
                task.seg,
                &task.db.cluster,
                task.abort,
                task.pool,
                task.batch_rows,
            )?,
        );
    }
    let mut spooled: Vec<(orca_common::CteId, Arc<SpoolPayload>)> = Vec::new();
    for &id in &task.slice.spool_inputs {
        spooled.push((id, task.spool.wait(id, task.seg, task.abort)?));
    }
    // Phase 2 — the kernel, under the compute gate. Spooled CTEs are
    // seeded into the kernel's stash so its CteScan arm finds exactly
    // the stream the serial engine would have materialized.
    task.gate.acquire(task.abort)?;
    let t_compute = Instant::now();
    let (out, stats) = if task.columnar {
        let mut ctx =
            ExecCtx::for_segment_columnar(task.db, task.seg, delivered, task.abort.clone());
        if let Some(m) = task.mem {
            ctx.mem = Arc::clone(m);
        }
        ctx.frag = task.frag.clone();
        // Scans draw their batch shells from the run-wide pool, so
        // shells recycled by the interconnect feed the kernel too.
        ctx.pool = Some(Arc::clone(task.pool));
        for (id, p) in &spooled {
            ctx.cte_col.insert(*id, p.to_colstream());
        }
        let out = cexec(&task.slice.root, &mut ctx).and_then(|cs| match task.slice.spool_output {
            None => Ok(TaskOut::Col(cs)),
            Some(id) => {
                let stash = ctx.cte_col.remove(&id).ok_or_else(|| {
                    OrcaError::Execution(format!("spool slice did not materialize {id}"))
                })?;
                Ok(TaskOut::Spool(SpoolPayload::from_colstream(stash)))
            }
        });
        (out, ctx.stats)
    } else {
        let rows_in: FnvHashMap<usize, StreamSet> = delivered
            .into_iter()
            .map(|(m, cs)| (m, cs.to_streamset()))
            .collect();
        let mut ctx = ExecCtx::for_segment(task.db, task.seg, rows_in, task.abort.clone());
        if let Some(m) = task.mem {
            ctx.mem = Arc::clone(m);
        }
        for (id, p) in &spooled {
            ctx.cte.insert(*id, p.to_colstream().to_streamset());
        }
        let out = exec(&task.slice.root, &mut ctx).and_then(|ss| match task.slice.spool_output {
            None => Ok(TaskOut::Rows(ss)),
            Some(id) => {
                let stash = ctx.cte.remove(&id).ok_or_else(|| {
                    OrcaError::Execution(format!("spool slice did not materialize {id}"))
                })?;
                Ok(TaskOut::Spool(SpoolPayload::from_colstream(
                    ColStream::from_streamset(&stash, task.batch_rows),
                )))
            }
        });
        (out, ctx.stats)
    };
    let compute = t_compute.elapsed().as_nanos() as u64;
    task.gate.release();
    merge_stats(&mut task.merged_stats.lock().unwrap(), &stats);
    let out = out?;
    // Phase 3 — publish (spool slices), ship (sender slices), or park
    // (the root slice).
    match out {
        TaskOut::Spool(payload) => {
            // spool_output is Some by construction of TaskOut::Spool.
            let id = task.slice.spool_output.unwrap();
            task.spool.publish(id, task.seg, payload);
        }
        out => match (&task.txs, task.slice.output) {
            (Some(txs), Some(m)) => {
                let kind = &task.sliced.motions[m].kind;
                let cs = match out {
                    TaskOut::Col(cs) => cs,
                    TaskOut::Rows(ss) => ColStream::from_streamset(&ss, task.batch_rows),
                    TaskOut::Spool(_) => unreachable!(),
                };
                send_stream(
                    kind,
                    cs,
                    task.seg,
                    txs,
                    task.batch_rows,
                    task.abort,
                    &task.counters[m],
                    task.pool,
                    task.sliced.motions[m].key_pos.as_deref(),
                )?;
            }
            _ => match &task.result_tx {
                // A root instance on a worker peer: ship the finished
                // stream home over the reserved result motion.
                Some(tx) => {
                    let cs = match out {
                        TaskOut::Col(cs) => cs,
                        TaskOut::Rows(ss) => ColStream::from_streamset(&ss, task.batch_rows),
                        TaskOut::Spool(_) => unreachable!(),
                    };
                    ship_result(tx, cs, task.abort)?;
                }
                None => {
                    let ss = match out {
                        TaskOut::Col(cs) => cs.to_streamset(),
                        TaskOut::Rows(ss) => ss,
                        TaskOut::Spool(_) => unreachable!(),
                    };
                    task.root_out.lock().unwrap()[task.seg] = Some(ss);
                }
            },
        },
    }
    task.compute_ns[task.slice.id].fetch_max(compute, Ordering::Relaxed);
    task.wall_ns[task.slice.id].fetch_max(t_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    Ok(())
}

/// How a distributed run plugs into the cluster: this peer's server and
/// identity, the static topology, and the query id that names this
/// run's edges on the wire.
struct DistRun<'a> {
    node: &'a NetNode,
    topo: &'a ClusterTopology,
    query_id: u64,
    net_cfg: NetConfig,
}

/// Build one motion's channel matrix for a distributed run: in-process
/// bounded channels for peer-local edges, TCP endpoints for edges whose
/// two instances live on different peers. Rows belonging to instances
/// hosted elsewhere stay `None` (their tasks are not spawned here).
#[allow(clippy::needless_range_loop)]
fn build_dist_channels(
    d: &DistRun<'_>,
    motion: usize,
    n: usize,
    capacity: usize,
    counters: &Arc<NetMotionCounters>,
    shared: &Arc<NetShared>,
    abort: &AbortSignal,
) -> Result<MotionChannels> {
    let me = d.node.me;
    let key = |s: usize, r: usize| EndpointKey {
        query: d.query_id,
        motion: motion as u32,
        sender: s as u32,
        receiver: r as u32,
    };
    let mut tx: Vec<Option<Vec<MsgSender>>> = (0..n).map(|_| None).collect();
    let mut rx: Vec<Option<Vec<MsgReceiver>>> = (0..n).map(|_| None).collect();
    // Local↔local edges share one bounded channel; stage the sender
    // halves so tx rows can be assembled in receiver order afterwards.
    let mut staged: Vec<Vec<Option<MsgSender>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    // Receiver rows first: inbound remote edges must be registered with
    // the local server before peers' handshakes can complete.
    for r in (0..n).filter(|&r| d.topo.owner(r) == me) {
        let mut row = Vec::with_capacity(n);
        for s in 0..n {
            if d.topo.owner(s) == me {
                let (a, b) = bounded(capacity);
                staged[s][r] = Some(MsgSender::Local(a));
                row.push(MsgReceiver::Local(b));
            } else {
                row.push(MsgReceiver::Net(d.node.server.expect(
                    key(s, r),
                    Arc::clone(counters),
                    Arc::clone(shared),
                )));
            }
        }
        rx[r] = Some(row);
    }
    // Sender rows: local halves staged above; remote edges dial out.
    for s in (0..n).filter(|&s| d.topo.owner(s) == me) {
        let mut row = Vec::with_capacity(n);
        for r in 0..n {
            match staged[s][r].take() {
                Some(local) => row.push(local),
                None => {
                    let peer = &d.topo.peers[d.topo.owner(r)];
                    let sender = NetSender::connect(
                        peer,
                        key(s, r),
                        capacity,
                        &d.net_cfg,
                        abort,
                        Arc::clone(counters),
                        Arc::clone(shared),
                    )?;
                    sender.register(&d.node.server, d.query_id);
                    row.push(MsgSender::Net(sender));
                }
            }
        }
        tx[s] = Some(row);
    }
    Ok(MotionChannels { tx, rx })
}

/// Ship a remote root-slice instance's parked stream to the coordinator
/// over the reserved result motion: a raw transfer — no motion-cost
/// replay — whose `Open` carries the stream clock for final assembly.
fn ship_result(tx: &MsgSender, cs: ColStream, abort: &AbortSignal) -> Result<()> {
    tx.send(
        Msg::Open {
            layout: cs.layout.clone(),
            avail: cs.avail[0],
            bytes: cs.bytes(),
            replicated: cs.replicated,
        },
        abort,
    )?;
    for b in cs.per_seg.into_iter().next().unwrap_or_default() {
        if !b.is_empty() {
            tx.send(Msg::Batch(b), abort)?;
        }
    }
    tx.send(Msg::Eos, abort)
}

/// Coordinator-side counterpart of [`ship_result`]: rebuild the remote
/// instance's single-slot stream, clock included.
fn read_result(rx: &MsgReceiver, abort: &AbortSignal) -> Result<StreamSet> {
    let (layout, avail, replicated) = match rx.recv(abort)? {
        Msg::Open {
            layout,
            avail,
            replicated,
            ..
        } => (layout, avail, replicated),
        _ => {
            return Err(OrcaError::Net(
                "result stream did not start with Open".into(),
            ))
        }
    };
    let mut ss = StreamSet::empty(layout, 1);
    ss.avail[0] = avail;
    ss.replicated = replicated;
    loop {
        match rx.recv(abort)? {
            Msg::Batch(b) => b.to_rows(&mut ss.per_seg[0]),
            Msg::Eos => break,
            Msg::Open { .. } => {
                return Err(OrcaError::Net("duplicate Open on result stream".into()))
            }
        }
    }
    Ok(ss)
}

fn merge_stats(into: &mut ExecStats, from: &ExecStats) {
    into.rows_processed += from.rows_processed;
    into.bytes_moved += from.bytes_moved;
    into.spills += from.spills;
    into.oom_risk_bytes = into.oom_risk_bytes.max(from.oom_risk_bytes);
    into.spill_partitions += from.spill_partitions;
    into.spill_bytes_written += from.spill_bytes_written;
    into.spill_bytes_read += from.spill_bytes_read;
    // A max, not a sum: the serial kernel's peak is the max over every
    // operator's state, so max-merging per-task peaks reproduces it.
    into.peak_mem_bytes = into.peak_mem_bytes.max(from.peak_mem_bytes);
    into.chunks_skipped += from.chunks_skipped;
    into.dict_hits += from.dict_hits;
    into.scan_bytes_cloned += from.scan_bytes_cloned;
    for (name, p) in &from.ops {
        let e = into.ops.entry(name).or_default();
        e.rows += p.rows;
        e.batches += p.batches;
        e.ns += p.ns;
    }
}

/// Record the first task error and trip the abort so every other task
/// drains. Later errors are almost always consequences of the first
/// (disconnects, aborts) and are dropped.
fn abort_once(first_err: &Mutex<Option<OrcaError>>, abort: &AbortSignal, err: OrcaError) {
    {
        let mut slot = first_err.lock().unwrap();
        // An abort-shaped error is a symptom, not a cause: never let it
        // shadow a real error, and prefer a real error over it even if
        // the symptom arrived first.
        let symptom = matches!(err, OrcaError::Aborted(_));
        match &*slot {
            None => *slot = Some(err.clone()),
            Some(OrcaError::Aborted(_)) if !symptom => *slot = Some(err.clone()),
            _ => {}
        }
    }
    abort.abort_with(err);
}

/// Bounds the number of tasks in the compute phase. Plain
/// mutex+condvar (the hot path is per-task, not per-row), with a short
/// wait timeout so an abort is observed promptly.
struct ComputeGate {
    slots: Mutex<usize>,
    ready: Condvar,
}

impl ComputeGate {
    fn new(workers: usize) -> ComputeGate {
        ComputeGate {
            slots: Mutex::new(workers.max(1)),
            ready: Condvar::new(),
        }
    }

    fn acquire(&self, abort: &AbortSignal) -> Result<()> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            abort.check()?;
            if *slots > 0 {
                *slots -= 1;
                return Ok(());
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slots, Duration::from_millis(10))
                .unwrap();
            slots = guard;
        }
    }

    fn release(&self) {
        *self.slots.lock().unwrap() += 1;
        self.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecEngine;
    use crate::storage::Row;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{ColId, DataType, Datum, MdId, SysId};
    use orca_expr::logical::{AggStage, JoinKind, TableRef};
    use orca_expr::physical::{MotionKind, PhysicalOp};
    use orca_expr::props::OrderSpec;
    use orca_expr::scalar::{AggFunc, ScalarExpr};

    fn db() -> (Database, TableRef, TableRef, TableRef) {
        let mut db = Database::new(orca_common::SegmentConfig::default().with_segments(4));
        let t1 = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 1, 1),
            "t1",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let t2 = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 2, 1),
            "t2",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Hashed(vec![0]),
        ));
        let tr = std::sync::Arc::new(TableDesc::new(
            MdId::new(SysId::Gpdb, 3, 1),
            "tr",
            vec![
                ColumnMeta::new("a", DataType::Int),
                ColumnMeta::new("b", DataType::Int),
            ],
            Distribution::Replicated,
        ));
        let rows1: Vec<Row> = (0..100)
            .map(|i| vec![Datum::Int(i % 20), Datum::Int(i)])
            .collect();
        let rows2: Vec<Row> = (0..40)
            .map(|i| vec![Datum::Int(i), Datum::Int(i % 20)])
            .collect();
        let rowsr: Vec<Row> = (0..10)
            .map(|i| vec![Datum::Int(i), Datum::Int(100 + i)])
            .collect();
        db.load_table(t1.clone(), rows1).unwrap();
        db.load_table(t2.clone(), rows2).unwrap();
        db.load_table(tr.clone(), rowsr).unwrap();
        (db, TableRef(t1), TableRef(t2), TableRef(tr))
    }

    fn scan(t: &TableRef, first: u32) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: t.clone(),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    fn motion(kind: MotionKind, child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::new(PhysicalOp::Motion { kind }, vec![child])
    }

    /// Assert the parallel engine matches the serial engine byte for byte
    /// at several worker counts — through both the row and the columnar
    /// kernel — and return the last parallel result. The simulated
    /// cluster clock must match bit for bit too: the interconnect
    /// replays the serial motion-cost formulas from the wire headers.
    fn assert_identical(db: &Database, plan: &PhysicalPlan, out_cols: &[ColId]) -> ParallelResult {
        let serial = ExecEngine::new(db).run(plan, out_cols).unwrap();
        let mut last = None;
        for columnar in [false, true] {
            for workers in [1, 2, 4] {
                let cfg = ParallelConfig {
                    workers,
                    batch_rows: 7, // deliberately odd, exercises batching
                    channel_capacity: 2,
                    deadline: None,
                    columnar,
                    net: NetConfig::default(),
                };
                let par = ParallelEngine::with_config(db, cfg)
                    .run(plan, out_cols)
                    .unwrap();
                assert_eq!(
                    par.rows, serial.rows,
                    "workers={workers} columnar={columnar} diverged"
                );
                assert_eq!(
                    par.parallel.sim_seconds.to_bits(),
                    serial.sim_seconds.to_bits(),
                    "workers={workers} columnar={columnar} sim clock diverged: \
                     parallel {} vs serial {}",
                    par.parallel.sim_seconds,
                    serial.sim_seconds,
                );
                assert_eq!(par.parallel.net, crate::net::NetStats::default());
                last = Some(par);
            }
        }
        last.unwrap()
    }

    /// Run the same plan as a real loopback-TCP cluster: each peer is a
    /// thread with its own rendezvous server, sharing the database the
    /// way separate processes would share identically-loaded storage.
    /// Returns every peer's result, coordinator first.
    fn run_loopback(
        db: &Database,
        plan: &PhysicalPlan,
        out_cols: &[ColId],
        npeers: usize,
        cfg: &ParallelConfig,
        query_id: u64,
    ) -> Vec<Result<ParallelResult>> {
        let n = db.cluster.num_segments;
        let nodes: Vec<NetNode> = (0..npeers)
            .map(|me| NetNode::bind("127.0.0.1:0", me, cfg.net.clone()).unwrap())
            .collect();
        let peers: Vec<String> = nodes.iter().map(|nd| nd.addr().to_string()).collect();
        let topo = ClusterTopology::round_robin(peers, n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|node| {
                    let topo = &topo;
                    let cfg = cfg.clone();
                    scope.spawn(move || {
                        ParallelEngine::with_config(db, cfg)
                            .run_distributed(plan, out_cols, node, topo, query_id)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// The distributed gang over loopback TCP produces byte-identical
    /// rows and a bit-equal simulated clock vs the in-process
    /// interconnect — across peer counts, worker counts, and kernels —
    /// with zero connect retries on a healthy cluster.
    #[test]
    fn loopback_tcp_matches_in_process() {
        let (db, t1, t2, _) = db();
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                motion(MotionKind::Redistribute(vec![ColId(3)]), scan(&t2, 2)),
            ],
        );
        let plan = motion(
            MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
            PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: OrderSpec::by(&[ColId(0)]),
                },
                vec![join],
            ),
        );
        let out_cols = [ColId(0), ColId(2)];
        let serial = ExecEngine::new(&db).run(&plan, &out_cols).unwrap();
        let mut query_id = 100;
        for columnar in [false, true] {
            for workers in [1, 2, 4] {
                for npeers in [2, 3] {
                    let cfg = ParallelConfig {
                        workers,
                        batch_rows: 7,
                        channel_capacity: 2,
                        columnar,
                        ..ParallelConfig::default()
                    };
                    let inproc = ParallelEngine::with_config(&db, cfg.clone())
                        .run(&plan, &out_cols)
                        .unwrap();
                    query_id += 1;
                    let mut results = run_loopback(&db, &plan, &out_cols, npeers, &cfg, query_id);
                    let tag = format!("workers={workers} columnar={columnar} peers={npeers}");
                    for r in &results[1..] {
                        let r = r.as_ref().expect("worker peer failed");
                        assert!(r.rows.is_empty(), "{tag}: worker returned rows");
                    }
                    let coord = results.remove(0).expect("coordinator failed");
                    assert_eq!(coord.rows, serial.rows, "{tag}: rows diverged");
                    assert_eq!(coord.rows, inproc.rows, "{tag}: net vs in-process rows");
                    assert_eq!(
                        coord.parallel.sim_seconds.to_bits(),
                        inproc.parallel.sim_seconds.to_bits(),
                        "{tag}: sim clock diverged over TCP"
                    );
                    assert!(!coord.parallel.serial_fallback, "{tag}: serial fallback");
                    assert_eq!(coord.parallel.net.reconnects, 0, "{tag}: reconnects");
                    assert!(
                        coord.parallel.net.remote_edges > 0,
                        "{tag}: no remote edges on a {npeers}-peer topology"
                    );
                    assert!(coord.parallel.net.frames_tx > 0, "{tag}: no frames sent");
                    assert!(
                        coord.parallel.net.open_rtt_max_seconds > 0.0,
                        "{tag}: open RTT not measured"
                    );
                }
            }
        }
    }

    /// Broadcast + replicated inputs keep their accounting across the
    /// wire (the `distinct_bytes` replay divides the summed copies).
    #[test]
    fn loopback_tcp_broadcast_and_replicated_match() {
        let (db, t1, t2, tr) = db();
        let plans = [
            (
                motion(
                    MotionKind::Gather,
                    PhysicalPlan::new(
                        PhysicalOp::HashJoin {
                            kind: JoinKind::LeftOuter,
                            left_keys: vec![ColId(0)],
                            right_keys: vec![ColId(3)],
                            residual: None,
                        },
                        vec![scan(&t1, 0), motion(MotionKind::Broadcast, scan(&t2, 2))],
                    ),
                ),
                vec![ColId(0), ColId(1), ColId(2)],
            ),
            (
                motion(MotionKind::Gather, scan(&tr, 0)),
                vec![ColId(0), ColId(1)],
            ),
        ];
        for (i, (plan, out_cols)) in plans.iter().enumerate() {
            let serial = ExecEngine::new(&db).run(plan, out_cols).unwrap();
            let cfg = ParallelConfig {
                workers: 2,
                batch_rows: 7,
                channel_capacity: 2,
                ..ParallelConfig::default()
            };
            let inproc = ParallelEngine::with_config(&db, cfg.clone())
                .run(plan, out_cols)
                .unwrap();
            let mut results = run_loopback(&db, plan, out_cols, 2, &cfg, 200 + i as u64);
            let coord = results.remove(0).expect("coordinator failed");
            results
                .into_iter()
                .for_each(|r| drop(r.expect("worker failed")));
            assert_eq!(coord.rows, serial.rows, "plan {i}: rows diverged");
            assert_eq!(
                coord.parallel.sim_seconds.to_bits(),
                inproc.parallel.sim_seconds.to_bits(),
                "plan {i}: sim clock diverged over TCP"
            );
        }
    }

    /// A deadline expiring mid-distributed-run surfaces as a typed
    /// timeout on the coordinator and never hangs; the abort broadcast
    /// drains the worker peers promptly too.
    #[test]
    fn loopback_tcp_deadline_expiry_is_live() {
        let (db, t1, t2, _) = db();
        let plan = motion(
            MotionKind::Gather,
            PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind: JoinKind::Inner,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(3)],
                    residual: None,
                },
                vec![scan(&t1, 0), motion(MotionKind::Broadcast, scan(&t2, 2))],
            ),
        );
        let cfg = ParallelConfig {
            workers: 1,
            batch_rows: 1,
            channel_capacity: 1,
            // Already expired when the gang starts: the run must still
            // tear down promptly rather than hang on a socket.
            deadline: Some(Duration::ZERO),
            ..ParallelConfig::default()
        };
        let results = run_loopback(&db, &plan, &[ColId(0)], 2, &cfg, 300);
        // Every peer must come back (no hang); the coordinator reports
        // the deadline. Workers race the broadcast abort and may
        // land on either side of their own deadline.
        let coord_err = results
            .into_iter()
            .next()
            .unwrap()
            .expect_err("deadline did not fire");
        assert_eq!(coord_err.kind(), "timeout");
    }

    /// A peer that never joins the gang (its server is up, but it never
    /// registers endpoints or connects) surfaces as a typed Net error
    /// within the transport's handshake budget — never a hang.
    #[test]
    fn loopback_tcp_dead_peer_is_a_net_error() {
        let (db, t1, _, _) = db();
        let plan = motion(MotionKind::Gather, scan(&t1, 0));
        let n = db.cluster.num_segments;
        let net = NetConfig {
            connect_timeout: Duration::from_millis(300),
            handshake_timeout: Duration::from_millis(300),
        };
        let coord = NetNode::bind("127.0.0.1:0", 0, net.clone()).unwrap();
        // The "dead" peer: bound and accepting, but it never runs the
        // query, so handshakes are never acknowledged.
        let ghost = NetNode::bind("127.0.0.1:0", 1, net.clone()).unwrap();
        let topo = ClusterTopology::round_robin(
            vec![coord.addr().to_string(), ghost.addr().to_string()],
            n,
        );
        let cfg = ParallelConfig {
            workers: 2,
            net,
            ..ParallelConfig::default()
        };
        let err = ParallelEngine::with_config(&db, cfg)
            .run_distributed(&plan, &[ColId(0), ColId(1)], &coord, &topo, 400)
            .unwrap_err();
        assert_eq!(err.kind(), "net", "expected typed Net error, got: {err}");
    }

    /// The paper's Figure 6 shape: join with a redistribute under one
    /// side, sorted, gather-merged to the master.
    #[test]
    fn figure6_plan_identical_to_serial() {
        let (db, t1, t2, _) = db();
        let join = PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                motion(MotionKind::Redistribute(vec![ColId(3)]), scan(&t2, 2)),
            ],
        );
        let plan = motion(
            MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
            PhysicalPlan::new(
                PhysicalOp::Sort {
                    order: OrderSpec::by(&[ColId(0)]),
                },
                vec![join],
            ),
        );
        let par = assert_identical(&db, &plan, &[ColId(0), ColId(2)]);
        assert_eq!(par.parallel.num_slices, 3);
        assert!(!par.parallel.serial_fallback);
        assert!(par.parallel.motion_rows() > 0);
        assert!(par.parallel.motion_bytes() > 0);
        assert_eq!(par.parallel.slices.len(), 3);
        assert!(par.parallel.slices.iter().all(|s| s.wall_seconds > 0.0));
        // The per-operator profile survives the cross-gang stats merge.
        assert!(par.stats.ops.contains_key("HashJoin"));
        assert!(par.stats.ops["HashJoin"].rows > 0);
    }

    #[test]
    fn broadcast_join_identical_to_serial() {
        let (db, t1, t2, _) = db();
        let plan = motion(
            MotionKind::Gather,
            PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind: JoinKind::LeftOuter,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(3)],
                    residual: None,
                },
                vec![scan(&t1, 0), motion(MotionKind::Broadcast, scan(&t2, 2))],
            ),
        );
        assert_identical(&db, &plan, &[ColId(0), ColId(1), ColId(2)]);
    }

    /// Replicated base table under a gather: exactly one copy survives.
    #[test]
    fn replicated_scan_identical_to_serial() {
        let (db, _, _, tr) = db();
        let plan = motion(MotionKind::Gather, scan(&tr, 0));
        let par = assert_identical(&db, &plan, &[ColId(0), ColId(1)]);
        assert_eq!(par.rows.len(), 10);
    }

    /// Two-stage aggregation across two redistributions.
    #[test]
    fn split_agg_identical_to_serial() {
        let (db, t1, _, _) = db();
        let agg = |stage: AggStage, in_col: ColId, out_col: ColId, child: PhysicalPlan| {
            PhysicalPlan::new(
                PhysicalOp::HashAgg {
                    group_cols: vec![ColId(0)],
                    aggs: vec![(
                        out_col,
                        ScalarExpr::Agg {
                            func: AggFunc::Sum,
                            arg: Some(Box::new(ScalarExpr::ColRef(in_col))),
                            distinct: false,
                        },
                    )],
                    stage,
                },
                vec![child],
            )
        };
        let local = agg(
            AggStage::Local,
            ColId(1),
            ColId(11),
            motion(MotionKind::Redistribute(vec![ColId(1)]), scan(&t1, 0)),
        );
        let global = agg(
            AggStage::Global,
            ColId(11),
            ColId(10),
            motion(MotionKind::Redistribute(vec![ColId(0)]), local),
        );
        let plan = motion(MotionKind::Gather, global);
        let par = assert_identical(&db, &plan, &[ColId(0), ColId(10)]);
        assert_eq!(par.parallel.num_slices, 4);
        // The mid-plan slice receives one redistribute and sends another
        // on the same thread, so its phase-3 builder takes are ordered
        // after its phase-1 shell returns: reuse is guaranteed.
        assert!(par.parallel.batches_reused > 0);
    }

    /// A plan with no motions still runs (single-slice gang).
    #[test]
    fn motionless_plan_identical_to_serial() {
        let (db, t1, _, _) = db();
        let plan = scan(&t1, 0);
        let par = assert_identical(&db, &plan, &[ColId(0), ColId(1)]);
        assert_eq!(par.parallel.num_slices, 1);
        assert!(par.parallel.motions.is_empty());
    }

    /// Cross-slice CTE runs through the shared spool — no serial
    /// fallback, byte-identical rows at every worker count and kernel.
    #[test]
    fn cross_slice_cte_runs_through_the_spool() {
        let (db, t1, _, _) = db();
        let cte = orca_common::CteId(1);
        let producer = PhysicalPlan::new(
            PhysicalOp::CteProducer {
                id: cte,
                cols: vec![ColId(0), ColId(1)],
            },
            vec![scan(&t1, 0)],
        );
        let consumer = PhysicalPlan::leaf(PhysicalOp::CteScan {
            id: cte,
            cols: vec![ColId(20), ColId(21)],
            producer_cols: vec![ColId(0), ColId(1)],
        });
        // Motion between producer and consumer → producer is hoisted
        // into a spool slice and materialized exactly once per segment.
        let plan = motion(
            MotionKind::Gather,
            PhysicalPlan::new(
                PhysicalOp::Sequence { id: cte },
                vec![
                    producer,
                    motion(MotionKind::Redistribute(vec![ColId(21)]), consumer),
                ],
            ),
        );
        let par = assert_identical(&db, &plan, &[ColId(20)]);
        assert!(!par.parallel.serial_fallback);
        assert_eq!(par.parallel.cte_spools, 1);
        // 100 rows in t1 → one spool copy per storage segment, total 100.
        assert_eq!(par.parallel.spool_rows, 100);
    }

    /// A mid-query abort drains the gang: the run errors out promptly,
    /// every thread joins (scope guarantees it), nothing deadlocks even
    /// with a tiny interconnect window.
    #[test]
    fn abort_mid_query_drains_without_deadlock() {
        let (db, t1, t2, _) = db();
        let plan = motion(
            MotionKind::Gather,
            PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind: JoinKind::Inner,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(3)],
                    residual: None,
                },
                vec![scan(&t1, 0), motion(MotionKind::Broadcast, scan(&t2, 2))],
            ),
        );
        let cfg = ParallelConfig {
            workers: 2,
            batch_rows: 1,
            channel_capacity: 1,
            deadline: None,
            columnar: true,
            net: NetConfig::default(),
        };
        let engine = ParallelEngine::with_config(&db, cfg);
        let abort = Arc::new(AbortSignal::new());
        abort.abort(); // already cancelled before the gang starts
        let err = engine
            .run_with_abort(&plan, &[ColId(0)], &abort)
            .unwrap_err();
        assert_eq!(err.kind(), "aborted");
    }

    /// An expired deadline surfaces as a timeout error.
    #[test]
    fn deadline_expiry_is_a_timeout() {
        let (db, t1, t2, _) = db();
        let plan = motion(
            MotionKind::Gather,
            PhysicalPlan::new(
                PhysicalOp::HashJoin {
                    kind: JoinKind::Inner,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(3)],
                    residual: None,
                },
                vec![scan(&t1, 0), motion(MotionKind::Broadcast, scan(&t2, 2))],
            ),
        );
        let cfg = ParallelConfig {
            workers: 1,
            batch_rows: 1,
            channel_capacity: 1,
            deadline: Some(Duration::from_nanos(1)),
            columnar: true,
            net: NetConfig::default(),
        };
        let err = ParallelEngine::with_config(&db, cfg)
            .run(&plan, &[ColId(0)])
            .unwrap_err();
        assert_eq!(err.kind(), "timeout");
    }
}
