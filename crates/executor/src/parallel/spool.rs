//! Shared columnar spool for cross-slice CTE materialization.
//!
//! A hoisted producer slice (see [`super::slice`]) runs once per segment
//! and publishes its segment's share of the CTE here; every consumer
//! gang instance waits for the `(cte, segment)` payload it needs before
//! entering its compute phase. Publishing happens after the producer
//! releases its compute slot and waiting happens before the consumer
//! acquires one, so the spool never interacts with the compute gate —
//! the same discipline that keeps the interconnect deadlock-free.
//!
//! Waits poll the [`AbortSignal`] every ~10ms (the repo-wide liveness
//! convention), so a failed or cancelled producer drains its consumers
//! promptly instead of hanging them.

use crate::columnar::{ColStream, ColumnBatch};
use orca_common::{ColId, CteId, Result};
use orca_gpos::AbortSignal;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One segment's share of a materialized CTE: exactly the per-slot state
/// the serial kernel would have stashed for that segment.
#[derive(Debug, Clone)]
pub struct SpoolPayload {
    pub layout: Vec<ColId>,
    pub batches: Vec<ColumnBatch>,
    /// Simulated availability time of this segment's stream.
    pub avail: f64,
    pub replicated: bool,
}

impl SpoolPayload {
    /// Capture the single-slot stream a producer task materialized.
    pub fn from_colstream(cs: ColStream) -> SpoolPayload {
        let avail = cs.avail.first().copied().unwrap_or(0.0);
        SpoolPayload {
            layout: cs.layout,
            batches: cs.per_seg.into_iter().next().unwrap_or_default(),
            avail,
            replicated: cs.replicated,
        }
    }

    /// Rebuild the single-slot stream a consumer kernel expects to find
    /// in its CTE stash.
    pub fn to_colstream(&self) -> ColStream {
        ColStream {
            layout: self.layout.clone(),
            per_seg: vec![self.batches.clone()],
            avail: vec![self.avail],
            replicated: self.replicated,
        }
    }

    pub fn rows(&self) -> u64 {
        self.batches.iter().map(|b| b.len as u64).sum()
    }

    /// Payload size in datum bytes ([`ColumnBatch::bytes`] sums) — what a
    /// process-wide memory budget is charged for holding it.
    pub fn bytes(&self) -> u64 {
        self.batches.iter().map(ColumnBatch::bytes).sum()
    }
}

/// The per-run spool: a rendezvous map from `(cte, segment)` to the
/// published payload. One instance lives for the duration of one
/// parallel run, shared by every task thread.
#[derive(Default)]
pub struct SharedSpool {
    slots: Mutex<HashMap<(CteId, usize), Arc<SpoolPayload>>>,
    ready: Condvar,
    rows: AtomicU64,
    /// Process-wide executor memory budget ([`crate::memory`]); spooled
    /// CTE bytes are charged for the spool's lifetime.
    budget: Option<Arc<crate::memory::MemoryBudget>>,
    charged: AtomicU64,
}

impl SharedSpool {
    pub fn new() -> SharedSpool {
        SharedSpool::default()
    }

    /// Charge published payload bytes against a process-wide budget.
    pub fn with_budget(mut self, budget: Arc<crate::memory::MemoryBudget>) -> SharedSpool {
        self.budget = Some(budget);
        self
    }

    /// Publish one segment's payload and wake every waiter.
    pub fn publish(&self, id: CteId, seg: usize, payload: SpoolPayload) {
        self.rows.fetch_add(payload.rows(), Ordering::Relaxed);
        if let Some(b) = &self.budget {
            let bytes = payload.bytes();
            b.charge(bytes);
            self.charged.fetch_add(bytes, Ordering::Relaxed);
        }
        self.slots
            .lock()
            .unwrap()
            .insert((id, seg), Arc::new(payload));
        self.ready.notify_all();
    }

    /// Block until the producer gang publishes `(id, seg)`.
    pub fn wait(&self, id: CteId, seg: usize, abort: &AbortSignal) -> Result<Arc<SpoolPayload>> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            abort.check()?;
            if let Some(p) = slots.get(&(id, seg)) {
                return Ok(Arc::clone(p));
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slots, Duration::from_millis(10))
                .unwrap();
            slots = guard;
        }
    }

    /// Total rows published so far.
    pub fn rows_published(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

impl Drop for SharedSpool {
    fn drop(&mut self) {
        // The spool lives for one parallel run; return its bytes when the
        // run ends.
        if let Some(b) = &self.budget {
            b.uncharge(self.charged.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_wait_round_trips() {
        let spool = SharedSpool::new();
        let cs = ColStream {
            layout: vec![ColId(3)],
            per_seg: vec![vec![ColumnBatch::from_rows(
                &[
                    vec![orca_common::Datum::Int(1)],
                    vec![orca_common::Datum::Int(2)],
                ],
                1,
            )]],
            avail: vec![1.5],
            replicated: false,
        };
        spool.publish(CteId(4), 2, SpoolPayload::from_colstream(cs));
        let abort = AbortSignal::new();
        let p = spool.wait(CteId(4), 2, &abort).unwrap();
        assert_eq!(p.rows(), 2);
        assert_eq!(p.avail, 1.5);
        assert_eq!(spool.rows_published(), 2);
        let back = p.to_colstream();
        assert_eq!(back.seg_rows(0), 2);
    }

    #[test]
    fn wait_observes_abort() {
        let spool = SharedSpool::new();
        let abort = AbortSignal::new();
        abort.abort();
        assert!(spool.wait(CteId(1), 0, &abort).is_err());
    }
}
