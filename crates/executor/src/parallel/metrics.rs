//! Observability for parallel execution.

use crate::net::NetStats;

/// Timing for one slice, taken as the maximum over its gang instances
/// (the slice is done when its slowest instance is).
#[derive(Debug, Clone, Default)]
pub struct SliceMetrics {
    pub slice: usize,
    /// Full task lifecycle: receive + compute + send.
    pub wall_seconds: f64,
    /// Kernel time only (under the compute gate).
    pub compute_seconds: f64,
}

/// Wire traffic for one motion, summed over its channels.
#[derive(Debug, Clone, Default)]
pub struct MotionMetrics {
    pub motion: usize,
    /// Debug rendering of the [`orca_expr::physical::MotionKind`].
    pub kind: String,
    pub rows: u64,
    pub bytes: u64,
    /// Highest observed in-flight batch count on any single channel.
    /// Equal to the configured channel capacity ⇒ backpressure engaged.
    pub peak_queue_depth: usize,
    /// Frames this process wrote to sockets for this motion's remote
    /// edges (zero when every edge was in-process).
    pub net_frames_tx: u64,
    /// Socket bytes written for this motion, frame headers included.
    pub net_bytes_tx: u64,
    /// Frames this process read off sockets for this motion.
    pub net_frames_rx: u64,
    /// Socket bytes read for this motion.
    pub net_bytes_rx: u64,
}

/// Execution-wide parallel statistics, returned alongside the rows.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Compute-phase parallelism the run was configured with.
    pub workers: usize,
    pub num_slices: usize,
    /// Historical flag: the plan could not be sliced and ran on the
    /// serial engine instead. Cross-slice CTEs — the last trigger — now
    /// run through the shared spool, so this is always `false`; it is
    /// kept so bench output can assert the invariant.
    pub serial_fallback: bool,
    /// Hoisted cross-slice CTE producer slices in this plan (each one
    /// materialized its CTE exactly once per segment into the shared
    /// spool).
    pub cte_spools: usize,
    /// Total rows published into the shared spool across all spool
    /// slices and segments.
    pub spool_rows: u64,
    /// End-to-end wall time of the parallel run.
    pub wall_seconds: f64,
    /// The simulated cluster clock of the assembled output stream —
    /// bit-equal to the serial engine's `sim_seconds` on the same plan,
    /// whether the gang ran in one process or across the socket
    /// interconnect (the receivers replay the serial motion-cost
    /// formulas from bit-exact wire headers).
    pub sim_seconds: f64,
    /// Socket-transport counters for this run; all zeros when the
    /// topology kept every motion edge in-process.
    pub net: NetStats,
    /// Interconnect batch shells served from the shared free list
    /// instead of freshly allocated (see
    /// [`crate::parallel::interconnect::BatchPool`]).
    pub batches_reused: u64,
    pub slices: Vec<SliceMetrics>,
    pub motions: Vec<MotionMetrics>,
}

impl ParallelStats {
    /// Total rows that crossed the interconnect.
    pub fn motion_rows(&self) -> u64 {
        self.motions.iter().map(|m| m.rows).sum()
    }

    /// Total bytes that crossed the interconnect.
    pub fn motion_bytes(&self) -> u64 {
        self.motions.iter().map(|m| m.bytes).sum()
    }

    /// Highest channel occupancy seen on any motion.
    pub fn peak_queue_depth(&self) -> usize {
        self.motions
            .iter()
            .map(|m| m.peak_queue_depth)
            .max()
            .unwrap_or(0)
    }
}
