//! Cutting a physical plan into slices at motion boundaries.
//!
//! A **slice** is a maximal motion-free fragment of the plan. Each
//! Motion node becomes an edge between two slices: its child subtree is
//! the *sender* slice's plan, and the Motion node itself is replaced in
//! the parent fragment by an [`PhysicalOp::ExchangeRecv`] leaf that the
//! kernel resolves against the interconnect. Because every slice feeds
//! exactly one parent motion, the slice graph is a tree rooted at slice
//! 0 (the fragment containing the plan root) — which is what makes the
//! receive-all → compute → send task lifecycle deadlock-free.
//!
//! **Cross-slice CTEs** are the one construct that would break the tree:
//! the CTE stash is kernel-local, so a CteScan sliced away from its
//! CteProducer would read an empty stash. Instead of falling back to the
//! serial engine, `slice_plan` *hoists* each such producer subtree into
//! its own **spool slice** (`spool_output = Some(id)`): the subtree is
//! cut out of its `Sequence`, sliced like any other fragment, and its
//! gang materializes the CTE exactly once per segment into the driver's
//! [`super::spool::SharedSpool`]. Every slice that consumes a hoisted
//! CTE lists it in `spool_inputs` and receives the materialized batches
//! before its kernel runs — broadcast-once semantics without re-running
//! the producer per consumer. Spool slices are self-contained (the CTE
//! dependency graph is acyclic), so the lifecycle stays deadlock-free.

use orca_common::CteId;
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One motion edge between a sender slice and a receiver slice.
#[derive(Debug, Clone)]
pub struct MotionEdge {
    pub id: usize,
    pub kind: MotionKind,
    pub sender: usize,
    pub receiver: usize,
    /// For `Redistribute` motions: positions of the hash key columns in
    /// the sender fragment's output layout, resolved once at slice time
    /// (the layout is identical across every sender instance). `None`
    /// for other motion kinds, or if a key is not in the layout — the
    /// interconnect then resolves (and reports) it per stream.
    pub key_pos: Option<Vec<usize>>,
}

/// A motion-free plan fragment plus its interconnect endpoints.
#[derive(Debug, Clone)]
pub struct Slice {
    pub id: usize,
    /// The fragment, with each Motion child replaced by `ExchangeRecv`.
    pub root: PhysicalPlan,
    /// Motions whose receiving end is in this slice (discovery order).
    pub inputs: Vec<usize>,
    /// The motion this slice feeds; `None` for the root slice and for
    /// spool slices.
    pub output: Option<usize>,
    /// `Some(id)`: this is a hoisted producer slice. Its gang runs the
    /// producer subtree and publishes the materialized CTE into the
    /// shared spool instead of feeding a motion or the result.
    pub spool_output: Option<CteId>,
    /// Hoisted CTEs this slice consumes. The driver delivers each one
    /// from the shared spool before the slice's kernel runs (sorted for
    /// deterministic wait order).
    pub spool_inputs: Vec<CteId>,
}

/// A plan cut into slices. Slice 0 is the root slice (produces the
/// query result); `motions[i].id == i`.
#[derive(Debug, Clone)]
pub struct SlicedPlan {
    pub slices: Vec<Slice>,
    pub motions: Vec<MotionEdge>,
}

impl SlicedPlan {
    /// Number of hoisted cross-slice CTE producer slices.
    pub fn spool_count(&self) -> usize {
        self.slices
            .iter()
            .filter(|s| s.spool_output.is_some())
            .count()
    }
}

fn blank_slice(id: usize) -> Slice {
    Slice {
        id,
        root: PhysicalPlan::leaf(PhysicalOp::ExchangeRecv { motion: usize::MAX }),
        inputs: Vec::new(),
        output: None,
        spool_output: None,
        spool_inputs: Vec::new(),
    }
}

/// Cut `plan` at every Motion, hoisting cross-slice CTE producers into
/// spool slices.
pub fn slice_plan(plan: &PhysicalPlan) -> SlicedPlan {
    let mut cross = cross_slice_ctes(plan);
    // Hoisting a producer subtree can itself strand a CTE that was local
    // before (the subtree consumes a CTE produced outside it). Grow the
    // hoist set to a fixpoint; it is bounded by the distinct CteIds.
    let (main, spools) = loop {
        let mut spools: Vec<(CteId, PhysicalPlan)> = Vec::new();
        let main = hoist(plan, &cross, &mut spools);
        let mut grew = false;
        for (_, prod) in &spools {
            let mut produced = HashSet::new();
            let mut consumed = HashSet::new();
            collect_ctes(prod, &mut produced, &mut consumed);
            for id in consumed.difference(&produced) {
                grew |= cross.insert(*id);
            }
        }
        if !grew {
            break (main, spools);
        }
    };

    let mut cutter = Cutter {
        slices: vec![blank_slice(0)],
        motions: Vec::new(),
    };
    let root = cutter.cut(&main, 0);
    cutter.slices[0].root = root;
    for (id, prod) in &spools {
        let sid = cutter.slices.len();
        let mut slice = blank_slice(sid);
        slice.spool_output = Some(*id);
        cutter.slices.push(slice);
        let frag = cutter.cut(prod, sid);
        cutter.slices[sid].root = frag;
    }

    // Every slice that reads a hoisted CTE it does not materialize itself
    // takes delivery from the spool.
    let hoisted: HashSet<CteId> = spools.iter().map(|(id, _)| *id).collect();
    for slice in &mut cutter.slices {
        let mut produced = HashSet::new();
        let mut consumed = HashSet::new();
        collect_ctes(&slice.root, &mut produced, &mut consumed);
        let mut needs: Vec<CteId> = consumed
            .difference(&produced)
            .filter(|id| hoisted.contains(id))
            .copied()
            .collect();
        needs.sort();
        slice.spool_inputs = needs;
    }

    SlicedPlan {
        slices: cutter.slices,
        motions: cutter.motions,
    }
}

struct Cutter {
    slices: Vec<Slice>,
    motions: Vec<MotionEdge>,
}

impl Cutter {
    fn cut(&mut self, plan: &PhysicalPlan, current: usize) -> PhysicalPlan {
        if let PhysicalOp::Motion { kind } = &plan.op {
            let motion = self.motions.len();
            let sender = self.slices.len();
            let key_pos = match kind {
                MotionKind::Redistribute(cols) => {
                    let layout = plan.children[0].output_cols();
                    cols.iter()
                        .map(|k| layout.iter().position(|c| c == k))
                        .collect::<Option<Vec<usize>>>()
                }
                _ => None,
            };
            self.motions.push(MotionEdge {
                id: motion,
                kind: kind.clone(),
                sender,
                receiver: current,
                key_pos,
            });
            let mut slice = blank_slice(sender);
            slice.output = Some(motion);
            self.slices.push(slice);
            let frag = self.cut(&plan.children[0], sender);
            self.slices[sender].root = frag;
            self.slices[current].inputs.push(motion);
            return PhysicalPlan::leaf(PhysicalOp::ExchangeRecv { motion });
        }
        let children = plan.children.iter().map(|c| self.cut(c, current)).collect();
        PhysicalPlan::new(plan.op.clone(), children)
    }
}

/// CTE ids whose producer and at least one consumer would land in
/// different slices. Slices are simulated with tokens that advance at
/// every Motion — the same cuts `Cutter` makes.
fn cross_slice_ctes(plan: &PhysicalPlan) -> BTreeSet<CteId> {
    let mut next = 0usize;
    let mut producers: HashMap<CteId, usize> = HashMap::new();
    let mut consumers: Vec<(CteId, usize)> = Vec::new();
    token_walk(plan, 0, &mut next, &mut producers, &mut consumers);
    consumers
        .into_iter()
        // A consumer with no producer anywhere keeps its (pre-existing)
        // "CTE not materialized" runtime error: no Sequence, no hoist.
        .filter(|(id, tok)| producers.get(id).is_some_and(|p| p != tok))
        .map(|(id, _)| id)
        .collect()
}

fn token_walk(
    plan: &PhysicalPlan,
    tok: usize,
    next: &mut usize,
    producers: &mut HashMap<CteId, usize>,
    consumers: &mut Vec<(CteId, usize)>,
) {
    match &plan.op {
        PhysicalOp::CteProducer { id, .. } => {
            producers.insert(*id, tok);
        }
        PhysicalOp::CteScan { id, .. } => consumers.push((*id, tok)),
        _ => {}
    }
    for c in &plan.children {
        let ctok = if matches!(plan.op, PhysicalOp::Motion { .. }) {
            *next += 1;
            *next
        } else {
            tok
        };
        token_walk(c, ctok, next, producers, consumers);
    }
}

/// Rewrite `plan` removing each `Sequence` whose CTE is in `cross`: the
/// producer subtree (child 0) is appended to `spools`, and the node is
/// replaced by its consumer subtree (child 1). Nested hoists recurse.
fn hoist(
    plan: &PhysicalPlan,
    cross: &BTreeSet<CteId>,
    spools: &mut Vec<(CteId, PhysicalPlan)>,
) -> PhysicalPlan {
    if let PhysicalOp::Sequence { id } = &plan.op {
        if cross.contains(id) && plan.children.len() == 2 {
            let producer = hoist(&plan.children[0], cross, spools);
            spools.push((*id, producer));
            return hoist(&plan.children[1], cross, spools);
        }
    }
    let children = plan
        .children
        .iter()
        .map(|c| hoist(c, cross, spools))
        .collect();
    PhysicalPlan::new(plan.op.clone(), children)
}

fn collect_ctes(plan: &PhysicalPlan, produced: &mut HashSet<CteId>, consumed: &mut HashSet<CteId>) {
    match &plan.op {
        PhysicalOp::CteProducer { id, .. } => {
            produced.insert(*id);
        }
        PhysicalOp::CteScan { id, .. } => {
            consumed.insert(*id);
        }
        _ => {}
    }
    for c in &plan.children {
        collect_ctes(c, produced, consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::ColId;
    use orca_expr::props::OrderSpec;

    fn leaf() -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::ConstTable {
            cols: vec![ColId(0)],
            rows: Vec::new(),
        })
    }

    fn motion(kind: MotionKind, child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::new(PhysicalOp::Motion { kind }, vec![child])
    }

    #[test]
    fn no_motion_is_one_slice() {
        let sliced = slice_plan(&leaf());
        assert_eq!(sliced.slices.len(), 1);
        assert!(sliced.motions.is_empty());
        assert!(sliced.slices[0].inputs.is_empty());
        assert!(sliced.slices[0].output.is_none());
        assert_eq!(sliced.spool_count(), 0);
    }

    #[test]
    fn nested_motions_form_a_chain() {
        // Gather over Redistribute: three slices, two motions.
        let plan = motion(
            MotionKind::Gather,
            motion(MotionKind::Redistribute(vec![ColId(0)]), leaf()),
        );
        let sliced = slice_plan(&plan);
        assert_eq!(sliced.slices.len(), 3);
        assert_eq!(sliced.motions.len(), 2);
        // Root slice receives motion 0 (the Gather edge).
        assert_eq!(sliced.slices[0].inputs, vec![0]);
        assert!(matches!(
            sliced.slices[0].root.op,
            PhysicalOp::ExchangeRecv { motion: 0 }
        ));
        // The Gather's sender slice receives the Redistribute edge.
        assert_eq!(sliced.motions[0].receiver, 0);
        let mid = sliced.motions[0].sender;
        assert_eq!(sliced.slices[mid].inputs, vec![1]);
        assert_eq!(sliced.slices[mid].output, Some(0));
        assert_eq!(sliced.motions[1].receiver, mid);
        let bottom = sliced.motions[1].sender;
        assert_eq!(sliced.slices[bottom].inputs, Vec::<usize>::new());
        assert_eq!(sliced.slices[bottom].output, Some(1));
    }

    #[test]
    fn sibling_motions_share_a_receiver() {
        // A two-input operator with a motion under each child.
        let join = PhysicalPlan::new(
            PhysicalOp::UnionAll {
                output: vec![ColId(0)],
                input_cols: vec![vec![ColId(0)], vec![ColId(0)]],
            },
            vec![
                motion(MotionKind::Broadcast, leaf()),
                motion(MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])), leaf()),
            ],
        );
        let sliced = slice_plan(&join);
        assert_eq!(sliced.slices.len(), 3);
        assert_eq!(sliced.slices[0].inputs, vec![0, 1]);
        assert!(sliced.motions.iter().all(|m| m.receiver == 0));
    }

    fn produce(id: u32) -> PhysicalPlan {
        PhysicalPlan::new(
            PhysicalOp::CteProducer {
                id: CteId(id),
                cols: vec![ColId(0)],
            },
            vec![leaf()],
        )
    }

    fn scan_cte(id: u32) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::CteScan {
            id: CteId(id),
            cols: vec![ColId(1)],
            producer_cols: vec![ColId(0)],
        })
    }

    #[test]
    fn local_cte_is_not_hoisted() {
        let local = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(7) },
            vec![produce(7), scan_cte(7)],
        );
        let sliced = slice_plan(&local);
        assert_eq!(sliced.slices.len(), 1);
        assert_eq!(sliced.spool_count(), 0);
        assert!(sliced.slices[0].spool_inputs.is_empty());
        // The Sequence survives untouched.
        assert!(matches!(
            sliced.slices[0].root.op,
            PhysicalOp::Sequence { .. }
        ));
    }

    #[test]
    fn cross_slice_cte_is_hoisted_into_a_spool_slice() {
        // Motion between producer and consumer: the producer subtree is
        // hoisted, the Sequence disappears, the consumer slice takes
        // spool delivery.
        let split = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(7) },
            vec![produce(7), motion(MotionKind::Gather, scan_cte(7))],
        );
        let sliced = slice_plan(&split);
        // Root slice (gather receiver), consumer sender slice, spool slice.
        assert_eq!(sliced.slices.len(), 3);
        assert_eq!(sliced.spool_count(), 1);
        let spool = sliced
            .slices
            .iter()
            .find(|s| s.spool_output == Some(CteId(7)))
            .unwrap();
        assert!(spool.output.is_none());
        assert!(matches!(spool.root.op, PhysicalOp::CteProducer { .. }));
        // The consumer slice waits on the spool; no Sequence anywhere.
        let consumer = &sliced.slices[sliced.motions[0].sender];
        assert_eq!(consumer.spool_inputs, vec![CteId(7)]);
        for s in &sliced.slices {
            let mut stack = vec![&s.root];
            while let Some(p) = stack.pop() {
                assert!(!matches!(p.op, PhysicalOp::Sequence { id: CteId(7) }));
                stack.extend(p.children.iter());
            }
        }
    }

    #[test]
    fn hoisted_producer_consuming_another_cte_forces_both_to_spool() {
        // Sequence{A, Sequence{B over CteScan(A), motion(CteScan(B))}}:
        // B is cross (motion below its consumer), and hoisting B strands
        // A's consumer inside B's spool slice — so A must spool too.
        let prod_b = PhysicalPlan::new(
            PhysicalOp::CteProducer {
                id: CteId(2),
                cols: vec![ColId(0)],
            },
            vec![scan_cte(1)],
        );
        let inner = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(2) },
            vec![prod_b, motion(MotionKind::Gather, scan_cte(2))],
        );
        let plan = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(1) },
            vec![produce(1), inner],
        );
        let sliced = slice_plan(&plan);
        assert_eq!(sliced.spool_count(), 2);
        let spool_b = sliced
            .slices
            .iter()
            .find(|s| s.spool_output == Some(CteId(2)))
            .unwrap();
        assert_eq!(spool_b.spool_inputs, vec![CteId(1)]);
    }
}
