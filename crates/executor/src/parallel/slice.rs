//! Cutting a physical plan into slices at motion boundaries.
//!
//! A **slice** is a maximal motion-free fragment of the plan. Each
//! Motion node becomes an edge between two slices: its child subtree is
//! the *sender* slice's plan, and the Motion node itself is replaced in
//! the parent fragment by an [`PhysicalOp::ExchangeRecv`] leaf that the
//! kernel resolves against the interconnect. Because every slice feeds
//! exactly one parent motion, the slice graph is a tree rooted at slice
//! 0 (the fragment containing the plan root) — which is what makes the
//! receive-all → compute → send task lifecycle deadlock-free.

use orca_common::CteId;
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use std::collections::HashSet;

/// One motion edge between a sender slice and a receiver slice.
#[derive(Debug, Clone)]
pub struct MotionEdge {
    pub id: usize,
    pub kind: MotionKind,
    pub sender: usize,
    pub receiver: usize,
}

/// A motion-free plan fragment plus its interconnect endpoints.
#[derive(Debug, Clone)]
pub struct Slice {
    pub id: usize,
    /// The fragment, with each Motion child replaced by `ExchangeRecv`.
    pub root: PhysicalPlan,
    /// Motions whose receiving end is in this slice (discovery order).
    pub inputs: Vec<usize>,
    /// The motion this slice feeds; `None` for the root slice.
    pub output: Option<usize>,
}

/// A plan cut into slices. Slice 0 is the root slice (produces the
/// query result); `motions[i].id == i`.
#[derive(Debug, Clone)]
pub struct SlicedPlan {
    pub slices: Vec<Slice>,
    pub motions: Vec<MotionEdge>,
}

/// Cut `plan` at every Motion.
pub fn slice_plan(plan: &PhysicalPlan) -> SlicedPlan {
    let mut cutter = Cutter {
        slices: vec![Slice {
            id: 0,
            // Placeholder; replaced with the cut root fragment below.
            root: PhysicalPlan::leaf(PhysicalOp::ExchangeRecv { motion: usize::MAX }),
            inputs: Vec::new(),
            output: None,
        }],
        motions: Vec::new(),
    };
    let root = cutter.cut(plan, 0);
    cutter.slices[0].root = root;
    SlicedPlan {
        slices: cutter.slices,
        motions: cutter.motions,
    }
}

struct Cutter {
    slices: Vec<Slice>,
    motions: Vec<MotionEdge>,
}

impl Cutter {
    fn cut(&mut self, plan: &PhysicalPlan, current: usize) -> PhysicalPlan {
        if let PhysicalOp::Motion { kind } = &plan.op {
            let motion = self.motions.len();
            let sender = self.slices.len();
            self.motions.push(MotionEdge {
                id: motion,
                kind: kind.clone(),
                sender,
                receiver: current,
            });
            self.slices.push(Slice {
                id: sender,
                root: PhysicalPlan::leaf(PhysicalOp::ExchangeRecv { motion: usize::MAX }),
                inputs: Vec::new(),
                output: Some(motion),
            });
            let frag = self.cut(&plan.children[0], sender);
            self.slices[sender].root = frag;
            self.slices[current].inputs.push(motion);
            return PhysicalPlan::leaf(PhysicalOp::ExchangeRecv { motion });
        }
        let children = plan.children.iter().map(|c| self.cut(c, current)).collect();
        PhysicalPlan::new(plan.op.clone(), children)
    }
}

/// Whether every CTE consumer shares a slice with its producer.
///
/// CTE materialization lives in the per-kernel context, so a CteScan in
/// a different slice than its CteProducer would read an empty stash. The
/// optimizer keeps CTE pipelines motion-free between producer and
/// consumer in the common case; when it doesn't, the driver falls back
/// to the serial engine (flagged in [`super::metrics::ParallelStats`]).
pub fn cte_local(sliced: &SlicedPlan) -> bool {
    sliced.slices.iter().all(|slice| {
        let mut produced: HashSet<CteId> = HashSet::new();
        let mut consumed: HashSet<CteId> = HashSet::new();
        collect_ctes(&slice.root, &mut produced, &mut consumed);
        consumed.is_subset(&produced)
    })
}

fn collect_ctes(plan: &PhysicalPlan, produced: &mut HashSet<CteId>, consumed: &mut HashSet<CteId>) {
    match &plan.op {
        PhysicalOp::CteProducer { id, .. } => {
            produced.insert(*id);
        }
        PhysicalOp::CteScan { id, .. } => {
            consumed.insert(*id);
        }
        _ => {}
    }
    for c in &plan.children {
        collect_ctes(c, produced, consumed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_common::ColId;
    use orca_expr::props::OrderSpec;

    fn leaf() -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::ConstTable {
            cols: vec![ColId(0)],
            rows: Vec::new(),
        })
    }

    fn motion(kind: MotionKind, child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::new(PhysicalOp::Motion { kind }, vec![child])
    }

    #[test]
    fn no_motion_is_one_slice() {
        let sliced = slice_plan(&leaf());
        assert_eq!(sliced.slices.len(), 1);
        assert!(sliced.motions.is_empty());
        assert!(sliced.slices[0].inputs.is_empty());
        assert!(sliced.slices[0].output.is_none());
    }

    #[test]
    fn nested_motions_form_a_chain() {
        // Gather over Redistribute: three slices, two motions.
        let plan = motion(
            MotionKind::Gather,
            motion(MotionKind::Redistribute(vec![ColId(0)]), leaf()),
        );
        let sliced = slice_plan(&plan);
        assert_eq!(sliced.slices.len(), 3);
        assert_eq!(sliced.motions.len(), 2);
        // Root slice receives motion 0 (the Gather edge).
        assert_eq!(sliced.slices[0].inputs, vec![0]);
        assert!(matches!(
            sliced.slices[0].root.op,
            PhysicalOp::ExchangeRecv { motion: 0 }
        ));
        // The Gather's sender slice receives the Redistribute edge.
        assert_eq!(sliced.motions[0].receiver, 0);
        let mid = sliced.motions[0].sender;
        assert_eq!(sliced.slices[mid].inputs, vec![1]);
        assert_eq!(sliced.slices[mid].output, Some(0));
        assert_eq!(sliced.motions[1].receiver, mid);
        let bottom = sliced.motions[1].sender;
        assert_eq!(sliced.slices[bottom].inputs, Vec::<usize>::new());
        assert_eq!(sliced.slices[bottom].output, Some(1));
    }

    #[test]
    fn sibling_motions_share_a_receiver() {
        // A two-input operator with a motion under each child.
        let join = PhysicalPlan::new(
            PhysicalOp::UnionAll {
                output: vec![ColId(0)],
                input_cols: vec![vec![ColId(0)], vec![ColId(0)]],
            },
            vec![
                motion(MotionKind::Broadcast, leaf()),
                motion(MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])), leaf()),
            ],
        );
        let sliced = slice_plan(&join);
        assert_eq!(sliced.slices.len(), 3);
        assert_eq!(sliced.slices[0].inputs, vec![0, 1]);
        assert!(sliced.motions.iter().all(|m| m.receiver == 0));
    }

    #[test]
    fn cte_split_across_slices_is_detected() {
        use orca_common::CteId;
        let produce = PhysicalPlan::new(
            PhysicalOp::CteProducer {
                id: CteId(7),
                cols: vec![ColId(0)],
            },
            vec![leaf()],
        );
        let scan = PhysicalPlan::leaf(PhysicalOp::CteScan {
            id: CteId(7),
            cols: vec![ColId(1)],
            producer_cols: vec![ColId(0)],
        });
        // Same slice: fine.
        let local = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(7) },
            vec![produce.clone(), scan.clone()],
        );
        assert!(cte_local(&slice_plan(&local)));
        // Motion between producer and consumer: consumer slice reads a
        // CTE it never materialized.
        let split = PhysicalPlan::new(
            PhysicalOp::Sequence { id: CteId(7) },
            vec![produce, motion(MotionKind::Gather, scan)],
        );
        assert!(!cte_local(&slice_plan(&split)));
    }
}
