//! Scalar evaluation and aggregate accumulators.
//!
//! Expressions are evaluated against a row plus its *layout* (the `ColId`
//! of each position). An optional *environment* supplies bindings for
//! columns not present in the layout — the reference interpreter uses it
//! to evaluate correlated subqueries per outer row.

use crate::storage::Row;
use orca_common::hash::FnvHashMap;
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::scalar::{AggFunc, ArithOp, ScalarExpr};

/// Bindings for out-of-layout columns (correlation environment).
pub type Env = FnvHashMap<ColId, Datum>;

/// Resolve a column either from the row layout or the environment.
pub fn resolve_col(col: ColId, layout: &[ColId], row: &Row, env: &Env) -> Result<Datum> {
    if let Some(pos) = layout.iter().position(|c| *c == col) {
        return Ok(row[pos].clone());
    }
    env.get(&col)
        .cloned()
        .ok_or_else(|| OrcaError::Execution(format!("unbound column {col}")))
}

/// Evaluate a scalar expression. Subquery markers and aggregates are not
/// valid here (aggregates are handled by [`AggAccumulator`]; the reference
/// interpreter intercepts subqueries before calling this).
pub fn eval(e: &ScalarExpr, layout: &[ColId], row: &Row, env: &Env) -> Result<Datum> {
    Ok(match e {
        ScalarExpr::ColRef(c) => resolve_col(*c, layout, row, env)?,
        ScalarExpr::Const(d) => d.clone(),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval(left, layout, row, env)?;
            let r = eval(right, layout, row, env)?;
            match l.sql_cmp(&r) {
                Some(ord) => Datum::Bool(op.evaluate(ord)),
                None => Datum::Null,
            }
        }
        ScalarExpr::And(parts) => {
            // SQL three-valued AND.
            let mut saw_null = false;
            for p in parts {
                match eval(p, layout, row, env)? {
                    Datum::Bool(false) => return Ok(Datum::Bool(false)),
                    Datum::Null => saw_null = true,
                    Datum::Bool(true) => {}
                    other => {
                        return Err(OrcaError::Execution(format!("non-boolean in AND: {other}")))
                    }
                }
            }
            if saw_null {
                Datum::Null
            } else {
                Datum::Bool(true)
            }
        }
        ScalarExpr::Or(parts) => {
            let mut saw_null = false;
            for p in parts {
                match eval(p, layout, row, env)? {
                    Datum::Bool(true) => return Ok(Datum::Bool(true)),
                    Datum::Null => saw_null = true,
                    Datum::Bool(false) => {}
                    other => {
                        return Err(OrcaError::Execution(format!("non-boolean in OR: {other}")))
                    }
                }
            }
            if saw_null {
                Datum::Null
            } else {
                Datum::Bool(false)
            }
        }
        ScalarExpr::Not(x) => match eval(x, layout, row, env)? {
            Datum::Bool(b) => Datum::Bool(!b),
            Datum::Null => Datum::Null,
            other => return Err(OrcaError::Execution(format!("non-boolean in NOT: {other}"))),
        },
        ScalarExpr::IsNull(x) => Datum::Bool(eval(x, layout, row, env)?.is_null()),
        ScalarExpr::Arith { op, left, right } => {
            let l = eval(left, layout, row, env)?;
            let r = eval(right, layout, row, env)?;
            eval_arith(*op, &l, &r)?
        }
        ScalarExpr::Case {
            branches,
            else_value,
        } => {
            for (cond, value) in branches {
                if eval(cond, layout, row, env)? == Datum::Bool(true) {
                    return eval(value, layout, row, env);
                }
            }
            match else_value {
                Some(ev) => eval(ev, layout, row, env)?,
                None => Datum::Null,
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, layout, row, env)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut found = false;
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, layout, row, env)?;
                if iv.is_null() {
                    saw_null = true;
                } else if v.sql_cmp(&iv) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            match (found, saw_null, negated) {
                (true, _, false) => Datum::Bool(true),
                (true, _, true) => Datum::Bool(false),
                (false, true, _) => Datum::Null,
                (false, false, n) => Datum::Bool(*n),
            }
        }
        ScalarExpr::Agg { .. } => {
            return Err(OrcaError::Execution(
                "aggregate evaluated outside aggregation".into(),
            ))
        }
        ScalarExpr::Exists { .. }
        | ScalarExpr::InSubquery { .. }
        | ScalarExpr::ScalarSubquery { .. } => {
            return Err(OrcaError::Execution(
                "subquery marker reached the executor".into(),
            ))
        }
    })
}

fn eval_arith(op: ArithOp, l: &Datum, r: &Datum) -> Result<Datum> {
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    // Integer arithmetic when both sides are integers (except division by
    // zero → NULL, matching a forgiving engine).
    if let (Datum::Int(a), Datum::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Datum::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Datum::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Datum::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Datum::Null
                } else {
                    Datum::Double(*a as f64 / *b as f64)
                }
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(OrcaError::Execution(format!(
                "non-numeric arithmetic: {l} {} {r}",
                op.symbol()
            )))
        }
    };
    Ok(match op {
        ArithOp::Add => Datum::Double(a + b),
        ArithOp::Sub => Datum::Double(a - b),
        ArithOp::Mul => Datum::Double(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                Datum::Null
            } else {
                Datum::Double(a / b)
            }
        }
    })
}

/// Does the predicate accept the row (NULL = reject, as in SQL WHERE)?
pub fn accepts(pred: &ScalarExpr, layout: &[ColId], row: &Row, env: &Env) -> Result<bool> {
    Ok(eval(pred, layout, row, env)? == Datum::Bool(true))
}

/// Streaming aggregate accumulator for one aggregate call.
#[derive(Debug, Clone)]
pub struct AggAccumulator {
    func: AggFunc,
    arg: Option<ScalarExpr>,
    distinct: bool,
    count: i64,
    sum: f64,
    sum_is_int: bool,
    min: Option<Datum>,
    max: Option<Datum>,
    seen: Vec<Datum>,
}

impl AggAccumulator {
    pub fn from_expr(e: &ScalarExpr) -> Result<AggAccumulator> {
        let ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } = e
        else {
            return Err(OrcaError::Execution(format!(
                "aggregation column bound to non-aggregate {e}"
            )));
        };
        Ok(AggAccumulator {
            func: *func,
            arg: arg.as_ref().map(|a| (**a).clone()),
            distinct: *distinct,
            count: 0,
            sum: 0.0,
            sum_is_int: true,
            min: None,
            max: None,
            seen: Vec::new(),
        })
    }

    pub fn update(&mut self, layout: &[ColId], row: &Row, env: &Env) -> Result<()> {
        let value = match &self.arg {
            Some(a) => eval(a, layout, row, env)?,
            None => Datum::Int(1), // count(*)
        };
        self.update_value(value);
        Ok(())
    }

    /// Fold one already-evaluated argument value into the accumulator
    /// (the columnar kernel evaluates arguments vectorized, then feeds
    /// values here).
    pub fn update_value(&mut self, value: Datum) {
        if value.is_null() {
            return;
        }
        if self.distinct {
            if self.seen.contains(&value) {
                return;
            }
            self.seen.push(value.clone());
        }
        self.count += 1;
        if let Some(v) = value.as_f64() {
            self.sum += v;
            if !matches!(value, Datum::Int(_) | Datum::Date(_)) {
                self.sum_is_int = false;
            }
        }
        let better_min = self
            .min
            .as_ref()
            .map(|m| value.sql_cmp(m) == Some(std::cmp::Ordering::Less))
            .unwrap_or(true);
        if better_min {
            self.min = Some(value.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .map(|m| value.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
            .unwrap_or(true);
        if better_max {
            self.max = Some(value);
        }
    }

    /// Final value (SQL semantics: empty input → NULL except count → 0).
    pub fn finish(&self) -> Datum {
        match self.func {
            AggFunc::Count => Datum::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Datum::Null
                } else if self.sum_is_int {
                    Datum::Int(self.sum as i64)
                } else {
                    Datum::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    Datum::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        }
    }
}

/// Compare two rows under an order spec over a layout.
pub fn compare_rows(
    a: &Row,
    b: &Row,
    order: &orca_expr::OrderSpec,
    layout: &[ColId],
) -> std::cmp::Ordering {
    for key in &order.0 {
        if let Some(pos) = layout.iter().position(|c| *c == key.col) {
            let ord = a[pos].total_cmp(&b[pos]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_expr::scalar::CmpOp;

    fn env() -> Env {
        Env::default()
    }

    #[test]
    fn three_valued_logic() {
        let layout = [ColId(0)];
        let row = vec![Datum::Null];
        // NULL AND false = false; NULL AND true = NULL.
        let e = ScalarExpr::And(vec![
            ScalarExpr::IsNull(Box::new(ScalarExpr::int(1))), // false
            ScalarExpr::eq(ScalarExpr::col(ColId(0)), ScalarExpr::int(1)), // NULL
        ]);
        assert_eq!(eval(&e, &layout, &row, &env()).unwrap(), Datum::Bool(false));
        // NOT NULL = NULL; OR short-circuits through NULL.
        let not_null_cmp = ScalarExpr::Not(Box::new(ScalarExpr::eq(
            ScalarExpr::col(ColId(0)),
            ScalarExpr::int(1),
        )));
        assert_eq!(
            eval(&not_null_cmp, &layout, &row, &env()).unwrap(),
            Datum::Null
        );
        let or_true = ScalarExpr::Or(vec![
            ScalarExpr::eq(ScalarExpr::col(ColId(0)), ScalarExpr::int(1)), // NULL
            ScalarExpr::Const(Datum::Bool(true)),
        ]);
        assert_eq!(
            eval(&or_true, &layout, &row, &env()).unwrap(),
            Datum::Bool(true)
        );
        let null_cmp = ScalarExpr::eq(ScalarExpr::col(ColId(0)), ScalarExpr::int(1));
        assert_eq!(eval(&null_cmp, &layout, &row, &env()).unwrap(), Datum::Null);
        // WHERE semantics: NULL rejects.
        assert!(!accepts(&null_cmp, &layout, &row, &env()).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let layout: [ColId; 0] = [];
        let row: Row = vec![];
        let add = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::int(2)),
            right: Box::new(ScalarExpr::int(3)),
        };
        assert_eq!(eval(&add, &layout, &row, &env()).unwrap(), Datum::Int(5));
        let div0 = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::int(1)),
            right: Box::new(ScalarExpr::int(0)),
        };
        assert_eq!(eval(&div0, &layout, &row, &env()).unwrap(), Datum::Null);
        let mixed = ScalarExpr::Arith {
            op: ArithOp::Mul,
            left: Box::new(ScalarExpr::Const(Datum::Double(1.5))),
            right: Box::new(ScalarExpr::int(4)),
        };
        assert_eq!(
            eval(&mixed, &layout, &row, &env()).unwrap(),
            Datum::Double(6.0)
        );
    }

    #[test]
    fn case_and_inlist() {
        let layout = [ColId(0)];
        let case = ScalarExpr::Case {
            branches: vec![(
                ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(0)), ScalarExpr::int(5)),
                ScalarExpr::Const(Datum::Str("big".into())),
            )],
            else_value: Some(Box::new(ScalarExpr::Const(Datum::Str("small".into())))),
        };
        assert_eq!(
            eval(&case, &layout, &vec![Datum::Int(9)], &env()).unwrap(),
            Datum::Str("big".into())
        );
        assert_eq!(
            eval(&case, &layout, &vec![Datum::Int(1)], &env()).unwrap(),
            Datum::Str("small".into())
        );
        let inlist = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::col(ColId(0))),
            list: vec![ScalarExpr::int(1), ScalarExpr::int(2)],
            negated: true,
        };
        assert_eq!(
            eval(&inlist, &layout, &vec![Datum::Int(3)], &env()).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            eval(&inlist, &layout, &vec![Datum::Int(2)], &env()).unwrap(),
            Datum::Bool(false)
        );
    }

    #[test]
    fn env_resolves_correlated_columns() {
        let layout = [ColId(0)];
        let mut e = env();
        e.insert(ColId(9), Datum::Int(42));
        let pred = ScalarExpr::col_eq_col(ColId(0), ColId(9));
        assert!(accepts(&pred, &layout, &vec![Datum::Int(42)], &e).unwrap());
        assert!(!accepts(&pred, &layout, &vec![Datum::Int(1)], &e).unwrap());
        // Unbound column errors.
        assert!(eval(
            &ScalarExpr::col(ColId(7)),
            &layout,
            &vec![Datum::Int(0)],
            &env()
        )
        .is_err());
    }

    #[test]
    fn accumulators_follow_sql_semantics() {
        let layout = [ColId(0)];
        let rows = [
            vec![Datum::Int(1)],
            vec![Datum::Int(3)],
            vec![Datum::Null],
            vec![Datum::Int(3)],
        ];
        let mk = |func, distinct| {
            AggAccumulator::from_expr(&ScalarExpr::Agg {
                func,
                arg: Some(Box::new(ScalarExpr::col(ColId(0)))),
                distinct,
            })
            .unwrap()
        };
        let mut sum = mk(AggFunc::Sum, false);
        let mut cnt = mk(AggFunc::Count, false);
        let mut cntd = mk(AggFunc::Count, true);
        let mut avg = mk(AggFunc::Avg, false);
        let mut mn = mk(AggFunc::Min, false);
        let mut star = AggAccumulator::from_expr(&ScalarExpr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        })
        .unwrap();
        for r in &rows {
            for a in [&mut sum, &mut cnt, &mut cntd, &mut avg, &mut mn, &mut star] {
                a.update(&layout, r, &env()).unwrap();
            }
        }
        assert_eq!(sum.finish(), Datum::Int(7));
        assert_eq!(cnt.finish(), Datum::Int(3), "count skips NULL");
        assert_eq!(cntd.finish(), Datum::Int(2), "distinct count");
        assert_eq!(avg.finish(), Datum::Double(7.0 / 3.0));
        assert_eq!(mn.finish(), Datum::Int(1));
        assert_eq!(star.finish(), Datum::Int(4), "count(*) counts all rows");
        // Empty input.
        let empty = mk(AggFunc::Sum, false);
        assert_eq!(empty.finish(), Datum::Null);
        let empty_cnt = mk(AggFunc::Count, false);
        assert_eq!(empty_cnt.finish(), Datum::Int(0));
    }

    #[test]
    fn row_comparison_with_desc_and_layout() {
        use orca_expr::props::SortKey;
        let layout = [ColId(0), ColId(1)];
        let order =
            orca_expr::OrderSpec(vec![SortKey::asc(ColId(1)), SortKey::descending(ColId(0))]);
        let a = vec![Datum::Int(1), Datum::Int(5)];
        let b = vec![Datum::Int(2), Datum::Int(5)];
        // Same c1; c0 DESC → b first.
        assert_eq!(
            compare_rows(&a, &b, &order, &layout),
            std::cmp::Ordering::Greater
        );
    }
}
