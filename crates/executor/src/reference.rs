//! A naive single-node reference interpreter of *logical* trees.
//!
//! Independent of the physical executor in both code and algorithm
//! (nested-loops everywhere, no segments, no motions), so agreement
//! between the two is strong evidence of plan correctness. Subquery
//! markers are evaluated literally — correlated subqueries re-run per
//! outer row — which also makes this the execution model of the legacy
//! planner's un-decorrelated plans (§7.2.2) and the basis of their
//! simulated cost.

use crate::eval::{accepts, compare_rows, eval, AggAccumulator, Env};
use crate::storage::{Database, Row};
use orca_common::hash::FnvHashMap;
use orca_common::{ColId, CteId, Datum, OrcaError, Result};
use orca_expr::logical::{JoinKind, LogicalExpr, LogicalOp, SetOpKind};
use orca_expr::scalar::ScalarExpr;

/// Counters exposed so baselines can derive simulated costs from reference
/// execution (e.g. how many times correlated subqueries re-ran).
#[derive(Debug, Clone, Default)]
pub struct RefStats {
    pub rows_processed: u64,
    pub subquery_executions: u64,
}

/// Evaluate a logical tree against the database, single-node semantics.
pub fn run_reference(db: &Database, expr: &LogicalExpr, output_cols: &[ColId]) -> Result<Vec<Row>> {
    let mut stats = RefStats::default();
    run_reference_with_stats(db, expr, output_cols, &mut stats)
}

/// As [`run_reference`], also reporting effort counters.
pub fn run_reference_with_stats(
    db: &Database,
    expr: &LogicalExpr,
    output_cols: &[ColId],
    stats: &mut RefStats,
) -> Result<Vec<Row>> {
    let mut interp = Interp {
        db,
        cte: FnvHashMap::default(),
        stats,
    };
    let (layout, rows) = interp.eval_rel(expr, &Env::default())?;
    let positions: Vec<usize> = output_cols
        .iter()
        .map(|c| {
            layout.iter().position(|x| x == c).ok_or_else(|| {
                OrcaError::Execution(format!("output column {c} missing from reference output"))
            })
        })
        .collect::<Result<_>>()?;
    Ok(rows
        .iter()
        .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
        .collect())
}

/// Evaluate one scalar expression that may contain subquery markers,
/// executing subqueries against the database per call (the PostgreSQL
/// "SubPlan" execution model the legacy Planner is stuck with, §7.2.2).
/// Returns the value and accumulates effort into `stats`.
pub fn eval_scalar_with_subplans(
    db: &Database,
    e: &ScalarExpr,
    layout: &[ColId],
    row: &Row,
    env: &Env,
    stats: &mut RefStats,
) -> Result<Datum> {
    let mut interp = Interp {
        db,
        cte: FnvHashMap::default(),
        stats,
    };
    interp.eval_with_subqueries(e, layout, row, env)
}

struct Interp<'a> {
    db: &'a Database,
    cte: FnvHashMap<CteId, (Vec<ColId>, Vec<Row>)>,
    stats: &'a mut RefStats,
}

type Rel = (Vec<ColId>, Vec<Row>);

impl Interp<'_> {
    fn eval_rel(&mut self, expr: &LogicalExpr, env: &Env) -> Result<Rel> {
        match &expr.op {
            LogicalOp::Get { table, cols, parts } => {
                let t = self.db.table(table.mdid)?;
                let rows = t.all_rows(parts);
                self.stats.rows_processed += rows.len() as u64;
                Ok((cols.clone(), rows))
            }
            LogicalOp::Select { pred } => {
                let (layout, rows) = self.eval_rel(&expr.children[0], env)?;
                let mut kept = Vec::new();
                for row in rows {
                    self.stats.rows_processed += 1;
                    if self.accepts_with_subqueries(pred, &layout, &row, env)? {
                        kept.push(row);
                    }
                }
                Ok((layout, kept))
            }
            LogicalOp::Project { exprs } => {
                let (layout, rows) = self.eval_rel(&expr.children[0], env)?;
                let out_layout: Vec<ColId> = exprs.iter().map(|(c, _)| *c).collect();
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let projected: Vec<Datum> = exprs
                        .iter()
                        .map(|(_, e)| self.eval_with_subqueries(e, &layout, &row, env))
                        .collect::<Result<_>>()?;
                    out.push(projected);
                }
                Ok((out_layout, out))
            }
            LogicalOp::Join { kind, pred } => {
                let (llayout, lrows) = self.eval_rel(&expr.children[0], env)?;
                let (rlayout, rrows) = self.eval_rel(&expr.children[1], env)?;
                let combined: Vec<ColId> = llayout.iter().chain(rlayout.iter()).copied().collect();
                let mut out_layout = llayout.clone();
                if kind.outputs_right() {
                    out_layout.extend_from_slice(&rlayout);
                }
                let mut out = Vec::new();
                for lrow in &lrows {
                    let mut matched = false;
                    for rrow in &rrows {
                        self.stats.rows_processed += 1;
                        let joined: Row = lrow.iter().chain(rrow.iter()).cloned().collect();
                        if self.accepts_with_subqueries(pred, &combined, &joined, env)? {
                            matched = true;
                            match kind {
                                JoinKind::Inner | JoinKind::LeftOuter => out.push(joined),
                                JoinKind::LeftSemi => {
                                    out.push(lrow.clone());
                                    break;
                                }
                                JoinKind::LeftAntiSemi => break,
                            }
                        }
                    }
                    if !matched {
                        match kind {
                            JoinKind::LeftOuter => {
                                let mut joined = lrow.clone();
                                joined.extend(vec![Datum::Null; rlayout.len()]);
                                out.push(joined);
                            }
                            JoinKind::LeftAntiSemi => out.push(lrow.clone()),
                            _ => {}
                        }
                    }
                }
                Ok((out_layout, out))
            }
            LogicalOp::GbAgg {
                group_cols, aggs, ..
            } => {
                let (layout, rows) = self.eval_rel(&expr.children[0], env)?;
                let gpos: Vec<usize> = group_cols
                    .iter()
                    .map(|c| {
                        layout.iter().position(|x| x == c).ok_or_else(|| {
                            OrcaError::Execution(format!("group column {c} missing"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut groups: FnvHashMap<Vec<Datum>, Vec<AggAccumulator>> = FnvHashMap::default();
                let mut order: Vec<Vec<Datum>> = Vec::new();
                for row in &rows {
                    self.stats.rows_processed += 1;
                    let key: Vec<Datum> = gpos.iter().map(|&p| row[p].clone()).collect();
                    let accs = match groups.get_mut(&key) {
                        Some(a) => a,
                        None => {
                            order.push(key.clone());
                            groups.entry(key.clone()).or_insert(
                                aggs.iter()
                                    .map(|(_, e)| AggAccumulator::from_expr(e))
                                    .collect::<Result<_>>()?,
                            )
                        }
                    };
                    for acc in accs.iter_mut() {
                        acc.update(&layout, row, env)?;
                    }
                }
                let mut out_layout = group_cols.clone();
                out_layout.extend(aggs.iter().map(|(c, _)| *c));
                let mut out = Vec::new();
                for key in &order {
                    let mut row = key.clone();
                    row.extend(groups[key].iter().map(AggAccumulator::finish));
                    out.push(row);
                }
                if group_cols.is_empty() && out.is_empty() {
                    let accs: Vec<AggAccumulator> = aggs
                        .iter()
                        .map(|(_, e)| AggAccumulator::from_expr(e))
                        .collect::<Result<_>>()?;
                    out.push(accs.iter().map(AggAccumulator::finish).collect());
                }
                Ok((out_layout, out))
            }
            LogicalOp::Limit {
                order,
                offset,
                count,
            } => {
                let (layout, mut rows) = self.eval_rel(&expr.children[0], env)?;
                rows.sort_by(|a, b| compare_rows(a, b, order, &layout));
                let rows: Vec<Row> = rows
                    .into_iter()
                    .skip(*offset as usize)
                    .take(count.map(|c| c as usize).unwrap_or(usize::MAX))
                    .collect();
                Ok((layout, rows))
            }
            LogicalOp::SetOp {
                kind,
                output,
                input_cols,
            } => {
                let mut aligned: Vec<Vec<Row>> = Vec::new();
                for (i, child) in expr.children.iter().enumerate() {
                    let (layout, rows) = self.eval_rel(child, env)?;
                    let positions: Vec<usize> = input_cols[i]
                        .iter()
                        .map(|c| {
                            layout.iter().position(|x| x == c).ok_or_else(|| {
                                OrcaError::Execution(format!("setop column {c} missing"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    aligned.push(
                        rows.iter()
                            .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
                            .collect(),
                    );
                }
                let rows = match kind {
                    SetOpKind::UnionAll => aligned.into_iter().flatten().collect(),
                    SetOpKind::Union => dedup(aligned.into_iter().flatten().collect::<Vec<Row>>()),
                    SetOpKind::Intersect => {
                        let mut result = dedup(aligned[0].clone());
                        for other in &aligned[1..] {
                            result.retain(|r| other.contains(r));
                        }
                        result
                    }
                    SetOpKind::Except => {
                        let mut result = dedup(aligned[0].clone());
                        for other in &aligned[1..] {
                            result.retain(|r| !other.contains(r));
                        }
                        result
                    }
                };
                Ok((output.clone(), rows))
            }
            LogicalOp::Sequence { .. } => {
                self.eval_rel(&expr.children[0], env)?;
                self.eval_rel(&expr.children[1], env)
            }
            LogicalOp::CteProducer { id, cols } => {
                let (_, rows) = self.eval_rel(&expr.children[0], env)?;
                self.cte.insert(*id, (cols.clone(), rows.clone()));
                Ok((cols.clone(), rows))
            }
            LogicalOp::CteConsumer {
                id,
                cols,
                producer_cols,
            } => {
                let (stash_layout, stash_rows) = self
                    .cte
                    .get(id)
                    .cloned()
                    .ok_or_else(|| OrcaError::Execution(format!("CTE {id} not produced")))?;
                let positions: Vec<usize> = producer_cols
                    .iter()
                    .map(|p| {
                        stash_layout.iter().position(|c| c == p).ok_or_else(|| {
                            OrcaError::Execution(format!("CTE {id} missing column {p}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                Ok((
                    cols.clone(),
                    stash_rows
                        .iter()
                        .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
                        .collect(),
                ))
            }
            LogicalOp::ConstTable { cols, rows } => Ok((cols.clone(), rows.clone())),
            LogicalOp::MaxOneRow => {
                let (layout, rows) = self.eval_rel(&expr.children[0], env)?;
                if rows.len() > 1 {
                    return Err(OrcaError::Execution(
                        "more than one row returned by a subquery used as an expression".into(),
                    ));
                }
                Ok((layout, rows))
            }
        }
    }

    /// Scalar evaluation that interprets subquery markers by executing
    /// them (per row, with the outer row's bindings in `env`).
    fn eval_with_subqueries(
        &mut self,
        e: &ScalarExpr,
        layout: &[ColId],
        row: &Row,
        env: &Env,
    ) -> Result<Datum> {
        match e {
            ScalarExpr::Exists { negated, subquery } => {
                let sub_env = self.bind_env(layout, row, env);
                self.stats.subquery_executions += 1;
                let (_, rows) = self.eval_rel(subquery, &sub_env)?;
                Ok(Datum::Bool(rows.is_empty() == *negated))
            }
            ScalarExpr::InSubquery {
                expr,
                subquery,
                subquery_col,
                negated,
            } => {
                let v = self.eval_with_subqueries(expr, layout, row, env)?;
                if v.is_null() {
                    return Ok(Datum::Null);
                }
                let sub_env = self.bind_env(layout, row, env);
                self.stats.subquery_executions += 1;
                let (sub_layout, rows) = self.eval_rel(subquery, &sub_env)?;
                let pos = sub_layout
                    .iter()
                    .position(|c| c == subquery_col)
                    .ok_or_else(|| OrcaError::Execution("IN subquery column missing".into()))?;
                let mut saw_null = false;
                for r in &rows {
                    if r[pos].is_null() {
                        saw_null = true;
                    } else if v.sql_cmp(&r[pos]) == Some(std::cmp::Ordering::Equal) {
                        return Ok(Datum::Bool(!negated));
                    }
                }
                if saw_null {
                    Ok(Datum::Null)
                } else {
                    Ok(Datum::Bool(*negated))
                }
            }
            ScalarExpr::ScalarSubquery {
                subquery,
                subquery_col,
            } => {
                let sub_env = self.bind_env(layout, row, env);
                self.stats.subquery_executions += 1;
                let (sub_layout, rows) = self.eval_rel(subquery, &sub_env)?;
                if rows.len() > 1 {
                    return Err(OrcaError::Execution(
                        "more than one row returned by a subquery used as an expression".into(),
                    ));
                }
                let pos = sub_layout
                    .iter()
                    .position(|c| c == subquery_col)
                    .ok_or_else(|| OrcaError::Execution("scalar subquery column missing".into()))?;
                Ok(rows.first().map(|r| r[pos].clone()).unwrap_or(Datum::Null))
            }
            // Recurse through compound expressions that may hold markers.
            ScalarExpr::Cmp { op, left, right } => {
                let l = self.eval_with_subqueries(left, layout, row, env)?;
                let r = self.eval_with_subqueries(right, layout, row, env)?;
                Ok(match l.sql_cmp(&r) {
                    Some(ord) => Datum::Bool(op.evaluate(ord)),
                    None => Datum::Null,
                })
            }
            ScalarExpr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_with_subqueries(p, layout, row, env)? {
                        Datum::Bool(false) => return Ok(Datum::Bool(false)),
                        Datum::Null => saw_null = true,
                        _ => {}
                    }
                }
                Ok(if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(true)
                })
            }
            ScalarExpr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match self.eval_with_subqueries(p, layout, row, env)? {
                        Datum::Bool(true) => return Ok(Datum::Bool(true)),
                        Datum::Null => saw_null = true,
                        _ => {}
                    }
                }
                Ok(if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(false)
                })
            }
            ScalarExpr::Not(x) => Ok(match self.eval_with_subqueries(x, layout, row, env)? {
                Datum::Bool(b) => Datum::Bool(!b),
                _ => Datum::Null,
            }),
            e if !e.has_subquery() => eval(e, layout, row, env),
            other => Err(OrcaError::Execution(format!(
                "subquery in unsupported position: {other}"
            ))),
        }
    }

    fn accepts_with_subqueries(
        &mut self,
        pred: &ScalarExpr,
        layout: &[ColId],
        row: &Row,
        env: &Env,
    ) -> Result<bool> {
        if !pred.has_subquery() {
            return accepts(pred, layout, row, env);
        }
        Ok(self.eval_with_subqueries(pred, layout, row, env)? == Datum::Bool(true))
    }

    /// Bindings for a subquery: the outer row's columns plus any enclosing
    /// bindings.
    fn bind_env(&self, layout: &[ColId], row: &Row, env: &Env) -> Env {
        let mut out = env.clone();
        for (c, v) in layout.iter().zip(row.iter()) {
            out.insert(*c, v.clone());
        }
        out
    }
}

fn dedup(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FnvHashMap<Vec<Datum>, ()> = FnvHashMap::default();
    let mut out = Vec::new();
    for r in rows {
        if seen.insert(r.clone(), ()).is_none() {
            out.push(r);
        }
    }
    out
}
