//! The batch kernel: the row interpreter's operator set over
//! [`ColumnBatch`] streams.
//!
//! Every arm mirrors its row-kernel counterpart *exactly* in output rows,
//! row order, simulated `avail` times and `ExecStats` counters — the row
//! interpreter stays on as the differential-test oracle (the driver's
//! proptests assert byte-identical `Debug` output). What changes is the
//! work per row: filters return selection vectors, scalar expressions
//! evaluate column-at-a-time, joins and aggregates key on column slices
//! through a raw `u64`-hash table, and sorts permute an index vector.
//!
//! Cold operators stay on the row path via conversion: nested-loops join
//! (per-pair predicate), hash set-ops (rare, dedup-heavy), and any
//! filter/project containing an un-decorrelated subquery.

use super::batch::{BatchWriter, ColStream, Column, ColumnBatch, ValRef};
use super::veval::{veval, veval_predicate};
use crate::eval::{accepts, compare_rows, AggAccumulator, Env};
use crate::exec::{
    apply_filter, apply_nl_join, apply_project, apply_setop, key_positions, op_name, ExecCtx,
};
use crate::storage::{zone_prunes_cmp, Row, SegmentedTable, ZoneMap};
use orca_common::hash::{FnvHashMap, FnvHasher};
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::logical::{AggStage, JoinKind, SetOpKind};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::scalar::{CmpOp, ScalarExpr};
use orca_expr::OrderSpec;
use std::cmp::Ordering;
use std::hash::Hasher;
use std::time::Instant;

/// Execute a plan with the batch kernel, producing a columnar stream set.
///
/// Same per-operator profiling contract as [`crate::exec::exec`]; the
/// `batches` metric counts real columnar batches here.
pub fn cexec(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<ColStream> {
    let start = Instant::now();
    let snapshot = ctx.profile_child_ns;
    let result = cexec_op(plan, ctx);
    let total = start.elapsed().as_nanos() as u64;
    let nested = ctx.profile_child_ns.saturating_sub(snapshot);
    ctx.profile_child_ns = snapshot + total;
    if let Ok(out) = &result {
        let p = ctx.stats.ops.entry(op_name(&plan.op)).or_default();
        p.rows += out.total_rows() as u64;
        p.batches += out.total_batches() as u64;
        p.ns += total.saturating_sub(nested);
    }
    result
}

fn cexec_op(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<ColStream> {
    ctx.check_abort()?;
    let n = ctx.seg_slots();
    let bs = ctx.cluster.batch_size.max(1);
    match &plan.op {
        PhysicalOp::TableScan { table, cols, parts } => {
            if let Some(fc) = ctx.frag.clone() {
                return cexec_shared_scan(ctx, &fc, table, cols, parts, None, n, bs);
            }
            let t = ctx.db.table(table.mdid)?;
            let width = cols.len();
            let mut out = ColStream::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let mut batches = Vec::new();
                let cloned =
                    t.scan_columnar_into(ctx.storage_segment(s), parts, bs, &mut batches, || {
                        ctx.take_shell(width)
                    });
                let rows: usize = batches.iter().map(|b| b.len).sum();
                ctx.stats.scan_bytes_cloned += cloned;
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = ctx.tup_time(rows);
                out.per_seg[s] = batches;
            }
            Ok(out)
        }
        PhysicalOp::IndexScan {
            table,
            cols,
            key_cols,
            parts,
            ..
        } => {
            // Ordered retrieval still goes row-at-a-time through the sort
            // (index order comes from row comparisons), then chunks.
            let t = ctx.db.table(table.mdid)?;
            let order = OrderSpec::by(key_cols);
            let mut out = ColStream::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let mut rows = t.scan(ctx.storage_segment(s), parts);
                rows.sort_by(|a, b| compare_rows(a, b, &order, cols));
                ctx.stats.rows_processed += rows.len() as u64;
                out.avail[s] = ctx.tup_time(rows.len()) * 1.6;
                out.per_seg[s] = chunk_rows(&rows, cols.len(), bs);
            }
            Ok(out)
        }
        PhysicalOp::Filter { pred } => {
            // Filter-over-scan with a fragment cache attached: share the
            // *filtered* fragment, keyed on the interned predicate, so
            // repeat queries skip both the storage read and the filter.
            if !pred.has_subquery() {
                if let Some(fc) = ctx.frag.clone() {
                    if let PhysicalOp::TableScan { table, cols, parts } = &plan.children[0].op {
                        return cexec_shared_scan(ctx, &fc, table, cols, parts, Some(pred), n, bs);
                    }
                }
                // No cache attached: fuse the filter into the scan anyway
                // when every conjunct is zone-testable, so zone maps can
                // drop whole chunks and dict conjuncts run in code space.
                if let PhysicalOp::TableScan { table, cols, parts } = &plan.children[0].op {
                    if conjunct_tests(pred, cols).is_some() {
                        return cexec_fused_scan(ctx, table, cols, parts, pred, n, bs);
                    }
                }
            }
            let input = cexec(&plan.children[0], ctx)?;
            if pred.has_subquery() {
                // Un-decorrelated subquery: per-row subplan execution on
                // the row path keeps the work accounting identical.
                let out = apply_filter(input.to_streamset(), pred, ctx)?;
                return Ok(ColStream::from_streamset(&out, bs));
            }
            let mut out = ColStream::empty(input.layout.clone(), n);
            out.replicated = input.replicated;
            for s in 0..n {
                let in_len = input.seg_rows(s);
                let mut kept = Vec::new();
                for b in &input.per_seg[s] {
                    let sel = veval_predicate(pred, &input.layout, b)?;
                    if sel.is_empty() {
                        continue;
                    }
                    if sel.len() == b.len {
                        kept.push(b.clone());
                    } else {
                        kept.push(b.select(&sel));
                    }
                }
                ctx.stats.rows_processed += in_len as u64;
                out.avail[s] = input.avail[s] + ctx.tup_time(in_len) * 0.5;
                out.per_seg[s] = kept;
            }
            Ok(out)
        }
        PhysicalOp::Project { exprs } => {
            let input = cexec(&plan.children[0], ctx)?;
            if exprs.iter().any(|(_, e)| e.has_subquery()) {
                let out = apply_project(input.to_streamset(), exprs, ctx)?;
                return Ok(ColStream::from_streamset(&out, bs));
            }
            let layout: Vec<ColId> = exprs.iter().map(|(c, _)| *c).collect();
            let mut out = ColStream::empty(layout, n);
            out.replicated = input.replicated;
            for s in 0..n {
                let mut batches = Vec::with_capacity(input.per_seg[s].len());
                let mut rows = 0usize;
                for b in &input.per_seg[s] {
                    let cols: Vec<Column> = exprs
                        .iter()
                        .map(|(_, e)| veval(e, &input.layout, b))
                        .collect::<Result<_>>()?;
                    rows += b.len;
                    batches.push(ColumnBatch { cols, len: b.len });
                }
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = input.avail[s] + ctx.tup_time(rows) * 0.3;
                out.per_seg[s] = batches;
            }
            Ok(out)
        }
        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let left = cexec(&plan.children[0], ctx)?;
            let right = cexec(&plan.children[1], ctx)?;
            cexec_hash_join(
                ctx,
                left,
                right,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                bs,
            )
        }
        PhysicalOp::NLJoin { kind, pred } => {
            let left = cexec(&plan.children[0], ctx)?.to_streamset();
            let right = cexec(&plan.children[1], ctx)?.to_streamset();
            let out = apply_nl_join(left, right, *kind, pred, ctx)?;
            Ok(ColStream::from_streamset(&out, bs))
        }
        PhysicalOp::HashAgg {
            group_cols,
            aggs,
            stage,
        } => {
            let input = cexec(&plan.children[0], ctx)?;
            cexec_agg(ctx, input, group_cols, aggs, *stage, false, bs)
        }
        PhysicalOp::StreamAgg {
            group_cols,
            aggs,
            stage,
        } => {
            let input = cexec(&plan.children[0], ctx)?;
            cexec_agg(ctx, input, group_cols, aggs, *stage, true, bs)
        }
        PhysicalOp::Sort { order } => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let keys = order_positions(order, &input.layout);
            let mut out = ColStream::empty(input.layout.clone(), n);
            out.replicated = input.replicated;
            for s in 0..n {
                let input_bytes: u64 = input.per_seg[s].iter().map(ColumnBatch::bytes).sum();
                let budget = ctx.budget_for(input_bytes);
                let mut spill_factor = 1.0;
                let big = ColumnBatch::concat(&input.per_seg[s], width);
                let batches: Vec<ColumnBatch>;
                if input_bytes > budget && ctx.cluster.can_spill {
                    // Same external merge sort as the row kernel: identical
                    // run boundaries, identical spill bytes.
                    ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(input_bytes);
                    ctx.stats.spills += 1;
                    spill_factor = ctx.cluster.spill_penalty;
                    let rows: Vec<Row> = (0..big.len).map(|i| big.row(i)).collect();
                    let (sorted, m) = crate::spill::external_sort(
                        rows,
                        order,
                        &input.layout,
                        budget,
                        ctx.cluster.batch_size,
                    )?;
                    ctx.fold_spill(&m);
                    batches = sorted
                        .chunks(bs)
                        .map(|c| ColumnBatch::from_rows(c, width))
                        .collect();
                } else {
                    ctx.note_state(input_bytes);
                    let mut idx: Vec<u32> = (0..big.len as u32).collect();
                    // Stable index sort = the row kernel's stable row sort.
                    idx.sort_by(|&a, &b| cmp_rows_at(&big, a as usize, &big, b as usize, &keys));
                    batches = idx.chunks(bs).map(|c| big.select(c)).collect();
                }
                let len = big.len as f64;
                ctx.stats.rows_processed += big.len as u64;
                out.avail[s] = input.avail[s]
                    + ctx.tup_time(big.len) * (1.0 + len.max(2.0).log2() * 0.1) * spill_factor;
                out.per_seg[s] = batches;
            }
            Ok(out)
        }
        PhysicalOp::Limit { offset, count, .. } => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let mut out = ColStream::empty(input.layout.clone(), n);
            // Singleton requirement means rows live on segment 0.
            debug_assert!(input.per_seg.iter().skip(1).all(Vec::is_empty));
            let total = input.seg_rows(0);
            let start = (*offset as usize).min(total);
            let end = match count {
                Some(c) => (start + *c as usize).min(total),
                None => total,
            };
            let big = ColumnBatch::concat(&input.per_seg[0], width);
            let sel: Vec<u32> = (start as u32..end as u32).collect();
            out.avail[0] = input.elapsed() + ctx.tup_time(end - start);
            out.per_seg[0] = sel.chunks(bs).map(|c| big.select(c)).collect();
            Ok(out)
        }
        PhysicalOp::Motion { kind } => cexec_motion(plan, ctx, kind, bs),
        PhysicalOp::Spool => {
            let input = cexec(&plan.children[0], ctx)?;
            let mut out = input.clone();
            for s in 0..n {
                out.avail[s] += ctx.tup_time(input.seg_rows(s)) * 0.6;
            }
            Ok(out)
        }
        PhysicalOp::Sequence { .. } => {
            // Producer side materializes its CTE; consumer side reads it.
            cexec(&plan.children[0], ctx)?;
            cexec(&plan.children[1], ctx)
        }
        PhysicalOp::CteProducer { id, cols } => {
            let input = cexec(&plan.children[0], ctx)?;
            let mut stored = input.clone();
            stored.layout = cols.clone();
            for s in 0..n {
                stored.avail[s] += ctx.tup_time(stored.seg_rows(s)) * 0.6;
            }
            // Producer output layout must match its declared cols.
            if stored.layout.len() != input.layout.len() {
                return Err(OrcaError::Execution("CTE producer arity mismatch".into()));
            }
            // Reproject positionally: declared col i = input col i.
            ctx.cte_col.insert(*id, stored.clone());
            Ok(stored)
        }
        PhysicalOp::CteScan {
            id,
            cols,
            producer_cols,
        } => {
            let stash = ctx
                .cte_col
                .get(id)
                .ok_or_else(|| OrcaError::Execution(format!("CTE {id} not materialized")))?
                .clone();
            // Map producer columns to this consumer's ids.
            let positions: Vec<usize> =
                producer_cols
                    .iter()
                    .map(|p| {
                        stash.layout.iter().position(|c| c == p).ok_or_else(|| {
                            OrcaError::Execution(format!("CTE {id} missing column {p}"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let mut out = ColStream::empty(cols.clone(), n);
            for s in 0..n {
                out.per_seg[s] = stash.per_seg[s]
                    .iter()
                    .map(|b| reproject(b, &positions))
                    .collect();
                let rows = out.seg_rows(s);
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = stash.avail[s] + ctx.tup_time(rows) * 0.5;
            }
            Ok(out)
        }
        PhysicalOp::ConstTable { cols, rows } => {
            let mut out = ColStream::empty(cols.clone(), n);
            // Const rows live on the master by convention; a non-master
            // slice instance materializes an empty stream.
            if ctx.storage_segment(0) == 0 {
                out.per_seg[0] = chunk_rows(rows, cols.len(), bs);
            }
            Ok(out)
        }
        PhysicalOp::AssertOneRow => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let mut out = ColStream::empty(input.layout.clone(), n);
            let total = input.total_rows();
            if ctx.storage_segment(0) != 0 {
                // The enforcer requires singleton input, so every row lives
                // on the master; a non-master instance must see none.
                if total != 0 {
                    return Err(OrcaError::Execution(
                        "AssertOneRow input off the master segment".into(),
                    ));
                }
                return Ok(out);
            }
            if total > 1 {
                return Err(OrcaError::Execution(
                    "more than one row returned by a subquery used as an expression".into(),
                ));
            }
            if total == 0 {
                // SQL scalar-subquery semantics: empty → NULL row.
                let null_row: Row = vec![Datum::Null; width];
                out.per_seg[0] = vec![ColumnBatch::from_rows(&[null_row], width)];
            } else {
                out.per_seg[0] = gathered_batches(&input);
            }
            out.avail[0] = input.elapsed();
            Ok(out)
        }
        PhysicalOp::UnionAll { output, input_cols } => {
            let mut out = ColStream::empty(output.clone(), n);
            for (i, child) in plan.children.iter().enumerate() {
                let c = cexec(child, ctx)?;
                let positions: Vec<usize> = input_cols[i]
                    .iter()
                    .map(|col| {
                        c.layout.iter().position(|x| x == col).ok_or_else(|| {
                            OrcaError::Execution(format!("union input missing {col}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let copies = one_copy_batches(ctx, &c);
                for (s, seg_batches) in copies.iter().enumerate() {
                    let seg_rows: usize = seg_batches.iter().map(|b| b.len).sum();
                    for b in seg_batches {
                        out.per_seg[s].push(reproject(b, &positions));
                    }
                    out.avail[s] = out.avail[s].max(c.avail[s]) + ctx.tup_time(seg_rows) * 0.2;
                }
            }
            Ok(out)
        }
        PhysicalOp::HashSetOp {
            kind,
            output,
            input_cols,
        } => {
            let mut children = Vec::with_capacity(plan.children.len());
            for child in &plan.children {
                children.push(cexec(child, ctx)?.to_streamset());
            }
            let kind: SetOpKind = *kind;
            let out = apply_setop(children, ctx, kind, output, input_cols)?;
            Ok(ColStream::from_streamset(&out, bs))
        }
        PhysicalOp::ExchangeRecv { motion } => ctx.recv_col.remove(motion).ok_or_else(|| {
            OrcaError::Execution(format!("motion {motion} not delivered to this slice"))
        }),
    }
}

/// A table scan (optionally with a fused filter) through the shared
/// fragment cache: reuse a resident fragment, attach to an in-flight
/// cooperative scan, or lead the scan and publish it.
///
/// Stats and simulated times are *replayed* exactly as the plain
/// scan(+filter) arms would have accounted them, so an execution with
/// the cache attached is indistinguishable from one without — same
/// rows, same `rows_processed`, same `avail` clocks — minus the storage
/// read. Sharing counters live on the cache itself, never in
/// [`crate::exec::ExecStats`] (which differential tests assert equal
/// between kernels).
#[allow(clippy::too_many_arguments)]
fn cexec_shared_scan(
    ctx: &mut ExecCtx<'_>,
    fc: &crate::sharing::FragmentCache,
    table: &orca_expr::logical::TableRef,
    cols: &[ColId],
    parts: &Option<Vec<usize>>,
    pred: Option<&ScalarExpr>,
    n: usize,
    bs: usize,
) -> Result<ColStream> {
    use crate::sharing::{Fragment, FragmentKey, Probe};
    let t = ctx.db.table(table.mdid)?;
    let fingerprint = fc.fingerprint(cols, parts, bs, pred);
    let mut out = ColStream::empty(cols.to_vec(), n);
    out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
    for s in 0..n {
        let seg = ctx.storage_segment(s);
        let key = FragmentKey {
            table: t.desc.name.clone(),
            version: t.desc.mdid.version,
            fingerprint,
            segment: seg,
        };
        let frag = match fc.begin(&key, ctx.abort.as_deref())? {
            Probe::Ready(f) => f,
            Probe::Lead(guard) => {
                let so =
                    scan_filtered(t, seg, parts, cols, pred, bs, || ctx.take_shell(cols.len()))?;
                ctx.stats.scan_bytes_cloned += so.bytes_cloned;
                guard.publish(
                    Fragment::new(so.batches, so.scan_rows, so.scan_batches)
                        .with_skips(so.chunks_skipped, so.dict_hits),
                )
            }
        };
        // Replayed accounting — identical to the un-cached TableScan arm
        // (and, when a predicate fused, the Filter arm on top of it).
        // Skip counters replay too: a cache hit represents the same
        // pruned scan.
        let scanned = frag.scan_rows as usize;
        ctx.stats.rows_processed += frag.scan_rows;
        ctx.stats.chunks_skipped += frag.chunks_skipped;
        ctx.stats.dict_hits += frag.dict_hits;
        out.avail[s] = ctx.tup_time(scanned);
        if pred.is_some() {
            ctx.stats.rows_processed += frag.scan_rows;
            out.avail[s] += ctx.tup_time(scanned) * 0.5;
            // The fused scan's share of the per-operator profile (the
            // cexec wrapper only credits the Filter node).
            let p = ctx.stats.ops.entry("TableScan").or_default();
            p.rows += frag.scan_rows;
            p.batches += frag.scan_batches;
        }
        out.per_seg[s] = frag.batches.clone();
    }
    Ok(out)
}

/// Fused Filter-over-TableScan without a fragment cache: the
/// chunk-skipping scan with the Filter arm's accounting stacked on the
/// TableScan arm's (same clocks and counters the two separate arms
/// would have charged — skipped chunks included).
#[allow(clippy::too_many_arguments)]
fn cexec_fused_scan(
    ctx: &mut ExecCtx<'_>,
    table: &orca_expr::logical::TableRef,
    cols: &[ColId],
    parts: &Option<Vec<usize>>,
    pred: &ScalarExpr,
    n: usize,
    bs: usize,
) -> Result<ColStream> {
    let t = ctx.db.table(table.mdid)?;
    let width = cols.len();
    let mut out = ColStream::empty(cols.to_vec(), n);
    out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
    for s in 0..n {
        let so = scan_filtered(
            t,
            ctx.storage_segment(s),
            parts,
            cols,
            Some(pred),
            bs,
            || ctx.take_shell(width),
        )?;
        let scanned = so.scan_rows as usize;
        ctx.stats.rows_processed += so.scan_rows * 2;
        ctx.stats.chunks_skipped += so.chunks_skipped;
        ctx.stats.dict_hits += so.dict_hits;
        ctx.stats.scan_bytes_cloned += so.bytes_cloned;
        out.avail[s] = ctx.tup_time(scanned);
        out.avail[s] += ctx.tup_time(scanned) * 0.5;
        // The fused scan's share of the per-operator profile (the cexec
        // wrapper only credits the Filter node).
        let p = ctx.stats.ops.entry("TableScan").or_default();
        p.rows += so.scan_rows;
        p.batches += so.scan_batches;
        out.per_seg[s] = so.batches;
    }
    Ok(out)
}

/// Output of [`scan_filtered`]: the surviving batches plus the
/// accounting a plain scan(+filter) of the same chunks would have
/// produced.
struct ScanOut {
    batches: Vec<ColumnBatch>,
    /// Rows the unpruned scan covers — skipped chunks included, so
    /// replayed stats match the oracle's full scan.
    scan_rows: u64,
    /// Batches the unpruned scan would have emitted.
    scan_batches: u64,
    chunks_skipped: u64,
    dict_hits: u64,
    bytes_cloned: u64,
}

/// Top-level conjuncts of a predicate.
fn pred_conjuncts(pred: &ScalarExpr) -> Vec<&ScalarExpr> {
    match pred {
        ScalarExpr::And(parts) => parts.iter().collect(),
        other => vec![other],
    }
}

/// A conjunct reduced to a zone-testable shape over one scan column.
/// Every shape here is provably side-effect-free — its evaluation can
/// never error — which is what makes skipping the evaluation of a whole
/// chunk indistinguishable from running it.
enum ZoneTest<'a> {
    Cmp {
        pos: usize,
        op: CmpOp,
        lit: &'a Datum,
    },
    IsNull {
        pos: usize,
    },
    NotNull {
        pos: usize,
    },
    InList {
        pos: usize,
        items: Vec<&'a Datum>,
    },
}

impl ZoneTest<'_> {
    /// Does this conjunct provably reject every row of a chunk with
    /// these zone maps? (`rows` = chunk length, for all-NULL detection.)
    fn prunes(&self, zones: &[ZoneMap], rows: usize) -> bool {
        match self {
            ZoneTest::Cmp { pos, op, lit } => zone_prunes_cmp(&zones[*pos], *op, lit, rows),
            ZoneTest::IsNull { pos } => zones[*pos].null_count == 0,
            ZoneTest::NotNull { pos } => zones[*pos].null_count == rows,
            // `x IN (a, b)` is TRUE only where some item equals x, so
            // the chunk drops when every item's equality is
            // zone-disjoint (NULL items never produce TRUE, only NULL).
            ZoneTest::InList { pos, items } => items
                .iter()
                .all(|d| zone_prunes_cmp(&zones[*pos], CmpOp::Eq, d, rows)),
        }
    }

    fn pos(&self) -> usize {
        match self {
            ZoneTest::Cmp { pos, .. }
            | ZoneTest::IsNull { pos }
            | ZoneTest::NotNull { pos }
            | ZoneTest::InList { pos, .. } => *pos,
        }
    }

    /// Evaluate the conjunct in dictionary code space, if it is an
    /// equality/IN over a dict-encoded chunk column: returns the sorted
    /// matching codes (possibly empty — then no row of the chunk can
    /// pass). `None` means not dict-evaluable on this chunk.
    fn dict_codes(&self, chunk: &ColumnBatch) -> Option<Vec<u32>> {
        match self {
            ZoneTest::Cmp {
                pos,
                op: CmpOp::Eq,
                lit: Datum::Str(s),
            } => {
                let (_, dict, _) = chunk.cols[*pos].dict_parts()?;
                Some(match dict.binary_search_by(|d| d.as_str().cmp(s)) {
                    Ok(k) => vec![k as u32],
                    Err(_) => Vec::new(),
                })
            }
            // Non-string and NULL items can never equal a (string) dict
            // entry, so only string items contribute codes.
            ZoneTest::InList { pos, items } => {
                let (_, dict, _) = chunk.cols[*pos].dict_parts()?;
                let mut ks: Vec<u32> = items
                    .iter()
                    .filter_map(|d| match d {
                        Datum::Str(s) => dict
                            .binary_search_by(|x| x.as_str().cmp(s.as_str()))
                            .ok()
                            .map(|k| k as u32),
                        _ => None,
                    })
                    .collect();
                ks.sort_unstable();
                ks.dedup();
                Some(ks)
            }
            _ => None,
        }
    }
}

/// Reduce a conjunct to a [`ZoneTest`], or `None` if it falls outside
/// the safe shapes.
fn zone_test<'a>(e: &'a ScalarExpr, layout: &[ColId]) -> Option<ZoneTest<'a>> {
    let pos_of = |c: &ColId| layout.iter().position(|x| x == c);
    match e {
        ScalarExpr::Cmp { op, left, right } => match (&**left, &**right) {
            (ScalarExpr::ColRef(c), ScalarExpr::Const(d)) => Some(ZoneTest::Cmp {
                pos: pos_of(c)?,
                op: *op,
                lit: d,
            }),
            (ScalarExpr::Const(d), ScalarExpr::ColRef(c)) => Some(ZoneTest::Cmp {
                pos: pos_of(c)?,
                op: op.commute(),
                lit: d,
            }),
            _ => None,
        },
        ScalarExpr::IsNull(x) => match &**x {
            ScalarExpr::ColRef(c) => Some(ZoneTest::IsNull { pos: pos_of(c)? }),
            _ => None,
        },
        ScalarExpr::Not(x) => match &**x {
            ScalarExpr::IsNull(y) => match &**y {
                ScalarExpr::ColRef(c) => Some(ZoneTest::NotNull { pos: pos_of(c)? }),
                _ => None,
            },
            _ => None,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            let ScalarExpr::ColRef(c) = &**expr else {
                return None;
            };
            let items = list
                .iter()
                .map(|i| match i {
                    ScalarExpr::Const(d) => Some(d),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?;
            Some(ZoneTest::InList {
                pos: pos_of(c)?,
                items,
            })
        }
        _ => None,
    }
}

/// All conjuncts of `pred` as zone tests, or `None` if any conjunct
/// falls outside the safe shapes — then the scan must not skip
/// anything, because a skipped evaluation could have raised an error
/// the oracle raises.
fn conjunct_tests<'a>(
    pred: &'a ScalarExpr,
    layout: &[ColId],
) -> Option<Vec<(ZoneTest<'a>, &'a ScalarExpr)>> {
    pred_conjuncts(pred)
        .into_iter()
        .map(|c| zone_test(c, layout).map(|t| (t, c)))
        .collect()
}

/// Scan the chunks of `parts` on `segment`, applying `pred` (when
/// given) chunk-at-a-time: zone maps skip provably-empty chunks,
/// equality/IN conjuncts over dict-encoded columns run on `u32` codes,
/// and the residue goes through [`veval_predicate`] with the surviving
/// row sets intersected (exact under 3VL: a row passes `AND` iff every
/// conjunct is TRUE on it).
///
/// When a conjunct is not zone-testable, nothing is skipped and the
/// whole predicate evaluates at once — same work, same errors as the
/// unfused path.
fn scan_filtered(
    t: &SegmentedTable,
    segment: usize,
    parts: &Option<Vec<usize>>,
    layout: &[ColId],
    pred: Option<&ScalarExpr>,
    bs: usize,
    mut shell: impl FnMut() -> ColumnBatch,
) -> Result<ScanOut> {
    let bs = bs.max(1);
    let tests = pred.and_then(|p| conjunct_tests(p, layout));
    let mut out = ScanOut {
        batches: Vec::new(),
        scan_rows: 0,
        scan_batches: 0,
        chunks_skipped: 0,
        dict_hits: 0,
        bytes_cloned: 0,
    };
    let mut cand: Vec<u32> = Vec::new();
    'chunks: for chunk in t.part_chunks(segment, parts) {
        let rows = chunk.data.len;
        out.scan_rows += rows as u64;
        out.scan_batches += rows.div_ceil(bs) as u64;
        cand.clear();
        match (pred, &tests) {
            (None, _) => cand.extend(0..rows as u32),
            (Some(_), Some(tests)) => {
                if tests.iter().any(|(zt, _)| zt.prunes(&chunk.zones, rows)) {
                    out.chunks_skipped += 1;
                    continue;
                }
                cand.extend(0..rows as u32);
                for (zt, conj) in tests {
                    if let Some(ks) = zt.dict_codes(&chunk.data) {
                        if ks.is_empty() {
                            // The literal(s) are absent from this
                            // chunk's dictionary: nothing can match.
                            out.chunks_skipped += 1;
                            continue 'chunks;
                        }
                        out.dict_hits += 1;
                        let (codes, _, nulls) = chunk.data.cols[zt.pos()].dict_parts().unwrap();
                        cand.retain(|&i| {
                            let i = i as usize;
                            nulls.is_none_or(|nb| !nb.get(i)) && ks.binary_search(&codes[i]).is_ok()
                        });
                    } else {
                        let sel = veval_predicate(conj, layout, &chunk.data)?;
                        let mut mark = vec![false; rows];
                        for &i in &sel {
                            mark[i as usize] = true;
                        }
                        cand.retain(|&i| mark[i as usize]);
                    }
                    if cand.is_empty() {
                        // Evaluated (not skipped) — the chunk simply
                        // has no passing rows.
                        continue 'chunks;
                    }
                }
            }
            (Some(p), None) => {
                let sel = veval_predicate(p, layout, &chunk.data)?;
                cand.extend_from_slice(&sel);
                if cand.is_empty() {
                    continue;
                }
            }
        }
        if cand.len() == rows && bs >= rows {
            // Zero-copy: the whole chunk survives and fits one batch —
            // every column moves as an `Arc` refcount bump.
            out.batches.push(chunk.data.clone());
            continue;
        }
        for piece in cand.chunks(bs) {
            let mut b = shell();
            b.extend_select(&chunk.data, piece);
            out.bytes_cloned += b.bytes();
            out.batches.push(b);
        }
    }
    Ok(out)
}

/// Chunk a row slice into columnar batches of at most `bs` rows.
fn chunk_rows(rows: &[Row], width: usize, bs: usize) -> Vec<ColumnBatch> {
    rows.chunks(bs.max(1))
        .map(|c| ColumnBatch::from_rows(c, width))
        .collect()
}

/// Clone out the columns at `positions` (column reprojection: no per-row
/// work at all).
fn reproject(b: &ColumnBatch, positions: &[usize]) -> ColumnBatch {
    ColumnBatch {
        cols: positions.iter().map(|&p| b.cols[p].clone()).collect(),
        len: b.len,
    }
}

/// Columnar analogue of `ExecCtx::one_copy_of` (see that method's docs on
/// master-segment placement of the surviving replicated copy).
fn one_copy_batches(ctx: &ExecCtx<'_>, s: &ColStream) -> Vec<Vec<ColumnBatch>> {
    if !s.replicated {
        return s.per_seg.clone();
    }
    match ctx.local_segment {
        None => {
            let mut v = vec![Vec::new(); s.per_seg.len()];
            v[0] = s.per_seg[0].clone();
            v
        }
        Some(0) => vec![s.per_seg[0].clone()],
        Some(_) => vec![Vec::new()],
    }
}

/// All distinct-copy batches in slot order (`StreamSet::gathered`).
fn gathered_batches(s: &ColStream) -> Vec<ColumnBatch> {
    if s.replicated {
        return s.per_seg[0].clone();
    }
    s.per_seg.iter().flatten().cloned().collect()
}

/// Resolve an order spec to `(column position, desc)` pairs, skipping keys
/// absent from the layout (same as `compare_rows`).
fn order_positions(order: &OrderSpec, layout: &[ColId]) -> Vec<(usize, bool)> {
    order
        .0
        .iter()
        .filter_map(|k| layout.iter().position(|c| *c == k.col).map(|p| (p, k.desc)))
        .collect()
}

/// Compare row `i` of `a` with row `j` of `b` under pre-resolved sort keys
/// — the columnar mirror of `compare_rows`.
fn cmp_rows_at(
    a: &ColumnBatch,
    i: usize,
    b: &ColumnBatch,
    j: usize,
    keys: &[(usize, bool)],
) -> Ordering {
    for &(p, desc) in keys {
        let ord = a.cols[p].get_ref(i).total_cmp(&b.cols[p].get_ref(j));
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// FNV over the key columns of row `i` — the same hash stream as
/// `Datum::hash`, so bucket contents match the row kernel's map.
fn hash_key_at(b: &ColumnBatch, pos: &[usize], i: usize) -> (u64, bool) {
    let mut h = FnvHasher::default();
    let mut has_null = false;
    for &p in pos {
        let v = b.cols[p].get_ref(i);
        if v.is_null() {
            has_null = true;
        }
        v.hash_into(&mut h);
    }
    (h.finish(), has_null)
}

/// Key equality across batches via `ValRef::key_eq` (mirrors `Datum`'s
/// `PartialEq`, NULL == NULL included).
fn keys_eq_at(
    a: &ColumnBatch,
    apos: &[usize],
    ai: usize,
    b: &ColumnBatch,
    bpos: &[usize],
    bi: usize,
) -> bool {
    apos.iter()
        .zip(bpos.iter())
        .all(|(&pa, &pb)| a.cols[pa].get_ref(ai).key_eq(&b.cols[pb].get_ref(bi)))
}

#[allow(clippy::too_many_arguments)]
fn cexec_hash_join(
    ctx: &mut ExecCtx<'_>,
    left: ColStream,
    right: ColStream,
    kind: JoinKind,
    left_keys: &[ColId],
    right_keys: &[ColId],
    residual: Option<&ScalarExpr>,
    bs: usize,
) -> Result<ColStream> {
    let _ = bs; // output batches inherit probe-side batch boundaries
    let n = left.per_seg.len();
    let lpos = key_positions(&left.layout, left_keys)?;
    let rpos = key_positions(&right.layout, right_keys)?;
    let env = Env::default();
    let outputs_right = kind.outputs_right();
    let mut layout = left.layout.clone();
    if outputs_right {
        layout.extend_from_slice(&right.layout);
    }
    let combined_layout: Vec<ColId> = left
        .layout
        .iter()
        .chain(right.layout.iter())
        .copied()
        .collect();
    let rwidth = right.layout.len();
    let mut out = ColStream::empty(layout, n);
    out.replicated = left.replicated && right.replicated;
    for s in 0..n {
        // Build on the right side. The memory check runs before the build,
        // like the row kernel's.
        let build_bytes: u64 = right.per_seg[s].iter().map(ColumnBatch::bytes).sum();
        let budget = ctx.budget_for(build_bytes);
        let mut spill_factor = 1.0;
        let spilling = build_bytes > budget;
        if spilling {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(build_bytes);
            if !ctx.cluster.can_spill {
                // Same message as the row kernel's, compared in tests.
                return Err(OrcaError::OutOfMemory(format!(
                    "out of memory: hash join build of {build_bytes} bytes on segment {s}"
                )));
            }
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
        }
        let build = ColumnBatch::concat(&right.per_seg[s], rwidth);
        let mut batches = Vec::new();
        let mut probe_rows = 0usize;
        if spilling {
            // Same grace helper as the row kernel: identical partition
            // routing and probe-order output; rebuilt batches keep the
            // probe side's batch boundaries.
            let build_rows: Vec<Row> = (0..build.len).map(|i| build.row(i)).collect();
            let probe: Vec<Row> = left.per_seg[s]
                .iter()
                .flat_map(|b| (0..b.len).map(move |i| b.row(i)))
                .collect();
            let (per_probe, m) = crate::spill::grace_hash_join(
                &build_rows,
                &probe,
                &lpos,
                &rpos,
                kind,
                residual,
                &combined_layout,
                rwidth,
                &env,
                budget,
                ctx.cluster.batch_size,
            )?;
            ctx.fold_spill(&m);
            let out_width = if outputs_right {
                combined_layout.len()
            } else {
                left.layout.len()
            };
            let mut off = 0usize;
            for lb in &left.per_seg[s] {
                probe_rows += lb.len;
                let rows: Vec<Row> = per_probe[off..off + lb.len]
                    .iter()
                    .flatten()
                    .cloned()
                    .collect();
                off += lb.len;
                if rows.is_empty() {
                    continue;
                }
                batches.push(ColumnBatch::from_rows(&rows, out_width));
            }
        } else {
            ctx.note_state(build_bytes);
            // Raw-hash buckets: candidate lists keep build order, and every
            // candidate is verified with key_eq, so probe results match the
            // row kernel's `Vec<Datum>`-keyed map exactly.
            let mut table: FnvHashMap<u64, Vec<u32>> = FnvHashMap::default();
            for i in 0..build.len {
                let (h, has_null) = hash_key_at(&build, &rpos, i);
                if has_null {
                    continue; // NULL keys never join.
                }
                table.entry(h).or_default().push(i as u32);
            }
            for lb in &left.per_seg[s] {
                probe_rows += lb.len;
                let mut sel_l: Vec<u32> = Vec::new();
                let mut sel_r: Vec<u32> = Vec::new();
                for i in 0..lb.len {
                    let (h, has_null) = hash_key_at(lb, &lpos, i);
                    let candidates: &[u32] = if has_null {
                        &[]
                    } else {
                        table.get(&h).map(|v| v.as_slice()).unwrap_or(&[])
                    };
                    let mut matched = false;
                    for &ri in candidates {
                        if !keys_eq_at(lb, &lpos, i, &build, &rpos, ri as usize) {
                            continue; // same hash, different key
                        }
                        let ok = match residual {
                            Some(res) => {
                                let mut joined = lb.row(i);
                                joined.extend(build.row(ri as usize));
                                accepts(res, &combined_layout, &joined, &env)?
                            }
                            None => true,
                        };
                        if !ok {
                            continue;
                        }
                        matched = true;
                        match kind {
                            JoinKind::Inner | JoinKind::LeftOuter => {
                                sel_l.push(i as u32);
                                sel_r.push(ri);
                            }
                            JoinKind::LeftSemi => {
                                sel_l.push(i as u32);
                                break;
                            }
                            JoinKind::LeftAntiSemi => break,
                        }
                    }
                    if !matched {
                        match kind {
                            JoinKind::LeftOuter => {
                                sel_l.push(i as u32);
                                sel_r.push(u32::MAX); // null-extend the right side
                            }
                            JoinKind::LeftAntiSemi => sel_l.push(i as u32),
                            _ => {}
                        }
                    }
                }
                if sel_l.is_empty() {
                    continue;
                }
                let mut b = lb.select(&sel_l);
                if outputs_right {
                    b.cols.extend(build.select(&sel_r).cols);
                }
                batches.push(b);
            }
        }
        ctx.stats.rows_processed += (build.len + probe_rows) as u64;
        out.avail[s] = left.avail[s].max(right.avail[s])
            + (ctx.tup_time(build.len) * 1.8 + ctx.tup_time(probe_rows)) * spill_factor;
        out.per_seg[s] = batches;
    }
    Ok(out)
}

fn cexec_agg(
    ctx: &mut ExecCtx<'_>,
    input: ColStream,
    group_cols: &[ColId],
    aggs: &[(ColId, ScalarExpr)],
    stage: AggStage,
    stream: bool,
    bs: usize,
) -> Result<ColStream> {
    let n = input.per_seg.len();
    let gpos = key_positions(&input.layout, group_cols)?;
    let mut layout = group_cols.to_vec();
    layout.extend(aggs.iter().map(|(c, _)| *c));
    let width = layout.len();
    let mut out = ColStream::empty(layout, n);
    out.replicated = input.replicated;
    for s in 0..n {
        // Group state is bounded by the input, so the deterministic spill
        // trigger is input bytes over budget, like the row kernel's.
        // Scalar aggregates hold O(1) state and never spill.
        let input_bytes: u64 = input.per_seg[s].iter().map(ColumnBatch::bytes).sum();
        let budget = ctx.budget_for(input_bytes);
        let mut spill_factor = 1.0;
        let spilling = !gpos.is_empty() && input_bytes > budget && ctx.cluster.can_spill;
        let mut in_len = 0usize;
        let mut w = BatchWriter::new(width, bs);
        if spilling {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(input_bytes);
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
            let rows_in: Vec<Row> = input.per_seg[s]
                .iter()
                .flat_map(|b| (0..b.len).map(move |i| b.row(i)))
                .collect();
            in_len = rows_in.len();
            let env = Env::default();
            let (collected, m) = crate::spill::grace_hash_agg(
                &rows_in,
                &gpos,
                aggs,
                &input.layout,
                &env,
                budget,
                ctx.cluster.batch_size,
            )?;
            ctx.fold_spill(&m);
            for (key, group_accs) in &collected {
                let mut row = key.clone();
                row.extend(group_accs.iter().map(AggAccumulator::finish));
                w.push_row(&row);
            }
        } else {
            ctx.note_state(if gpos.is_empty() { 0 } else { input_bytes });
            // First-seen group order, like the row kernel's `order` vec.
            let mut buckets: FnvHashMap<u64, Vec<u32>> = FnvHashMap::default();
            let mut keys: Vec<Row> = Vec::new();
            let mut accs: Vec<Vec<AggAccumulator>> = Vec::new();
            for b in &input.per_seg[s] {
                in_len += b.len;
                // Vectorized argument evaluation: one column per aggregate
                // per batch instead of one eval per (row, aggregate).
                let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
                for (_, e) in aggs {
                    match e {
                        ScalarExpr::Agg { arg: Some(a), .. } => {
                            arg_cols.push(Some(veval(a, &input.layout, b)?))
                        }
                        _ => arg_cols.push(None),
                    }
                }
                for i in 0..b.len {
                    let (h, _) = hash_key_at(b, &gpos, i); // NULL groups: NULL == NULL
                    let bucket = buckets.entry(h).or_default();
                    let gid = match bucket.iter().copied().find(|&g| {
                        gpos.iter().enumerate().all(|(k, &p)| {
                            ValRef::of(&keys[g as usize][k]).key_eq(&b.cols[p].get_ref(i))
                        })
                    }) {
                        Some(g) => g as usize,
                        None => {
                            let g = keys.len();
                            keys.push(gpos.iter().map(|&p| b.cols[p].get(i)).collect());
                            accs.push(
                                aggs.iter()
                                    .map(|(_, e)| AggAccumulator::from_expr(e))
                                    .collect::<Result<_>>()?,
                            );
                            bucket.push(g as u32);
                            g
                        }
                    };
                    for (j, acc) in accs[gid].iter_mut().enumerate() {
                        let value = match &arg_cols[j] {
                            Some(c) => c.get(i),
                            None => Datum::Int(1), // count(*)
                        };
                        acc.update_value(value);
                    }
                }
            }
            for (key, group_accs) in keys.iter().zip(accs.iter()) {
                let mut row = key.clone();
                row.extend(group_accs.iter().map(AggAccumulator::finish));
                w.push_row(&row);
            }
            // Scalar aggregates must emit a row even on empty input: on
            // every segment for Local stage (partials), on the master
            // otherwise. (A spilling aggregate always has group columns,
            // so this only applies to the in-memory branch.)
            if group_cols.is_empty() && keys.is_empty() {
                let emit_here = match stage {
                    AggStage::Local => true,
                    _ => ctx.storage_segment(s) == 0,
                };
                if emit_here {
                    let empty_accs: Vec<AggAccumulator> = aggs
                        .iter()
                        .map(|(_, e)| AggAccumulator::from_expr(e))
                        .collect::<Result<_>>()?;
                    let row: Row = empty_accs.iter().map(AggAccumulator::finish).collect();
                    w.push_row(&row);
                }
            }
        }
        ctx.stats.rows_processed += in_len as u64;
        let factor = if stream { 0.6 } else { 1.1 };
        out.avail[s] = input.avail[s] + ctx.tup_time(in_len) * factor * spill_factor;
        out.per_seg[s] = w.finish();
    }
    Ok(out)
}

fn cexec_motion(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    kind: &MotionKind,
    bs: usize,
) -> Result<ColStream> {
    if ctx.local_segment.is_some() {
        // The slicer cuts plans at motions; a motion inside a slice means
        // the slicer was bypassed or produced a malformed slice.
        return Err(OrcaError::Execution(
            "Motion executed inside a single-segment slice".into(),
        ));
    }
    let n = ctx.cluster.num_segments;
    let input = cexec(&plan.children[0], ctx)?;
    let width = input.layout.len();
    // One distinct copy of the stream's bytes (see `distinct_bytes`).
    let bytes = if input.replicated {
        input.bytes() / n as f64
    } else {
        input.bytes()
    };
    let mut out = ColStream::empty(input.layout.clone(), n);
    match kind {
        MotionKind::Gather => {
            out.per_seg[0] = gathered_batches(&input);
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes);
        }
        MotionKind::GatherMerge(order) => {
            // Streaming k-way merge over per-segment sorted inputs,
            // tie-breaking on the lowest source segment (same contract as
            // the row kernel's `kway_merge`), but moving rows by index
            // gathers instead of `Vec<Datum>` pops.
            let sources: Vec<ColumnBatch> = one_copy_batches(ctx, &input)
                .iter()
                .map(|bl| ColumnBatch::concat(bl, width))
                .collect();
            let keys = order_positions(order, &input.layout);
            let mut heads = vec![0usize; sources.len()];
            let mut w = BatchWriter::new(width, bs);
            loop {
                let mut best: Option<usize> = None;
                for (src, c) in sources.iter().enumerate() {
                    if heads[src] >= c.len {
                        continue;
                    }
                    best = match best {
                        None => Some(src),
                        Some(b) => {
                            if cmp_rows_at(c, heads[src], &sources[b], heads[b], &keys)
                                == Ordering::Less
                            {
                                Some(src)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                let Some(b) = best else { break };
                w.append_row_from(&sources[b], heads[b]);
                heads[b] += 1;
            }
            let len = w.rows();
            out.per_seg[0] = w.finish();
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes) * 1.15 + ctx.tup_time(len) * 0.2;
        }
        MotionKind::Redistribute(cols) => {
            let pos = key_positions(&input.layout, cols)?;
            let base = input.elapsed();
            let mut writers: Vec<BatchWriter> =
                (0..n).map(|_| BatchWriter::new(width, bs)).collect();
            let mut states: Vec<FnvHasher> = Vec::new();
            let mut sels: Vec<Vec<u32>> = vec![Vec::new(); n];
            for seg_batches in &one_copy_batches(ctx, &input) {
                for b in seg_batches {
                    // Batch-at-a-time fan-out: fold each key column into
                    // per-row hasher states column-major (same per-row
                    // byte stream as `segment_for_key`), then scatter
                    // rows through per-destination selection vectors
                    // instead of per-row appends.
                    states.clear();
                    states.resize_with(b.len, FnvHasher::default);
                    for &p in &pos {
                        b.cols[p].hash_rows_into(&mut states);
                    }
                    for sel in sels.iter_mut() {
                        sel.clear();
                    }
                    for (i, h) in states.iter().enumerate() {
                        sels[(h.finish() % n as u64) as usize].push(i as u32);
                    }
                    for (dest, sel) in sels.iter().enumerate() {
                        if sel.is_empty() {
                            continue;
                        }
                        if sel.len() == b.len {
                            // Whole batch routes to one destination:
                            // move it as `Arc` bumps.
                            writers[dest].push_batch(b.clone());
                        } else {
                            writers[dest].extend_select(b, sel);
                        }
                    }
                }
            }
            for (s, wtr) in writers.into_iter().enumerate() {
                out.per_seg[s] = wtr.finish();
            }
            ctx.stats.bytes_moved += bytes as u64;
            for s in 0..n {
                out.avail[s] = base + ctx.net_time(bytes) / n as f64;
            }
        }
        MotionKind::Broadcast => {
            let all = gathered_batches(&input);
            out.replicated = true;
            // n full copies leave the wire: scale in f64 *before* the
            // integer conversion so large streams don't truncate per-copy.
            ctx.stats.bytes_moved += (bytes * n as f64) as u64;
            let base = input.elapsed();
            for s in 0..n {
                out.per_seg[s] = all.clone();
                out.avail[s] = base + ctx.net_time(bytes);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecEngine;
    use crate::storage::Database;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, MdId, SysId};
    use orca_expr::logical::TableRef;
    use orca_expr::scalar::{AggFunc, ArithOp, CmpOp};
    use std::sync::Arc;

    /// 4-segment fixture with NULL-heavy data: t1 hashed, t2 hashed on its
    /// second column, tr replicated.
    fn db() -> (Database, TableRef, TableRef, TableRef) {
        let mut db = Database::new(orca_common::SegmentConfig::default().with_segments(4));
        let mk = |oid: u64, name: &str, dist: Distribution| {
            Arc::new(TableDesc::new(
                MdId::new(SysId::Gpdb, oid, 1),
                name,
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                dist,
            ))
        };
        let t1 = mk(1, "t1", Distribution::Hashed(vec![0]));
        let t2 = mk(2, "t2", Distribution::Hashed(vec![1]));
        let tr = mk(3, "tr", Distribution::Replicated);
        let val = |v: i64| {
            if v % 9 == 8 {
                Datum::Null
            } else {
                Datum::Int(v)
            }
        };
        let rows1: Vec<Row> = (0..120).map(|i| vec![val(i % 17), val(i)]).collect();
        let rows2: Vec<Row> = (0..50).map(|i| vec![val(i), val(i % 17)]).collect();
        let rowsr: Vec<Row> = (0..12).map(|i| vec![val(i % 5), val(i + 2)]).collect();
        db.load_table(t1.clone(), rows1).unwrap();
        db.load_table(t2.clone(), rows2).unwrap();
        db.load_table(tr.clone(), rowsr).unwrap();
        (db, TableRef(t1), TableRef(t2), TableRef(tr))
    }

    fn scan(t: &TableRef, first: u32) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: t.clone(),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    fn gather(child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![child],
        )
    }

    /// Every plan here runs through both kernels at batch sizes 1, 7 and
    /// 1024 and must produce byte-identical rows, identical simulated
    /// time, and identical counters.
    #[test]
    fn columnar_matches_row_kernel() {
        let (db0, t1, t2, tr) = db();
        let agg = |func: AggFunc, arg: Option<ColId>, distinct: bool| ScalarExpr::Agg {
            func,
            arg: arg.map(|c| Box::new(ScalarExpr::col(c))),
            distinct,
        };
        let plans: Vec<(PhysicalPlan, Vec<ColId>)> = vec![
            // Figure 6: join + redistribute + sort + gather-merge.
            (
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Sort {
                            order: OrderSpec::by(&[ColId(0)]),
                        },
                        vec![PhysicalPlan::new(
                            PhysicalOp::HashJoin {
                                kind: JoinKind::Inner,
                                left_keys: vec![ColId(0)],
                                right_keys: vec![ColId(3)],
                                residual: None,
                            },
                            vec![
                                scan(&t1, 0),
                                PhysicalPlan::new(
                                    PhysicalOp::Motion {
                                        kind: MotionKind::Redistribute(vec![ColId(3)]),
                                    },
                                    vec![scan(&t2, 2)],
                                ),
                            ],
                        )],
                    )],
                ),
                vec![ColId(0), ColId(1), ColId(2)],
            ),
            // All join kinds against a broadcast build, with a residual.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftOuter,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: Some(ScalarExpr::cmp(
                            CmpOp::Lt,
                            ScalarExpr::col(ColId(1)),
                            ScalarExpr::int(60),
                        )),
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1), ColId(2), ColId(3)],
            ),
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftSemi,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1)],
            ),
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftAntiSemi,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1)],
            ),
            // Filter + arithmetic projection (vectorized eval paths).
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Project {
                        exprs: vec![
                            (ColId(10), ScalarExpr::col(ColId(0))),
                            (
                                ColId(11),
                                ScalarExpr::Arith {
                                    op: ArithOp::Mul,
                                    left: Box::new(ScalarExpr::col(ColId(1))),
                                    right: Box::new(ScalarExpr::int(3)),
                                },
                            ),
                            (
                                ColId(12),
                                ScalarExpr::IsNull(Box::new(ScalarExpr::col(ColId(0)))),
                            ),
                        ],
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Filter {
                            pred: ScalarExpr::and(vec![
                                ScalarExpr::cmp(
                                    CmpOp::Ge,
                                    ScalarExpr::col(ColId(1)),
                                    ScalarExpr::int(5),
                                ),
                                ScalarExpr::Not(Box::new(ScalarExpr::cmp(
                                    CmpOp::Gt,
                                    ScalarExpr::col(ColId(0)),
                                    ScalarExpr::int(15),
                                ))),
                            ]),
                        },
                        vec![scan(&t1, 0)],
                    )],
                )),
                vec![ColId(10), ColId(11), ColId(12)],
            ),
            // Always-false filter: empty batches everywhere downstream.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Filter {
                        pred: ScalarExpr::cmp(
                            CmpOp::Gt,
                            ScalarExpr::col(ColId(1)),
                            ScalarExpr::int(1_000_000),
                        ),
                    },
                    vec![scan(&t1, 0)],
                )),
                vec![ColId(0)],
            ),
            // Grouped aggregation with NULL groups and distinct.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: vec![ColId(0)],
                        aggs: vec![
                            (ColId(20), agg(AggFunc::Count, None, false)),
                            (ColId(21), agg(AggFunc::Sum, Some(ColId(1)), false)),
                            (ColId(22), agg(AggFunc::Min, Some(ColId(1)), false)),
                            (ColId(23), agg(AggFunc::Max, Some(ColId(1)), false)),
                            (ColId(24), agg(AggFunc::Count, Some(ColId(1)), true)),
                        ],
                        stage: AggStage::Single,
                    },
                    vec![scan(&t1, 0)],
                )),
                vec![
                    ColId(0),
                    ColId(20),
                    ColId(21),
                    ColId(22),
                    ColId(23),
                    ColId(24),
                ],
            ),
            // Scalar aggregate over empty input via the split-agg path.
            (
                PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: vec![],
                        aggs: vec![(ColId(21), agg(AggFunc::Sum, Some(ColId(20)), false))],
                        stage: AggStage::Global,
                    },
                    vec![gather(PhysicalPlan::new(
                        PhysicalOp::HashAgg {
                            group_cols: vec![],
                            aggs: vec![(ColId(20), agg(AggFunc::Count, None, false))],
                            stage: AggStage::Local,
                        },
                        vec![PhysicalPlan::new(
                            PhysicalOp::Filter {
                                pred: ScalarExpr::cmp(
                                    CmpOp::Gt,
                                    ScalarExpr::col(ColId(1)),
                                    ScalarExpr::int(1_000_000),
                                ),
                            },
                            vec![scan(&t1, 0)],
                        )],
                    ))],
                ),
                vec![ColId(21)],
            ),
            // Sort + limit over a replicated scan, with a stream agg.
            (
                PhysicalPlan::new(
                    PhysicalOp::Limit {
                        order: OrderSpec::by(&[ColId(5)]),
                        offset: 1,
                        count: Some(4),
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Sort {
                            order: OrderSpec::by(&[ColId(5)]),
                        },
                        vec![gather(PhysicalPlan::new(
                            PhysicalOp::StreamAgg {
                                group_cols: vec![ColId(4)],
                                aggs: vec![(ColId(25), agg(AggFunc::Avg, Some(ColId(5)), false))],
                                stage: AggStage::Single,
                            },
                            vec![scan(&tr, 4)],
                        ))],
                    )],
                ),
                vec![ColId(4)],
            ),
            // UnionAll of a hashed and a replicated input.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::UnionAll {
                        output: vec![ColId(30), ColId(31)],
                        input_cols: vec![vec![ColId(0), ColId(1)], vec![ColId(4), ColId(5)]],
                    },
                    vec![scan(&t1, 0), scan(&tr, 4)],
                )),
                vec![ColId(30), ColId(31)],
            ),
            // Hash set-op (row-path fallback inside the batch kernel).
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashSetOp {
                        kind: SetOpKind::Intersect,
                        output: vec![ColId(30)],
                        input_cols: vec![vec![ColId(0)], vec![ColId(5)]],
                    },
                    vec![scan(&t1, 0), scan(&tr, 4)],
                )),
                vec![ColId(30)],
            ),
            // CTE self-join through Sequence + Spool-free sharing.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Sequence {
                        id: orca_common::CteId(1),
                    },
                    vec![
                        PhysicalPlan::new(
                            PhysicalOp::CteProducer {
                                id: orca_common::CteId(1),
                                cols: vec![ColId(0), ColId(1)],
                            },
                            vec![scan(&t1, 0)],
                        ),
                        PhysicalPlan::new(
                            PhysicalOp::HashJoin {
                                kind: JoinKind::Inner,
                                left_keys: vec![ColId(40)],
                                right_keys: vec![ColId(50)],
                                residual: None,
                            },
                            vec![
                                PhysicalPlan::leaf(PhysicalOp::CteScan {
                                    id: orca_common::CteId(1),
                                    cols: vec![ColId(40), ColId(41)],
                                    producer_cols: vec![ColId(0), ColId(1)],
                                }),
                                PhysicalPlan::leaf(PhysicalOp::CteScan {
                                    id: orca_common::CteId(1),
                                    cols: vec![ColId(50), ColId(51)],
                                    producer_cols: vec![ColId(0), ColId(1)],
                                }),
                            ],
                        ),
                    ],
                )),
                vec![ColId(40), ColId(51)],
            ),
        ];
        for (pi, (plan, out_cols)) in plans.iter().enumerate() {
            for bs in [1usize, 7, 1024] {
                let mut db = db0.clone();
                db.cluster.batch_size = bs;
                let engine = ExecEngine::new(&db);
                let row = engine.run(plan, out_cols).unwrap();
                let col = engine.run_columnar(plan, out_cols).unwrap();
                assert_eq!(
                    format!("{:?}", row.rows),
                    format!("{:?}", col.rows),
                    "plan {pi} rows diverged at batch_size {bs}"
                );
                assert_eq!(
                    row.sim_seconds.to_bits(),
                    col.sim_seconds.to_bits(),
                    "plan {pi} sim time diverged at batch_size {bs}"
                );
                assert_eq!(
                    row.stats.rows_processed, col.stats.rows_processed,
                    "plan {pi}"
                );
                assert_eq!(row.stats.bytes_moved, col.stats.bytes_moved, "plan {pi}");
                assert_eq!(row.stats.spills, col.stats.spills, "plan {pi}");
                assert_eq!(
                    row.stats.oom_risk_bytes, col.stats.oom_risk_bytes,
                    "plan {pi}"
                );
                // Both kernels fill the per-operator profile.
                assert!(!row.stats.ops.is_empty() && !col.stats.ops.is_empty());
                for (name, p) in &col.stats.ops {
                    let rp = &row.stats.ops[name];
                    assert_eq!(p.rows, rp.rows, "plan {pi} op {name} rows");
                }
            }
        }
    }

    /// The batch kernel reports the OOM failure with the same message.
    #[test]
    fn columnar_oom_matches_row_kernel() {
        let (mut db, t1, t2, _) = db();
        db.cluster.work_mem_bytes = 64;
        db.cluster.can_spill = false;
        let join = gather(PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Broadcast,
                    },
                    vec![scan(&t2, 2)],
                ),
            ],
        ));
        let engine = ExecEngine::new(&db);
        let a = engine.run(&join, &[ColId(0)]).unwrap_err();
        let b = engine.run_columnar(&join, &[ColId(0)]).unwrap_err();
        assert_eq!(a.message(), b.message());
        assert!(b.message().contains("out of memory"));
    }
}
