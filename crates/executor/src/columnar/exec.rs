//! The batch kernel: the row interpreter's operator set over
//! [`ColumnBatch`] streams.
//!
//! Every arm mirrors its row-kernel counterpart *exactly* in output rows,
//! row order, simulated `avail` times and `ExecStats` counters — the row
//! interpreter stays on as the differential-test oracle (the driver's
//! proptests assert byte-identical `Debug` output). What changes is the
//! work per row: filters return selection vectors, scalar expressions
//! evaluate column-at-a-time, joins and aggregates key on column slices
//! through a raw `u64`-hash table, and sorts permute an index vector.
//!
//! Cold operators stay on the row path via conversion: nested-loops join
//! (per-pair predicate), hash set-ops (rare, dedup-heavy), and any
//! filter/project containing an un-decorrelated subquery.

use super::batch::{BatchWriter, ColStream, Column, ColumnBatch, ValRef};
use super::veval::{veval, veval_predicate};
use crate::eval::{accepts, compare_rows, AggAccumulator, Env};
use crate::exec::{
    apply_filter, apply_nl_join, apply_project, apply_setop, key_positions, op_name, ExecCtx,
};
use crate::storage::Row;
use orca_common::hash::{FnvHashMap, FnvHasher};
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::logical::{AggStage, JoinKind, SetOpKind};
use orca_expr::physical::{MotionKind, PhysicalOp, PhysicalPlan};
use orca_expr::scalar::ScalarExpr;
use orca_expr::OrderSpec;
use std::cmp::Ordering;
use std::hash::Hasher;
use std::time::Instant;

/// Execute a plan with the batch kernel, producing a columnar stream set.
///
/// Same per-operator profiling contract as [`crate::exec::exec`]; the
/// `batches` metric counts real columnar batches here.
pub fn cexec(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<ColStream> {
    let start = Instant::now();
    let snapshot = ctx.profile_child_ns;
    let result = cexec_op(plan, ctx);
    let total = start.elapsed().as_nanos() as u64;
    let nested = ctx.profile_child_ns.saturating_sub(snapshot);
    ctx.profile_child_ns = snapshot + total;
    if let Ok(out) = &result {
        let p = ctx.stats.ops.entry(op_name(&plan.op)).or_default();
        p.rows += out.total_rows() as u64;
        p.batches += out.total_batches() as u64;
        p.ns += total.saturating_sub(nested);
    }
    result
}

fn cexec_op(plan: &PhysicalPlan, ctx: &mut ExecCtx<'_>) -> Result<ColStream> {
    ctx.check_abort()?;
    let n = ctx.seg_slots();
    let bs = ctx.cluster.batch_size.max(1);
    match &plan.op {
        PhysicalOp::TableScan { table, cols, parts } => {
            if let Some(fc) = ctx.frag.clone() {
                return cexec_shared_scan(ctx, &fc, table, cols, parts, None, n, bs);
            }
            let t = ctx.db.table(table.mdid)?;
            let mut out = ColStream::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let batches = t.scan_columnar(ctx.storage_segment(s), parts, bs);
                let rows: usize = batches.iter().map(|b| b.len).sum();
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = ctx.tup_time(rows);
                out.per_seg[s] = batches;
            }
            Ok(out)
        }
        PhysicalOp::IndexScan {
            table,
            cols,
            key_cols,
            parts,
            ..
        } => {
            // Ordered retrieval still goes row-at-a-time through the sort
            // (index order comes from row comparisons), then chunks.
            let t = ctx.db.table(table.mdid)?;
            let order = OrderSpec::by(key_cols);
            let mut out = ColStream::empty(cols.clone(), n);
            out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
            for s in 0..n {
                let mut rows = t.scan(ctx.storage_segment(s), parts);
                rows.sort_by(|a, b| compare_rows(a, b, &order, cols));
                ctx.stats.rows_processed += rows.len() as u64;
                out.avail[s] = ctx.tup_time(rows.len()) * 1.6;
                out.per_seg[s] = chunk_rows(&rows, cols.len(), bs);
            }
            Ok(out)
        }
        PhysicalOp::Filter { pred } => {
            // Filter-over-scan with a fragment cache attached: share the
            // *filtered* fragment, keyed on the interned predicate, so
            // repeat queries skip both the storage read and the filter.
            if !pred.has_subquery() {
                if let Some(fc) = ctx.frag.clone() {
                    if let PhysicalOp::TableScan { table, cols, parts } = &plan.children[0].op {
                        return cexec_shared_scan(ctx, &fc, table, cols, parts, Some(pred), n, bs);
                    }
                }
            }
            let input = cexec(&plan.children[0], ctx)?;
            if pred.has_subquery() {
                // Un-decorrelated subquery: per-row subplan execution on
                // the row path keeps the work accounting identical.
                let out = apply_filter(input.to_streamset(), pred, ctx)?;
                return Ok(ColStream::from_streamset(&out, bs));
            }
            let mut out = ColStream::empty(input.layout.clone(), n);
            out.replicated = input.replicated;
            for s in 0..n {
                let in_len = input.seg_rows(s);
                let mut kept = Vec::new();
                for b in &input.per_seg[s] {
                    let sel = veval_predicate(pred, &input.layout, b)?;
                    if sel.is_empty() {
                        continue;
                    }
                    if sel.len() == b.len {
                        kept.push(b.clone());
                    } else {
                        kept.push(b.select(&sel));
                    }
                }
                ctx.stats.rows_processed += in_len as u64;
                out.avail[s] = input.avail[s] + ctx.tup_time(in_len) * 0.5;
                out.per_seg[s] = kept;
            }
            Ok(out)
        }
        PhysicalOp::Project { exprs } => {
            let input = cexec(&plan.children[0], ctx)?;
            if exprs.iter().any(|(_, e)| e.has_subquery()) {
                let out = apply_project(input.to_streamset(), exprs, ctx)?;
                return Ok(ColStream::from_streamset(&out, bs));
            }
            let layout: Vec<ColId> = exprs.iter().map(|(c, _)| *c).collect();
            let mut out = ColStream::empty(layout, n);
            out.replicated = input.replicated;
            for s in 0..n {
                let mut batches = Vec::with_capacity(input.per_seg[s].len());
                let mut rows = 0usize;
                for b in &input.per_seg[s] {
                    let cols: Vec<Column> = exprs
                        .iter()
                        .map(|(_, e)| veval(e, &input.layout, b))
                        .collect::<Result<_>>()?;
                    rows += b.len;
                    batches.push(ColumnBatch { cols, len: b.len });
                }
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = input.avail[s] + ctx.tup_time(rows) * 0.3;
                out.per_seg[s] = batches;
            }
            Ok(out)
        }
        PhysicalOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => {
            let left = cexec(&plan.children[0], ctx)?;
            let right = cexec(&plan.children[1], ctx)?;
            cexec_hash_join(
                ctx,
                left,
                right,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                bs,
            )
        }
        PhysicalOp::NLJoin { kind, pred } => {
            let left = cexec(&plan.children[0], ctx)?.to_streamset();
            let right = cexec(&plan.children[1], ctx)?.to_streamset();
            let out = apply_nl_join(left, right, *kind, pred, ctx)?;
            Ok(ColStream::from_streamset(&out, bs))
        }
        PhysicalOp::HashAgg {
            group_cols,
            aggs,
            stage,
        } => {
            let input = cexec(&plan.children[0], ctx)?;
            cexec_agg(ctx, input, group_cols, aggs, *stage, false, bs)
        }
        PhysicalOp::StreamAgg {
            group_cols,
            aggs,
            stage,
        } => {
            let input = cexec(&plan.children[0], ctx)?;
            cexec_agg(ctx, input, group_cols, aggs, *stage, true, bs)
        }
        PhysicalOp::Sort { order } => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let keys = order_positions(order, &input.layout);
            let mut out = ColStream::empty(input.layout.clone(), n);
            out.replicated = input.replicated;
            for s in 0..n {
                let big = ColumnBatch::concat(&input.per_seg[s], width);
                let mut idx: Vec<u32> = (0..big.len as u32).collect();
                // Stable index sort = the row kernel's stable row sort.
                idx.sort_by(|&a, &b| cmp_rows_at(&big, a as usize, &big, b as usize, &keys));
                let len = big.len as f64;
                ctx.stats.rows_processed += big.len as u64;
                out.avail[s] =
                    input.avail[s] + ctx.tup_time(big.len) * (1.0 + len.max(2.0).log2() * 0.1);
                out.per_seg[s] = idx.chunks(bs).map(|c| big.select(c)).collect();
            }
            Ok(out)
        }
        PhysicalOp::Limit { offset, count, .. } => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let mut out = ColStream::empty(input.layout.clone(), n);
            // Singleton requirement means rows live on segment 0.
            debug_assert!(input.per_seg.iter().skip(1).all(Vec::is_empty));
            let total = input.seg_rows(0);
            let start = (*offset as usize).min(total);
            let end = match count {
                Some(c) => (start + *c as usize).min(total),
                None => total,
            };
            let big = ColumnBatch::concat(&input.per_seg[0], width);
            let sel: Vec<u32> = (start as u32..end as u32).collect();
            out.avail[0] = input.elapsed() + ctx.tup_time(end - start);
            out.per_seg[0] = sel.chunks(bs).map(|c| big.select(c)).collect();
            Ok(out)
        }
        PhysicalOp::Motion { kind } => cexec_motion(plan, ctx, kind, bs),
        PhysicalOp::Spool => {
            let input = cexec(&plan.children[0], ctx)?;
            let mut out = input.clone();
            for s in 0..n {
                out.avail[s] += ctx.tup_time(input.seg_rows(s)) * 0.6;
            }
            Ok(out)
        }
        PhysicalOp::Sequence { .. } => {
            // Producer side materializes its CTE; consumer side reads it.
            cexec(&plan.children[0], ctx)?;
            cexec(&plan.children[1], ctx)
        }
        PhysicalOp::CteProducer { id, cols } => {
            let input = cexec(&plan.children[0], ctx)?;
            let mut stored = input.clone();
            stored.layout = cols.clone();
            for s in 0..n {
                stored.avail[s] += ctx.tup_time(stored.seg_rows(s)) * 0.6;
            }
            // Producer output layout must match its declared cols.
            if stored.layout.len() != input.layout.len() {
                return Err(OrcaError::Execution("CTE producer arity mismatch".into()));
            }
            // Reproject positionally: declared col i = input col i.
            ctx.cte_col.insert(*id, stored.clone());
            Ok(stored)
        }
        PhysicalOp::CteScan {
            id,
            cols,
            producer_cols,
        } => {
            let stash = ctx
                .cte_col
                .get(id)
                .ok_or_else(|| OrcaError::Execution(format!("CTE {id} not materialized")))?
                .clone();
            // Map producer columns to this consumer's ids.
            let positions: Vec<usize> =
                producer_cols
                    .iter()
                    .map(|p| {
                        stash.layout.iter().position(|c| c == p).ok_or_else(|| {
                            OrcaError::Execution(format!("CTE {id} missing column {p}"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let mut out = ColStream::empty(cols.clone(), n);
            for s in 0..n {
                out.per_seg[s] = stash.per_seg[s]
                    .iter()
                    .map(|b| reproject(b, &positions))
                    .collect();
                let rows = out.seg_rows(s);
                ctx.stats.rows_processed += rows as u64;
                out.avail[s] = stash.avail[s] + ctx.tup_time(rows) * 0.5;
            }
            Ok(out)
        }
        PhysicalOp::ConstTable { cols, rows } => {
            let mut out = ColStream::empty(cols.clone(), n);
            // Const rows live on the master by convention; a non-master
            // slice instance materializes an empty stream.
            if ctx.storage_segment(0) == 0 {
                out.per_seg[0] = chunk_rows(rows, cols.len(), bs);
            }
            Ok(out)
        }
        PhysicalOp::AssertOneRow => {
            let input = cexec(&plan.children[0], ctx)?;
            let width = input.layout.len();
            let mut out = ColStream::empty(input.layout.clone(), n);
            let total = input.total_rows();
            if ctx.storage_segment(0) != 0 {
                // The enforcer requires singleton input, so every row lives
                // on the master; a non-master instance must see none.
                if total != 0 {
                    return Err(OrcaError::Execution(
                        "AssertOneRow input off the master segment".into(),
                    ));
                }
                return Ok(out);
            }
            if total > 1 {
                return Err(OrcaError::Execution(
                    "more than one row returned by a subquery used as an expression".into(),
                ));
            }
            if total == 0 {
                // SQL scalar-subquery semantics: empty → NULL row.
                let null_row: Row = vec![Datum::Null; width];
                out.per_seg[0] = vec![ColumnBatch::from_rows(&[null_row], width)];
            } else {
                out.per_seg[0] = gathered_batches(&input);
            }
            out.avail[0] = input.elapsed();
            Ok(out)
        }
        PhysicalOp::UnionAll { output, input_cols } => {
            let mut out = ColStream::empty(output.clone(), n);
            for (i, child) in plan.children.iter().enumerate() {
                let c = cexec(child, ctx)?;
                let positions: Vec<usize> = input_cols[i]
                    .iter()
                    .map(|col| {
                        c.layout.iter().position(|x| x == col).ok_or_else(|| {
                            OrcaError::Execution(format!("union input missing {col}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let copies = one_copy_batches(ctx, &c);
                for (s, seg_batches) in copies.iter().enumerate() {
                    let seg_rows: usize = seg_batches.iter().map(|b| b.len).sum();
                    for b in seg_batches {
                        out.per_seg[s].push(reproject(b, &positions));
                    }
                    out.avail[s] = out.avail[s].max(c.avail[s]) + ctx.tup_time(seg_rows) * 0.2;
                }
            }
            Ok(out)
        }
        PhysicalOp::HashSetOp {
            kind,
            output,
            input_cols,
        } => {
            let mut children = Vec::with_capacity(plan.children.len());
            for child in &plan.children {
                children.push(cexec(child, ctx)?.to_streamset());
            }
            let kind: SetOpKind = *kind;
            let out = apply_setop(children, ctx, kind, output, input_cols)?;
            Ok(ColStream::from_streamset(&out, bs))
        }
        PhysicalOp::ExchangeRecv { motion } => ctx.recv_col.remove(motion).ok_or_else(|| {
            OrcaError::Execution(format!("motion {motion} not delivered to this slice"))
        }),
    }
}

/// A table scan (optionally with a fused filter) through the shared
/// fragment cache: reuse a resident fragment, attach to an in-flight
/// cooperative scan, or lead the scan and publish it.
///
/// Stats and simulated times are *replayed* exactly as the plain
/// scan(+filter) arms would have accounted them, so an execution with
/// the cache attached is indistinguishable from one without — same
/// rows, same `rows_processed`, same `avail` clocks — minus the storage
/// read. Sharing counters live on the cache itself, never in
/// [`crate::exec::ExecStats`] (which differential tests assert equal
/// between kernels).
#[allow(clippy::too_many_arguments)]
fn cexec_shared_scan(
    ctx: &mut ExecCtx<'_>,
    fc: &crate::sharing::FragmentCache,
    table: &orca_expr::logical::TableRef,
    cols: &[ColId],
    parts: &Option<Vec<usize>>,
    pred: Option<&ScalarExpr>,
    n: usize,
    bs: usize,
) -> Result<ColStream> {
    use crate::sharing::{Fragment, FragmentKey, Probe};
    let t = ctx.db.table(table.mdid)?;
    let fingerprint = fc.fingerprint(cols, parts, bs, pred);
    let mut out = ColStream::empty(cols.to_vec(), n);
    out.replicated = t.desc.distribution == orca_catalog::Distribution::Replicated;
    for s in 0..n {
        let seg = ctx.storage_segment(s);
        let key = FragmentKey {
            table: t.desc.name.clone(),
            version: t.desc.mdid.version,
            fingerprint,
            segment: seg,
        };
        let frag = match fc.begin(&key, ctx.abort.as_deref())? {
            Probe::Ready(f) => f,
            Probe::Lead(guard) => {
                let batches = t.scan_columnar(seg, parts, bs);
                let scan_rows: u64 = batches.iter().map(|b| b.len as u64).sum();
                let scan_batches = batches.len() as u64;
                let kept = match pred {
                    None => batches,
                    Some(p) => {
                        let mut kept = Vec::new();
                        for b in &batches {
                            let sel = veval_predicate(p, cols, b)?;
                            if sel.is_empty() {
                                continue;
                            }
                            if sel.len() == b.len {
                                kept.push(b.clone());
                            } else {
                                kept.push(b.select(&sel));
                            }
                        }
                        kept
                    }
                };
                guard.publish(Fragment::new(kept, scan_rows, scan_batches))
            }
        };
        // Replayed accounting — identical to the un-cached TableScan arm
        // (and, when a predicate fused, the Filter arm on top of it).
        let scanned = frag.scan_rows as usize;
        ctx.stats.rows_processed += frag.scan_rows;
        out.avail[s] = ctx.tup_time(scanned);
        if pred.is_some() {
            ctx.stats.rows_processed += frag.scan_rows;
            out.avail[s] += ctx.tup_time(scanned) * 0.5;
            // The fused scan's share of the per-operator profile (the
            // cexec wrapper only credits the Filter node).
            let p = ctx.stats.ops.entry("TableScan").or_default();
            p.rows += frag.scan_rows;
            p.batches += frag.scan_batches;
        }
        out.per_seg[s] = frag.batches.clone();
    }
    Ok(out)
}

/// Chunk a row slice into columnar batches of at most `bs` rows.
fn chunk_rows(rows: &[Row], width: usize, bs: usize) -> Vec<ColumnBatch> {
    rows.chunks(bs.max(1))
        .map(|c| ColumnBatch::from_rows(c, width))
        .collect()
}

/// Clone out the columns at `positions` (column reprojection: no per-row
/// work at all).
fn reproject(b: &ColumnBatch, positions: &[usize]) -> ColumnBatch {
    ColumnBatch {
        cols: positions.iter().map(|&p| b.cols[p].clone()).collect(),
        len: b.len,
    }
}

/// Columnar analogue of `ExecCtx::one_copy_of` (see that method's docs on
/// master-segment placement of the surviving replicated copy).
fn one_copy_batches(ctx: &ExecCtx<'_>, s: &ColStream) -> Vec<Vec<ColumnBatch>> {
    if !s.replicated {
        return s.per_seg.clone();
    }
    match ctx.local_segment {
        None => {
            let mut v = vec![Vec::new(); s.per_seg.len()];
            v[0] = s.per_seg[0].clone();
            v
        }
        Some(0) => vec![s.per_seg[0].clone()],
        Some(_) => vec![Vec::new()],
    }
}

/// All distinct-copy batches in slot order (`StreamSet::gathered`).
fn gathered_batches(s: &ColStream) -> Vec<ColumnBatch> {
    if s.replicated {
        return s.per_seg[0].clone();
    }
    s.per_seg.iter().flatten().cloned().collect()
}

/// Resolve an order spec to `(column position, desc)` pairs, skipping keys
/// absent from the layout (same as `compare_rows`).
fn order_positions(order: &OrderSpec, layout: &[ColId]) -> Vec<(usize, bool)> {
    order
        .0
        .iter()
        .filter_map(|k| layout.iter().position(|c| *c == k.col).map(|p| (p, k.desc)))
        .collect()
}

/// Compare row `i` of `a` with row `j` of `b` under pre-resolved sort keys
/// — the columnar mirror of `compare_rows`.
fn cmp_rows_at(
    a: &ColumnBatch,
    i: usize,
    b: &ColumnBatch,
    j: usize,
    keys: &[(usize, bool)],
) -> Ordering {
    for &(p, desc) in keys {
        let ord = a.cols[p].get_ref(i).total_cmp(&b.cols[p].get_ref(j));
        let ord = if desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// FNV over the key columns of row `i` — the same hash stream as
/// `Datum::hash`, so bucket contents match the row kernel's map.
fn hash_key_at(b: &ColumnBatch, pos: &[usize], i: usize) -> (u64, bool) {
    let mut h = FnvHasher::default();
    let mut has_null = false;
    for &p in pos {
        let v = b.cols[p].get_ref(i);
        if v.is_null() {
            has_null = true;
        }
        v.hash_into(&mut h);
    }
    (h.finish(), has_null)
}

/// Key equality across batches via `ValRef::key_eq` (mirrors `Datum`'s
/// `PartialEq`, NULL == NULL included).
fn keys_eq_at(
    a: &ColumnBatch,
    apos: &[usize],
    ai: usize,
    b: &ColumnBatch,
    bpos: &[usize],
    bi: usize,
) -> bool {
    apos.iter()
        .zip(bpos.iter())
        .all(|(&pa, &pb)| a.cols[pa].get_ref(ai).key_eq(&b.cols[pb].get_ref(bi)))
}

#[allow(clippy::too_many_arguments)]
fn cexec_hash_join(
    ctx: &mut ExecCtx<'_>,
    left: ColStream,
    right: ColStream,
    kind: JoinKind,
    left_keys: &[ColId],
    right_keys: &[ColId],
    residual: Option<&ScalarExpr>,
    bs: usize,
) -> Result<ColStream> {
    let _ = bs; // output batches inherit probe-side batch boundaries
    let n = left.per_seg.len();
    let lpos = key_positions(&left.layout, left_keys)?;
    let rpos = key_positions(&right.layout, right_keys)?;
    let env = Env::default();
    let outputs_right = kind.outputs_right();
    let mut layout = left.layout.clone();
    if outputs_right {
        layout.extend_from_slice(&right.layout);
    }
    let combined_layout: Vec<ColId> = left
        .layout
        .iter()
        .chain(right.layout.iter())
        .copied()
        .collect();
    let rwidth = right.layout.len();
    let mut out = ColStream::empty(layout, n);
    out.replicated = left.replicated && right.replicated;
    for s in 0..n {
        // Build on the right side. The memory check runs before the build,
        // like the row kernel's.
        let build_bytes: u64 = right.per_seg[s].iter().map(ColumnBatch::bytes).sum();
        let mut spill_factor = 1.0;
        if build_bytes > ctx.cluster.work_mem_bytes {
            ctx.stats.oom_risk_bytes = ctx.stats.oom_risk_bytes.max(build_bytes);
            if !ctx.cluster.can_spill {
                return Err(OrcaError::Execution(format!(
                    "out of memory: hash join build of {build_bytes} bytes on segment {s}"
                )));
            }
            ctx.stats.spills += 1;
            spill_factor = ctx.cluster.spill_penalty;
        }
        let build = ColumnBatch::concat(&right.per_seg[s], rwidth);
        // Raw-hash buckets: candidate lists keep build order, and every
        // candidate is verified with key_eq, so probe results match the
        // row kernel's `Vec<Datum>`-keyed map exactly.
        let mut table: FnvHashMap<u64, Vec<u32>> = FnvHashMap::default();
        for i in 0..build.len {
            let (h, has_null) = hash_key_at(&build, &rpos, i);
            if has_null {
                continue; // NULL keys never join.
            }
            table.entry(h).or_default().push(i as u32);
        }
        let mut batches = Vec::new();
        let mut probe_rows = 0usize;
        for lb in &left.per_seg[s] {
            probe_rows += lb.len;
            let mut sel_l: Vec<u32> = Vec::new();
            let mut sel_r: Vec<u32> = Vec::new();
            for i in 0..lb.len {
                let (h, has_null) = hash_key_at(lb, &lpos, i);
                let candidates: &[u32] = if has_null {
                    &[]
                } else {
                    table.get(&h).map(|v| v.as_slice()).unwrap_or(&[])
                };
                let mut matched = false;
                for &ri in candidates {
                    if !keys_eq_at(lb, &lpos, i, &build, &rpos, ri as usize) {
                        continue; // same hash, different key
                    }
                    let ok = match residual {
                        Some(res) => {
                            let mut joined = lb.row(i);
                            joined.extend(build.row(ri as usize));
                            accepts(res, &combined_layout, &joined, &env)?
                        }
                        None => true,
                    };
                    if !ok {
                        continue;
                    }
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => {
                            sel_l.push(i as u32);
                            sel_r.push(ri);
                        }
                        JoinKind::LeftSemi => {
                            sel_l.push(i as u32);
                            break;
                        }
                        JoinKind::LeftAntiSemi => break,
                    }
                }
                if !matched {
                    match kind {
                        JoinKind::LeftOuter => {
                            sel_l.push(i as u32);
                            sel_r.push(u32::MAX); // null-extend the right side
                        }
                        JoinKind::LeftAntiSemi => sel_l.push(i as u32),
                        _ => {}
                    }
                }
            }
            if sel_l.is_empty() {
                continue;
            }
            let mut b = lb.select(&sel_l);
            if outputs_right {
                b.cols.extend(build.select(&sel_r).cols);
            }
            batches.push(b);
        }
        ctx.stats.rows_processed += (build.len + probe_rows) as u64;
        out.avail[s] = left.avail[s].max(right.avail[s])
            + (ctx.tup_time(build.len) * 1.8 + ctx.tup_time(probe_rows)) * spill_factor;
        out.per_seg[s] = batches;
    }
    Ok(out)
}

fn cexec_agg(
    ctx: &mut ExecCtx<'_>,
    input: ColStream,
    group_cols: &[ColId],
    aggs: &[(ColId, ScalarExpr)],
    stage: AggStage,
    stream: bool,
    bs: usize,
) -> Result<ColStream> {
    let n = input.per_seg.len();
    let gpos = key_positions(&input.layout, group_cols)?;
    let mut layout = group_cols.to_vec();
    layout.extend(aggs.iter().map(|(c, _)| *c));
    let width = layout.len();
    let mut out = ColStream::empty(layout, n);
    out.replicated = input.replicated;
    for s in 0..n {
        // First-seen group order, like the row kernel's `order` vec.
        let mut buckets: FnvHashMap<u64, Vec<u32>> = FnvHashMap::default();
        let mut keys: Vec<Row> = Vec::new();
        let mut accs: Vec<Vec<AggAccumulator>> = Vec::new();
        let mut in_len = 0usize;
        for b in &input.per_seg[s] {
            in_len += b.len;
            // Vectorized argument evaluation: one column per aggregate
            // per batch instead of one eval per (row, aggregate).
            let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
            for (_, e) in aggs {
                match e {
                    ScalarExpr::Agg { arg: Some(a), .. } => {
                        arg_cols.push(Some(veval(a, &input.layout, b)?))
                    }
                    _ => arg_cols.push(None),
                }
            }
            for i in 0..b.len {
                let (h, _) = hash_key_at(b, &gpos, i); // NULL groups: NULL == NULL
                let bucket = buckets.entry(h).or_default();
                let gid = match bucket.iter().copied().find(|&g| {
                    gpos.iter().enumerate().all(|(k, &p)| {
                        ValRef::of(&keys[g as usize][k]).key_eq(&b.cols[p].get_ref(i))
                    })
                }) {
                    Some(g) => g as usize,
                    None => {
                        let g = keys.len();
                        keys.push(gpos.iter().map(|&p| b.cols[p].get(i)).collect());
                        accs.push(
                            aggs.iter()
                                .map(|(_, e)| AggAccumulator::from_expr(e))
                                .collect::<Result<_>>()?,
                        );
                        bucket.push(g as u32);
                        g
                    }
                };
                for (j, acc) in accs[gid].iter_mut().enumerate() {
                    let value = match &arg_cols[j] {
                        Some(c) => c.get(i),
                        None => Datum::Int(1), // count(*)
                    };
                    acc.update_value(value);
                }
            }
        }
        let mut w = BatchWriter::new(width, bs);
        for (key, group_accs) in keys.iter().zip(accs.iter()) {
            let mut row = key.clone();
            row.extend(group_accs.iter().map(AggAccumulator::finish));
            w.push_row(&row);
        }
        // Scalar aggregates must emit a row even on empty input: on every
        // segment for Local stage (partials), on the master otherwise.
        if group_cols.is_empty() && keys.is_empty() {
            let emit_here = match stage {
                AggStage::Local => true,
                _ => ctx.storage_segment(s) == 0,
            };
            if emit_here {
                let empty_accs: Vec<AggAccumulator> = aggs
                    .iter()
                    .map(|(_, e)| AggAccumulator::from_expr(e))
                    .collect::<Result<_>>()?;
                let row: Row = empty_accs.iter().map(AggAccumulator::finish).collect();
                w.push_row(&row);
            }
        }
        ctx.stats.rows_processed += in_len as u64;
        let factor = if stream { 0.6 } else { 1.1 };
        out.avail[s] = input.avail[s] + ctx.tup_time(in_len) * factor;
        out.per_seg[s] = w.finish();
    }
    Ok(out)
}

fn cexec_motion(
    plan: &PhysicalPlan,
    ctx: &mut ExecCtx<'_>,
    kind: &MotionKind,
    bs: usize,
) -> Result<ColStream> {
    if ctx.local_segment.is_some() {
        // The slicer cuts plans at motions; a motion inside a slice means
        // the slicer was bypassed or produced a malformed slice.
        return Err(OrcaError::Execution(
            "Motion executed inside a single-segment slice".into(),
        ));
    }
    let n = ctx.cluster.num_segments;
    let input = cexec(&plan.children[0], ctx)?;
    let width = input.layout.len();
    // One distinct copy of the stream's bytes (see `distinct_bytes`).
    let bytes = if input.replicated {
        input.bytes() / n as f64
    } else {
        input.bytes()
    };
    let mut out = ColStream::empty(input.layout.clone(), n);
    match kind {
        MotionKind::Gather => {
            out.per_seg[0] = gathered_batches(&input);
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes);
        }
        MotionKind::GatherMerge(order) => {
            // Streaming k-way merge over per-segment sorted inputs,
            // tie-breaking on the lowest source segment (same contract as
            // the row kernel's `kway_merge`), but moving rows by index
            // gathers instead of `Vec<Datum>` pops.
            let sources: Vec<ColumnBatch> = one_copy_batches(ctx, &input)
                .iter()
                .map(|bl| ColumnBatch::concat(bl, width))
                .collect();
            let keys = order_positions(order, &input.layout);
            let mut heads = vec![0usize; sources.len()];
            let mut w = BatchWriter::new(width, bs);
            loop {
                let mut best: Option<usize> = None;
                for (src, c) in sources.iter().enumerate() {
                    if heads[src] >= c.len {
                        continue;
                    }
                    best = match best {
                        None => Some(src),
                        Some(b) => {
                            if cmp_rows_at(c, heads[src], &sources[b], heads[b], &keys)
                                == Ordering::Less
                            {
                                Some(src)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                let Some(b) = best else { break };
                w.append_row_from(&sources[b], heads[b]);
                heads[b] += 1;
            }
            let len = w.rows();
            out.per_seg[0] = w.finish();
            ctx.stats.bytes_moved += bytes as u64;
            out.avail[0] = input.elapsed() + ctx.net_time(bytes) * 1.15 + ctx.tup_time(len) * 0.2;
        }
        MotionKind::Redistribute(cols) => {
            let pos = key_positions(&input.layout, cols)?;
            let base = input.elapsed();
            let mut writers: Vec<BatchWriter> =
                (0..n).map(|_| BatchWriter::new(width, bs)).collect();
            for seg_batches in &one_copy_batches(ctx, &input) {
                for b in seg_batches {
                    for i in 0..b.len {
                        // Same hash stream as `segment_for_key`.
                        let mut h = FnvHasher::default();
                        for &p in &pos {
                            b.cols[p].get_ref(i).hash_into(&mut h);
                        }
                        let dest = (h.finish() % n as u64) as usize;
                        writers[dest].append_row_from(b, i);
                    }
                }
            }
            for (s, wtr) in writers.into_iter().enumerate() {
                out.per_seg[s] = wtr.finish();
            }
            ctx.stats.bytes_moved += bytes as u64;
            for s in 0..n {
                out.avail[s] = base + ctx.net_time(bytes) / n as f64;
            }
        }
        MotionKind::Broadcast => {
            let all = gathered_batches(&input);
            out.replicated = true;
            // n full copies leave the wire: scale in f64 *before* the
            // integer conversion so large streams don't truncate per-copy.
            ctx.stats.bytes_moved += (bytes * n as f64) as u64;
            let base = input.elapsed();
            for s in 0..n {
                out.per_seg[s] = all.clone();
                out.avail[s] = base + ctx.net_time(bytes);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecEngine;
    use crate::storage::Database;
    use orca_catalog::{ColumnMeta, Distribution, TableDesc};
    use orca_common::{DataType, MdId, SysId};
    use orca_expr::logical::TableRef;
    use orca_expr::scalar::{AggFunc, ArithOp, CmpOp};
    use std::sync::Arc;

    /// 4-segment fixture with NULL-heavy data: t1 hashed, t2 hashed on its
    /// second column, tr replicated.
    fn db() -> (Database, TableRef, TableRef, TableRef) {
        let mut db = Database::new(orca_common::SegmentConfig::default().with_segments(4));
        let mk = |oid: u64, name: &str, dist: Distribution| {
            Arc::new(TableDesc::new(
                MdId::new(SysId::Gpdb, oid, 1),
                name,
                vec![
                    ColumnMeta::new("a", DataType::Int),
                    ColumnMeta::new("b", DataType::Int),
                ],
                dist,
            ))
        };
        let t1 = mk(1, "t1", Distribution::Hashed(vec![0]));
        let t2 = mk(2, "t2", Distribution::Hashed(vec![1]));
        let tr = mk(3, "tr", Distribution::Replicated);
        let val = |v: i64| {
            if v % 9 == 8 {
                Datum::Null
            } else {
                Datum::Int(v)
            }
        };
        let rows1: Vec<Row> = (0..120).map(|i| vec![val(i % 17), val(i)]).collect();
        let rows2: Vec<Row> = (0..50).map(|i| vec![val(i), val(i % 17)]).collect();
        let rowsr: Vec<Row> = (0..12).map(|i| vec![val(i % 5), val(i + 2)]).collect();
        db.load_table(t1.clone(), rows1).unwrap();
        db.load_table(t2.clone(), rows2).unwrap();
        db.load_table(tr.clone(), rowsr).unwrap();
        (db, TableRef(t1), TableRef(t2), TableRef(tr))
    }

    fn scan(t: &TableRef, first: u32) -> PhysicalPlan {
        PhysicalPlan::leaf(PhysicalOp::TableScan {
            table: t.clone(),
            cols: vec![ColId(first), ColId(first + 1)],
            parts: None,
        })
    }

    fn gather(child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::new(
            PhysicalOp::Motion {
                kind: MotionKind::Gather,
            },
            vec![child],
        )
    }

    /// Every plan here runs through both kernels at batch sizes 1, 7 and
    /// 1024 and must produce byte-identical rows, identical simulated
    /// time, and identical counters.
    #[test]
    fn columnar_matches_row_kernel() {
        let (db0, t1, t2, tr) = db();
        let agg = |func: AggFunc, arg: Option<ColId>, distinct: bool| ScalarExpr::Agg {
            func,
            arg: arg.map(|c| Box::new(ScalarExpr::col(c))),
            distinct,
        };
        let plans: Vec<(PhysicalPlan, Vec<ColId>)> = vec![
            // Figure 6: join + redistribute + sort + gather-merge.
            (
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::GatherMerge(OrderSpec::by(&[ColId(0)])),
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Sort {
                            order: OrderSpec::by(&[ColId(0)]),
                        },
                        vec![PhysicalPlan::new(
                            PhysicalOp::HashJoin {
                                kind: JoinKind::Inner,
                                left_keys: vec![ColId(0)],
                                right_keys: vec![ColId(3)],
                                residual: None,
                            },
                            vec![
                                scan(&t1, 0),
                                PhysicalPlan::new(
                                    PhysicalOp::Motion {
                                        kind: MotionKind::Redistribute(vec![ColId(3)]),
                                    },
                                    vec![scan(&t2, 2)],
                                ),
                            ],
                        )],
                    )],
                ),
                vec![ColId(0), ColId(1), ColId(2)],
            ),
            // All join kinds against a broadcast build, with a residual.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftOuter,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: Some(ScalarExpr::cmp(
                            CmpOp::Lt,
                            ScalarExpr::col(ColId(1)),
                            ScalarExpr::int(60),
                        )),
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1), ColId(2), ColId(3)],
            ),
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftSemi,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1)],
            ),
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashJoin {
                        kind: JoinKind::LeftAntiSemi,
                        left_keys: vec![ColId(0)],
                        right_keys: vec![ColId(3)],
                        residual: None,
                    },
                    vec![
                        scan(&t1, 0),
                        PhysicalPlan::new(
                            PhysicalOp::Motion {
                                kind: MotionKind::Broadcast,
                            },
                            vec![scan(&t2, 2)],
                        ),
                    ],
                )),
                vec![ColId(0), ColId(1)],
            ),
            // Filter + arithmetic projection (vectorized eval paths).
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Project {
                        exprs: vec![
                            (ColId(10), ScalarExpr::col(ColId(0))),
                            (
                                ColId(11),
                                ScalarExpr::Arith {
                                    op: ArithOp::Mul,
                                    left: Box::new(ScalarExpr::col(ColId(1))),
                                    right: Box::new(ScalarExpr::int(3)),
                                },
                            ),
                            (
                                ColId(12),
                                ScalarExpr::IsNull(Box::new(ScalarExpr::col(ColId(0)))),
                            ),
                        ],
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Filter {
                            pred: ScalarExpr::and(vec![
                                ScalarExpr::cmp(
                                    CmpOp::Ge,
                                    ScalarExpr::col(ColId(1)),
                                    ScalarExpr::int(5),
                                ),
                                ScalarExpr::Not(Box::new(ScalarExpr::cmp(
                                    CmpOp::Gt,
                                    ScalarExpr::col(ColId(0)),
                                    ScalarExpr::int(15),
                                ))),
                            ]),
                        },
                        vec![scan(&t1, 0)],
                    )],
                )),
                vec![ColId(10), ColId(11), ColId(12)],
            ),
            // Always-false filter: empty batches everywhere downstream.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Filter {
                        pred: ScalarExpr::cmp(
                            CmpOp::Gt,
                            ScalarExpr::col(ColId(1)),
                            ScalarExpr::int(1_000_000),
                        ),
                    },
                    vec![scan(&t1, 0)],
                )),
                vec![ColId(0)],
            ),
            // Grouped aggregation with NULL groups and distinct.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: vec![ColId(0)],
                        aggs: vec![
                            (ColId(20), agg(AggFunc::Count, None, false)),
                            (ColId(21), agg(AggFunc::Sum, Some(ColId(1)), false)),
                            (ColId(22), agg(AggFunc::Min, Some(ColId(1)), false)),
                            (ColId(23), agg(AggFunc::Max, Some(ColId(1)), false)),
                            (ColId(24), agg(AggFunc::Count, Some(ColId(1)), true)),
                        ],
                        stage: AggStage::Single,
                    },
                    vec![scan(&t1, 0)],
                )),
                vec![
                    ColId(0),
                    ColId(20),
                    ColId(21),
                    ColId(22),
                    ColId(23),
                    ColId(24),
                ],
            ),
            // Scalar aggregate over empty input via the split-agg path.
            (
                PhysicalPlan::new(
                    PhysicalOp::HashAgg {
                        group_cols: vec![],
                        aggs: vec![(ColId(21), agg(AggFunc::Sum, Some(ColId(20)), false))],
                        stage: AggStage::Global,
                    },
                    vec![gather(PhysicalPlan::new(
                        PhysicalOp::HashAgg {
                            group_cols: vec![],
                            aggs: vec![(ColId(20), agg(AggFunc::Count, None, false))],
                            stage: AggStage::Local,
                        },
                        vec![PhysicalPlan::new(
                            PhysicalOp::Filter {
                                pred: ScalarExpr::cmp(
                                    CmpOp::Gt,
                                    ScalarExpr::col(ColId(1)),
                                    ScalarExpr::int(1_000_000),
                                ),
                            },
                            vec![scan(&t1, 0)],
                        )],
                    ))],
                ),
                vec![ColId(21)],
            ),
            // Sort + limit over a replicated scan, with a stream agg.
            (
                PhysicalPlan::new(
                    PhysicalOp::Limit {
                        order: OrderSpec::by(&[ColId(5)]),
                        offset: 1,
                        count: Some(4),
                    },
                    vec![PhysicalPlan::new(
                        PhysicalOp::Sort {
                            order: OrderSpec::by(&[ColId(5)]),
                        },
                        vec![gather(PhysicalPlan::new(
                            PhysicalOp::StreamAgg {
                                group_cols: vec![ColId(4)],
                                aggs: vec![(ColId(25), agg(AggFunc::Avg, Some(ColId(5)), false))],
                                stage: AggStage::Single,
                            },
                            vec![scan(&tr, 4)],
                        ))],
                    )],
                ),
                vec![ColId(4)],
            ),
            // UnionAll of a hashed and a replicated input.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::UnionAll {
                        output: vec![ColId(30), ColId(31)],
                        input_cols: vec![vec![ColId(0), ColId(1)], vec![ColId(4), ColId(5)]],
                    },
                    vec![scan(&t1, 0), scan(&tr, 4)],
                )),
                vec![ColId(30), ColId(31)],
            ),
            // Hash set-op (row-path fallback inside the batch kernel).
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::HashSetOp {
                        kind: SetOpKind::Intersect,
                        output: vec![ColId(30)],
                        input_cols: vec![vec![ColId(0)], vec![ColId(5)]],
                    },
                    vec![scan(&t1, 0), scan(&tr, 4)],
                )),
                vec![ColId(30)],
            ),
            // CTE self-join through Sequence + Spool-free sharing.
            (
                gather(PhysicalPlan::new(
                    PhysicalOp::Sequence {
                        id: orca_common::CteId(1),
                    },
                    vec![
                        PhysicalPlan::new(
                            PhysicalOp::CteProducer {
                                id: orca_common::CteId(1),
                                cols: vec![ColId(0), ColId(1)],
                            },
                            vec![scan(&t1, 0)],
                        ),
                        PhysicalPlan::new(
                            PhysicalOp::HashJoin {
                                kind: JoinKind::Inner,
                                left_keys: vec![ColId(40)],
                                right_keys: vec![ColId(50)],
                                residual: None,
                            },
                            vec![
                                PhysicalPlan::leaf(PhysicalOp::CteScan {
                                    id: orca_common::CteId(1),
                                    cols: vec![ColId(40), ColId(41)],
                                    producer_cols: vec![ColId(0), ColId(1)],
                                }),
                                PhysicalPlan::leaf(PhysicalOp::CteScan {
                                    id: orca_common::CteId(1),
                                    cols: vec![ColId(50), ColId(51)],
                                    producer_cols: vec![ColId(0), ColId(1)],
                                }),
                            ],
                        ),
                    ],
                )),
                vec![ColId(40), ColId(51)],
            ),
        ];
        for (pi, (plan, out_cols)) in plans.iter().enumerate() {
            for bs in [1usize, 7, 1024] {
                let mut db = db0.clone();
                db.cluster.batch_size = bs;
                let engine = ExecEngine::new(&db);
                let row = engine.run(plan, out_cols).unwrap();
                let col = engine.run_columnar(plan, out_cols).unwrap();
                assert_eq!(
                    format!("{:?}", row.rows),
                    format!("{:?}", col.rows),
                    "plan {pi} rows diverged at batch_size {bs}"
                );
                assert_eq!(
                    row.sim_seconds.to_bits(),
                    col.sim_seconds.to_bits(),
                    "plan {pi} sim time diverged at batch_size {bs}"
                );
                assert_eq!(
                    row.stats.rows_processed, col.stats.rows_processed,
                    "plan {pi}"
                );
                assert_eq!(row.stats.bytes_moved, col.stats.bytes_moved, "plan {pi}");
                assert_eq!(row.stats.spills, col.stats.spills, "plan {pi}");
                assert_eq!(
                    row.stats.oom_risk_bytes, col.stats.oom_risk_bytes,
                    "plan {pi}"
                );
                // Both kernels fill the per-operator profile.
                assert!(!row.stats.ops.is_empty() && !col.stats.ops.is_empty());
                for (name, p) in &col.stats.ops {
                    let rp = &row.stats.ops[name];
                    assert_eq!(p.rows, rp.rows, "plan {pi} op {name} rows");
                }
            }
        }
    }

    /// The batch kernel reports the OOM failure with the same message.
    #[test]
    fn columnar_oom_matches_row_kernel() {
        let (mut db, t1, t2, _) = db();
        db.cluster.work_mem_bytes = 64;
        db.cluster.can_spill = false;
        let join = gather(PhysicalPlan::new(
            PhysicalOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: None,
            },
            vec![
                scan(&t1, 0),
                PhysicalPlan::new(
                    PhysicalOp::Motion {
                        kind: MotionKind::Broadcast,
                    },
                    vec![scan(&t2, 2)],
                ),
            ],
        ));
        let engine = ExecEngine::new(&db);
        let a = engine.run(&join, &[ColId(0)]).unwrap_err();
        let b = engine.run_columnar(&join, &[ColId(0)]).unwrap_err();
        assert_eq!(a.message(), b.message());
        assert!(b.message().contains("out of memory"));
    }
}
