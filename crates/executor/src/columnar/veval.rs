//! Vectorized scalar evaluation: one [`Column`] out per expression over a
//! whole [`ColumnBatch`].
//!
//! Result-compatible with the row evaluator ([`crate::eval::eval`]): the
//! same value for every row, the same SQL three-valued logic, the same
//! error classes. The one (documented) divergence is evaluation *breadth*:
//! `AND`/`OR`/`CASE` arms are evaluated for every row before combining,
//! where the row evaluator short-circuits — observable only through
//! errors raised by arms the row evaluator would have skipped, which
//! well-typed plans do not produce (arithmetic never errors on values,
//! only on operand *types*, which are uniform per column).

use crate::columnar::batch::{BitVec, Column, ColumnBatch, ValRef};
use orca_common::{ColId, Datum, OrcaError, Result};
use orca_expr::scalar::{ArithOp, ScalarExpr};
use std::cmp::Ordering;

/// A nullable boolean column under construction (the output of
/// predicates and boolean combinators).
#[derive(Default)]
struct BoolBuilder {
    vals: Vec<bool>,
    nulls: Option<BitVec>,
}

impl BoolBuilder {
    fn with_capacity(n: usize) -> BoolBuilder {
        BoolBuilder {
            vals: Vec::with_capacity(n),
            nulls: None,
        }
    }

    #[inline]
    fn push(&mut self, v: Option<bool>) {
        match v {
            Some(b) => {
                if let Some(n) = &mut self.nulls {
                    n.push(false);
                }
                self.vals.push(b);
            }
            None => {
                let len = self.vals.len();
                self.nulls
                    .get_or_insert_with(|| BitVec::zeros(len))
                    .push(true);
                self.vals.push(false);
            }
        }
    }

    fn finish(self) -> Column {
        Column::Bool {
            vals: self.vals.into(),
            nulls: self.nulls,
        }
    }
}

/// Evaluate `e` over every row of `batch`, producing one output column.
pub fn veval(e: &ScalarExpr, layout: &[ColId], batch: &ColumnBatch) -> Result<Column> {
    let len = batch.len;
    Ok(match e {
        ScalarExpr::ColRef(c) => {
            let pos = layout
                .iter()
                .position(|x| x == c)
                .ok_or_else(|| OrcaError::Execution(format!("unbound column {c}")))?;
            batch.cols[pos].clone()
        }
        ScalarExpr::Const(d) => Column::repeat(d, len),
        ScalarExpr::Cmp { op, left, right } => {
            // Dictionary fast path: ColRef-vs-string-const over a
            // dict-encoded column compares u32 codes against one
            // binary-searched pivot — the per-chunk dictionary is
            // sorted, so code order *is* `sql_cmp` order.
            let dict_operands = match (&**left, &**right) {
                (ScalarExpr::ColRef(c), ScalarExpr::Const(Datum::Str(s))) => Some((c, *op, s)),
                (ScalarExpr::Const(Datum::Str(s)), ScalarExpr::ColRef(c)) => {
                    Some((c, op.commute(), s))
                }
                _ => None,
            };
            if let Some((c, op, s)) = dict_operands {
                if let Some(pos) = layout.iter().position(|x| x == c) {
                    if let Some((codes, dict, nulls)) = batch.cols[pos].dict_parts() {
                        let pivot = dict.binary_search_by(|d| d.as_str().cmp(s.as_str()));
                        let mut out = BoolBuilder::with_capacity(len);
                        for (i, &code) in codes.iter().enumerate().take(len) {
                            if nulls.is_some_and(|nb| nb.get(i)) {
                                out.push(None);
                                continue;
                            }
                            let code = code as usize;
                            let ord = match pivot {
                                Ok(k) => code.cmp(&k),
                                Err(ins) => {
                                    if code < ins {
                                        Ordering::Less
                                    } else {
                                        Ordering::Greater
                                    }
                                }
                            };
                            out.push(Some(op.evaluate(ord)));
                        }
                        return Ok(out.finish());
                    }
                }
            }
            let l = veval(left, layout, batch)?;
            let r = veval(right, layout, batch)?;
            // Null-free integer fast path. Comparison goes through the f64
            // image to reproduce `Datum::sql_cmp` exactly.
            if let (
                Column::Int {
                    vals: a,
                    nulls: None,
                },
                Column::Int {
                    vals: b,
                    nulls: None,
                },
            ) = (&l, &r)
            {
                let vals = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| {
                        let ord = (*x as f64)
                            .partial_cmp(&(*y as f64))
                            .unwrap_or(Ordering::Equal);
                        op.evaluate(ord)
                    })
                    .collect();
                return Ok(Column::Bool { vals, nulls: None });
            }
            let mut out = BoolBuilder::with_capacity(len);
            for i in 0..len {
                out.push(
                    l.get_ref(i)
                        .sql_cmp(&r.get_ref(i))
                        .map(|ord| op.evaluate(ord)),
                );
            }
            out.finish()
        }
        ScalarExpr::And(parts) => {
            let cols = parts
                .iter()
                .map(|p| veval(p, layout, batch))
                .collect::<Result<Vec<_>>>()?;
            let mut out = BoolBuilder::with_capacity(len);
            for i in 0..len {
                let mut saw_null = false;
                let mut saw_false = false;
                for c in &cols {
                    match c.get_ref(i) {
                        ValRef::Bool(false) => {
                            saw_false = true;
                            break;
                        }
                        ValRef::Null => saw_null = true,
                        ValRef::Bool(true) => {}
                        other => {
                            return Err(OrcaError::Execution(format!(
                                "non-boolean in AND: {}",
                                other.to_datum()
                            )))
                        }
                    }
                }
                out.push(if saw_false {
                    Some(false)
                } else if saw_null {
                    None
                } else {
                    Some(true)
                });
            }
            out.finish()
        }
        ScalarExpr::Or(parts) => {
            let cols = parts
                .iter()
                .map(|p| veval(p, layout, batch))
                .collect::<Result<Vec<_>>>()?;
            let mut out = BoolBuilder::with_capacity(len);
            for i in 0..len {
                let mut saw_null = false;
                let mut saw_true = false;
                for c in &cols {
                    match c.get_ref(i) {
                        ValRef::Bool(true) => {
                            saw_true = true;
                            break;
                        }
                        ValRef::Null => saw_null = true,
                        ValRef::Bool(false) => {}
                        other => {
                            return Err(OrcaError::Execution(format!(
                                "non-boolean in OR: {}",
                                other.to_datum()
                            )))
                        }
                    }
                }
                out.push(if saw_true {
                    Some(true)
                } else if saw_null {
                    None
                } else {
                    Some(false)
                });
            }
            out.finish()
        }
        ScalarExpr::Not(x) => {
            let c = veval(x, layout, batch)?;
            let mut out = BoolBuilder::with_capacity(len);
            for i in 0..len {
                match c.get_ref(i) {
                    ValRef::Bool(b) => out.push(Some(!b)),
                    ValRef::Null => out.push(None),
                    other => {
                        return Err(OrcaError::Execution(format!(
                            "non-boolean in NOT: {}",
                            other.to_datum()
                        )))
                    }
                }
            }
            out.finish()
        }
        ScalarExpr::IsNull(x) => {
            let c = veval(x, layout, batch)?;
            let vals = (0..len).map(|i| c.get_ref(i).is_null()).collect();
            Column::Bool { vals, nulls: None }
        }
        ScalarExpr::Arith { op, left, right } => {
            let l = veval(left, layout, batch)?;
            let r = veval(right, layout, batch)?;
            // Null-free integer fast path for +,-,* (division changes type).
            if let (
                Column::Int {
                    vals: a,
                    nulls: None,
                },
                Column::Int {
                    vals: b,
                    nulls: None,
                },
            ) = (&l, &r)
            {
                match op {
                    ArithOp::Add => {
                        let vals = a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect();
                        return Ok(Column::Int { vals, nulls: None });
                    }
                    ArithOp::Sub => {
                        let vals = a.iter().zip(b).map(|(x, y)| x.wrapping_sub(*y)).collect();
                        return Ok(Column::Int { vals, nulls: None });
                    }
                    ArithOp::Mul => {
                        let vals = a.iter().zip(b).map(|(x, y)| x.wrapping_mul(*y)).collect();
                        return Ok(Column::Int { vals, nulls: None });
                    }
                    ArithOp::Div => {}
                }
            }
            let mut out = Column::new();
            for i in 0..len {
                out.push(arith_ref(*op, l.get_ref(i), r.get_ref(i))?);
            }
            out
        }
        ScalarExpr::Case {
            branches,
            else_value,
        } => {
            let conds = branches
                .iter()
                .map(|(c, _)| veval(c, layout, batch))
                .collect::<Result<Vec<_>>>()?;
            let values = branches
                .iter()
                .map(|(_, v)| veval(v, layout, batch))
                .collect::<Result<Vec<_>>>()?;
            let else_col = match else_value {
                Some(ev) => Some(veval(ev, layout, batch)?),
                None => None,
            };
            let mut out = Column::new();
            'rows: for i in 0..len {
                for (cond, value) in conds.iter().zip(values.iter()) {
                    if matches!(cond.get_ref(i), ValRef::Bool(true)) {
                        out.push(value.get(i));
                        continue 'rows;
                    }
                }
                match &else_col {
                    Some(ec) => out.push(ec.get(i)),
                    None => out.push(Datum::Null),
                }
            }
            out
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            // Dictionary fast path: membership of a dict-encoded column
            // in an all-const list tests u32 codes against a
            // binary-searched code set. Non-string items can never
            // equal a dictionary entry; NULL items only weaken a miss
            // to NULL — exactly the generic arm's 3VL table.
            if let Some(out) = dict_in_list(expr, list, *negated, layout, batch) {
                return Ok(out);
            }
            let v = veval(expr, layout, batch)?;
            let items = list
                .iter()
                .map(|item| veval(item, layout, batch))
                .collect::<Result<Vec<_>>>()?;
            let mut out = BoolBuilder::with_capacity(len);
            for i in 0..len {
                let vr = v.get_ref(i);
                if vr.is_null() {
                    out.push(None);
                    continue;
                }
                let mut found = false;
                let mut saw_null = false;
                for item in &items {
                    let ir = item.get_ref(i);
                    if ir.is_null() {
                        saw_null = true;
                    } else if vr.sql_cmp(&ir) == Some(Ordering::Equal) {
                        found = true;
                        break;
                    }
                }
                out.push(match (found, saw_null, negated) {
                    (true, _, false) => Some(true),
                    (true, _, true) => Some(false),
                    (false, true, _) => None,
                    (false, false, n) => Some(*n),
                });
            }
            out.finish()
        }
        ScalarExpr::Agg { .. } => {
            return Err(OrcaError::Execution(
                "aggregate evaluated outside aggregation".into(),
            ))
        }
        ScalarExpr::Exists { .. }
        | ScalarExpr::InSubquery { .. }
        | ScalarExpr::ScalarSubquery { .. } => {
            return Err(OrcaError::Execution(
                "subquery marker reached the executor".into(),
            ))
        }
    })
}

/// Code-space `IN`-list over a dict-encoded column, or `None` when the
/// shape doesn't apply (expr not a bound ColRef over a `Dict` column,
/// or a non-const list item).
fn dict_in_list(
    expr: &ScalarExpr,
    list: &[ScalarExpr],
    negated: bool,
    layout: &[ColId],
    batch: &ColumnBatch,
) -> Option<Column> {
    let ScalarExpr::ColRef(c) = expr else {
        return None;
    };
    let pos = layout.iter().position(|x| x == c)?;
    let (codes, dict, nulls) = batch.cols[pos].dict_parts()?;
    let consts = list
        .iter()
        .map(|i| match i {
            ScalarExpr::Const(d) => Some(d),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let saw_null = consts.iter().any(|d| d.is_null());
    let mut ks: Vec<u32> = consts
        .iter()
        .filter_map(|d| match d {
            Datum::Str(s) => dict
                .binary_search_by(|x| x.as_str().cmp(s.as_str()))
                .ok()
                .map(|k| k as u32),
            _ => None,
        })
        .collect();
    ks.sort_unstable();
    ks.dedup();
    let mut out = BoolBuilder::with_capacity(batch.len);
    for (i, code) in codes.iter().enumerate().take(batch.len) {
        if nulls.is_some_and(|nb| nb.get(i)) {
            out.push(None);
            continue;
        }
        let found = ks.binary_search(code).is_ok();
        out.push(match (found, saw_null, negated) {
            (true, _, false) => Some(true),
            (true, _, true) => Some(false),
            (false, true, _) => None,
            (false, false, n) => Some(n),
        });
    }
    Some(out.finish())
}

/// Per-element mirror of the row evaluator's `eval_arith`.
fn arith_ref(op: ArithOp, l: ValRef<'_>, r: ValRef<'_>) -> Result<Datum> {
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    if let (ValRef::Int(a), ValRef::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Datum::Int(a.wrapping_add(b)),
            ArithOp::Sub => Datum::Int(a.wrapping_sub(b)),
            ArithOp::Mul => Datum::Int(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    Datum::Null
                } else {
                    Datum::Double(a as f64 / b as f64)
                }
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(OrcaError::Execution(format!(
                "non-numeric arithmetic: {} {} {}",
                l.to_datum(),
                op.symbol(),
                r.to_datum()
            )))
        }
    };
    Ok(match op {
        ArithOp::Add => Datum::Double(a + b),
        ArithOp::Sub => Datum::Double(a - b),
        ArithOp::Mul => Datum::Double(a * b),
        ArithOp::Div => {
            if b == 0.0 {
                Datum::Null
            } else {
                Datum::Double(a / b)
            }
        }
    })
}

/// Selection vector from a predicate: the indices of rows where the
/// predicate is exactly TRUE (SQL WHERE semantics: NULL rejects).
pub fn veval_predicate(
    pred: &ScalarExpr,
    layout: &[ColId],
    batch: &ColumnBatch,
) -> Result<Vec<u32>> {
    let c = veval(pred, layout, batch)?;
    let mut sel = Vec::new();
    for i in 0..batch.len {
        if matches!(c.get_ref(i), ValRef::Bool(true)) {
            sel.push(i as u32);
        }
    }
    Ok(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};
    use crate::storage::Row;
    use orca_expr::scalar::CmpOp;

    /// Differential check: vectorized result == row-at-a-time result for
    /// every row, over a batch mixing ints, doubles, strings and NULLs.
    #[test]
    fn veval_matches_row_eval() {
        let layout = [ColId(0), ColId(1), ColId(2)];
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Datum::Null
                    } else {
                        Datum::Int(i)
                    },
                    Datum::Double(i as f64 / 2.0),
                    if i % 3 == 0 {
                        Datum::Str(format!("s{i}"))
                    } else {
                        Datum::Str("x".into())
                    },
                ]
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows, 3);
        let exprs = vec![
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(0)), ScalarExpr::int(7)),
            ScalarExpr::cmp(
                CmpOp::Le,
                ScalarExpr::col(ColId(0)),
                ScalarExpr::col(ColId(1)),
            ),
            ScalarExpr::And(vec![
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(ColId(0)), ScalarExpr::int(3)),
                ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(ScalarExpr::col(
                    ColId(0),
                ))))),
            ]),
            ScalarExpr::Or(vec![
                ScalarExpr::IsNull(Box::new(ScalarExpr::col(ColId(0)))),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(1)), ScalarExpr::int(4)),
            ]),
            ScalarExpr::Arith {
                op: ArithOp::Add,
                left: Box::new(ScalarExpr::col(ColId(0))),
                right: Box::new(ScalarExpr::col(ColId(1))),
            },
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::col(ColId(1))),
                right: Box::new(ScalarExpr::col(ColId(0))),
            },
            ScalarExpr::Case {
                branches: vec![(
                    ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(0)), ScalarExpr::int(10)),
                    ScalarExpr::Const(Datum::Str("big".into())),
                )],
                else_value: Some(Box::new(ScalarExpr::col(ColId(2)))),
            },
            ScalarExpr::InList {
                expr: Box::new(ScalarExpr::col(ColId(0))),
                list: vec![
                    ScalarExpr::int(2),
                    ScalarExpr::int(9),
                    ScalarExpr::Const(Datum::Null),
                ],
                negated: false,
            },
        ];
        let env = Env::default();
        for e in &exprs {
            let col = veval(e, &layout, &batch).unwrap();
            for (i, row) in rows.iter().enumerate() {
                let expect = eval(e, &layout, row, &env).unwrap();
                assert_eq!(col.get(i), expect, "expr {e} row {i}");
            }
        }
    }

    #[test]
    fn int_fast_paths_match_generic() {
        let layout = [ColId(0), ColId(1)];
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Datum::Int(i), Datum::Int(i * 3 % 7)])
            .collect();
        let batch = ColumnBatch::from_rows(&rows, 2);
        let env = Env::default();
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div] {
            let e = ScalarExpr::Arith {
                op,
                left: Box::new(ScalarExpr::col(ColId(0))),
                right: Box::new(ScalarExpr::col(ColId(1))),
            };
            let col = veval(&e, &layout, &batch).unwrap();
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(col.get(i), eval(&e, &layout, row, &env).unwrap());
            }
        }
        let pred = ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::col(ColId(0)),
            ScalarExpr::col(ColId(1)),
        );
        let sel = veval_predicate(&pred, &layout, &batch).unwrap();
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| crate::eval::accepts(&pred, &layout, r, &env).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel, expect);
    }
}
