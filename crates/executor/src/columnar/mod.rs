//! Vectorized columnar execution (DESIGN.md §6g).
//!
//! The row interpreter in [`crate::exec`] walks `Vec<Datum>` tuples one
//! at a time; per-row dispatch and allocation dominate its runtime. This
//! module re-implements the within-slice kernel over [`batch::ColumnBatch`]
//! — typed column vectors with null bitmaps — processing
//! `SegmentConfig::batch_size` rows per operator invocation:
//!
//! * [`batch`] — the data plane: `BitVec` null bitmaps, typed [`batch::Column`]
//!   vectors with a `Mixed` fallback, `ColumnBatch`, and [`batch::ColStream`]
//!   (the columnar analogue of [`crate::exec::StreamSet`]).
//! * [`veval`] — vectorized scalar evaluation: whole-column comparisons,
//!   arithmetic and boolean logic, with `i64` fast paths for the
//!   null-free integer case.
//! * [`exec`] — the batch kernel: filters produce selection vectors,
//!   joins and aggregates key on column slices through a raw `u64`-hash
//!   table, sorts permute index vectors. Cold operators (nested-loops
//!   join, hash set-ops, subquery predicates) fall back to the row
//!   interpreter's logic on converted streams.
//!
//! Contract: for every plan, [`exec::cexec`] produces the **same rows in
//! the same order** as the row interpreter, with identical simulated
//! `avail` times and identical `ExecStats` counters — the row kernel
//! stays on as the differential-test oracle.

pub mod batch;
pub mod exec;
pub mod veval;

pub use batch::{BatchWriter, BitVec, Buf, ColStream, Column, ColumnBatch, ValRef};
pub use exec::cexec;
